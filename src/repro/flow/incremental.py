"""End-to-end incremental re-flow: ECO edits through the whole pipeline.

A completed desynchronization run (section 3.2) leaves behind far more
reusable state than the artifact cache captures: the region partition,
the data-dependency graph, the characterised delay ladder, the inserted
controller network and the compiled timing graphs are all still valid
after a small netlist edit -- a cell swap inside a drive-strength
family, a wire re-annotation from a new parasitic extraction, a tied
constant, a spare-cell hookup.  :class:`IncrementalSession` keeps the
stage-boundary snapshots a finished flow produced and, per edit,
re-derives only what the edit invalidates:

========  ==========================================================
stage     incremental strategy
========  ==========================================================
import    hygiene reused; clock period re-derived through the warm
          compiled STA of the imported snapshot (dirty-cone retime)
group     :func:`repro.desync.regions.regroup_incremental` revalidates
          the grouping relations incident to the dirty cells and
          splices the cached partition
ffsub     structurally reused (fast edits never touch sequentials)
ddg       :func:`repro.desync.ddg.patch_ddg` confirms the cached graph
          against the re-derived dirty-net edge contributions
delays    ladder reused; per-region targets re-selected through the
          warm compiled STA and
          :func:`repro.desync.delays.element_length_for`
network   spliced when every element length survives; otherwise
          re-inserted into a clone of the pre-network snapshot with
          ``precomputed_delays`` (no second STA pass)
sdc       regenerated (cheap, pure function of the above)
sim       affected-region-only handshake re-simulation, scoped via
          the probe's region boundaries (``verify="affected"``)
========  ==========================================================

Every incremental path is backed by the from-scratch pipeline as a
bit-identical parity oracle: :meth:`IncrementalSession.oracle` replays
the same edits on a pristine clone of the input through
:func:`repro.desync.tool.desynchronize`, and the test suite asserts the
two produce byte-equal Verilog, SDC, element lengths and handshake
reports.  Edits whose guards fail fall back to re-running the stage
functions from the earliest affected snapshot -- same functions, same
name-counter state, hence the same bits as a cold run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..desync.constraints import generate_constraints
from ..desync.ddg import patch_ddg
from ..desync.delays import element_length_for
from ..desync.network import (
    ControlNetwork,
    diff_networks,
    insert_control_network,
    region_delays,
)
from ..desync.regions import (
    copy_region_map,
    regroup_incremental,
    validate_independence_for,
)
from ..desync.tool import DesyncOptions, DesyncResult, Drdesync
from ..liberty.model import Library
from ..netlist.core import Module
from ..obs import metrics, trace
from ..sta.analysis import min_clock_period
from ..sta.compiled import annotate_wires, swap_cell

__all__ = [
    "EditError",
    "IncrementalSession",
    "NetlistEdit",
    "ReflowOutcome",
    "apply_edit",
    "load_edits",
    "FLOW_STAGES",
]

#: the pipeline stages the per-edit reuse report covers
FLOW_STAGES = (
    "import",
    "group",
    "ffsub",
    "ddg",
    "delays",
    "network",
    "constraints",
    "sim",
)

#: edit kinds the session understands
EDIT_KINDS = (
    "swap_cell",
    "annotate_wires",
    "set_constant",
    "add_instance",
    "remove_instance",
)


class EditError(Exception):
    """An edit description is malformed or inapplicable."""


def _pairs(value: Optional[Dict[str, float]]) -> Tuple[Tuple[str, float], ...]:
    if not value:
        return ()
    return tuple(sorted((str(k), float(v)) for k, v in value.items()))


@dataclass(frozen=True)
class NetlistEdit:
    """One ECO edit, addressed by post-import names.

    ``kind`` selects the operation:

    - ``swap_cell``: re-bind ``instance`` to library cell ``cell``;
    - ``annotate_wires``: merge ``wire_caps`` / ``wire_delays``
      parasitic annotations (net name -> value);
    - ``set_constant``: tie ``net`` to constant ``value`` (0/1);
    - ``add_instance``: add ``instance`` of ``cell`` with pin map
      ``pins`` (pin name -> net name, nets created on demand);
    - ``remove_instance``: delete ``instance``.
    """

    kind: str
    instance: Optional[str] = None
    cell: Optional[str] = None
    net: Optional[str] = None
    value: Optional[int] = None
    pins: Tuple[Tuple[str, str], ...] = ()
    wire_caps: Tuple[Tuple[str, float], ...] = ()
    wire_delays: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.kind not in EDIT_KINDS:
            raise EditError(
                f"unknown edit kind {self.kind!r}; expected one of "
                f"{', '.join(EDIT_KINDS)}"
            )
        # accept plain dicts for the mapping-shaped fields; normalise
        # to sorted tuples so edits stay hashable and order-stable
        if isinstance(self.pins, dict):
            object.__setattr__(self, "pins", tuple(sorted(self.pins.items())))
        if isinstance(self.wire_caps, dict):
            object.__setattr__(self, "wire_caps", _pairs(self.wire_caps))
        if isinstance(self.wire_delays, dict):
            object.__setattr__(self, "wire_delays", _pairs(self.wire_delays))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetlistEdit":
        kind = data.get("op") or data.get("kind")
        if kind is None:
            raise EditError(f"edit record lacks an 'op' field: {data!r}")
        return cls(
            kind=str(kind),
            instance=data.get("instance"),
            cell=data.get("cell"),
            net=data.get("net"),
            value=data.get("value"),
            pins=tuple(sorted((data.get("pins") or {}).items())),
            wire_caps=_pairs(data.get("wire_caps")),
            wire_delays=_pairs(data.get("wire_delays")),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.kind}
        if self.instance is not None:
            out["instance"] = self.instance
        if self.cell is not None:
            out["cell"] = self.cell
        if self.net is not None:
            out["net"] = self.net
        if self.value is not None:
            out["value"] = self.value
        if self.pins:
            out["pins"] = dict(self.pins)
        if self.wire_caps:
            out["wire_caps"] = dict(self.wire_caps)
        if self.wire_delays:
            out["wire_delays"] = dict(self.wire_delays)
        return out


def load_edits(path: str) -> List[NetlistEdit]:
    """Load an ``edits.json`` file: a list of ``{"op": ...}`` records."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("edits", [data])
    if not isinstance(data, list):
        raise EditError(f"{path}: expected a JSON list of edit records")
    return [NetlistEdit.from_dict(record) for record in data]


def apply_edit(module: Module, library: Library, edit: NetlistEdit) -> None:
    """Apply one edit to ``module`` in place.

    The single edit applier shared by the incremental session (on its
    snapshots) and the parity oracle (on a pristine input clone), so
    both sides see byte-identical netlists.  Cell swaps and wire
    annotations go through the cache-aware :mod:`repro.sta.compiled`
    entry points; structural edits use the plain mutators (their
    dirty-log records invalidate caches wholesale).
    """
    if edit.kind == "swap_cell":
        if edit.instance is None or edit.cell is None:
            raise EditError("swap_cell needs 'instance' and 'cell'")
        if edit.instance not in module.instances:
            raise EditError(f"no instance {edit.instance!r} to swap")
        swap_cell(module, library, edit.instance, edit.cell)
    elif edit.kind == "annotate_wires":
        annotate_wires(
            module,
            wire_caps=dict(edit.wire_caps) or None,
            wire_delays=dict(edit.wire_delays) or None,
        )
    elif edit.kind == "set_constant":
        if edit.net is None or edit.value is None:
            raise EditError("set_constant needs 'net' and 'value'")
        net = module.nets.get(edit.net)
        if net is None:
            raise EditError(f"no net {edit.net!r} to tie")
        net.is_constant = True
        net.constant_value = int(bool(edit.value))
        module.invalidate_indexes()
    elif edit.kind == "add_instance":
        if edit.instance is None or edit.cell is None:
            raise EditError("add_instance needs 'instance' and 'cell'")
        for _pin, net_name in edit.pins:
            module.ensure_net(net_name)
        module.add_instance(edit.instance, edit.cell, dict(edit.pins))
    elif edit.kind == "remove_instance":
        if edit.instance is None:
            raise EditError("remove_instance needs 'instance'")
        if edit.instance not in module.instances:
            raise EditError(f"no instance {edit.instance!r} to remove")
        module.remove_instance(edit.instance)


@dataclass
class ReflowOutcome:
    """What one :meth:`IncrementalSession.apply` call did."""

    result: DesyncResult
    #: always ``"incremental"`` (the oracle runs ``mode="full"``)
    mode: str
    #: ``"splice"`` (everything structural reused), ``"network"``
    #: (controller network re-inserted over cached delays) or
    #: ``"deep"`` (stage functions re-run from a snapshot)
    path: str
    #: stage name -> True (reused) / False (recomputed)
    reused: Dict[str, bool] = field(default_factory=dict)
    #: per-region classification from :func:`diff_networks`
    region_status: Dict[str, str] = field(default_factory=dict)
    clock_period: float = 0.0
    #: regions the scoped verification simulated (``verify != "none"``)
    verified_regions: List[str] = field(default_factory=list)
    #: handshake report of the verification run, when one happened
    report: Optional[Dict[str, Any]] = None


class IncrementalSession:
    """A completed flow result that accepts ECO edits.

    ::

        session = IncrementalSession(library, options)
        result = session.start(module)          # full flow, once
        outcome = session.apply(NetlistEdit("swap_cell",
                                            instance="u42",
                                            cell="NAND2X4"))
        outcome.result.export_verilog()          # bit-identical to a
                                                 # from-scratch re-flow

    The session owns the stage-boundary snapshots (post-import,
    post-group, post-ffsub) plus the live result; every ``apply``
    updates all of them, so edits chain.  ``session.oracle(edits)``
    re-runs the untouched pipeline on the original input with the same
    edits -- the ``mode="full"`` parity reference the tests and
    benchmarks assert against.
    """

    def __init__(
        self,
        library: Library,
        options: Optional[DesyncOptions] = None,
        max_delay_levels: int = 240,
        cache=None,
    ):
        self.library = library
        self.options = options or DesyncOptions()
        self.tool = Drdesync(
            library,
            corner=self.options.corner,
            max_delay_levels=max_delay_levels,
        )
        self.cache = cache
        self.result: Optional[DesyncResult] = None
        self.parent_key: Optional[str] = None
        self._edits_applied: List[NetlistEdit] = []
        self._snap_imported: Optional[Module] = None
        self._snap_grouped: Optional[Module] = None
        self._snap_ffsub: Optional[Module] = None
        self._input: Optional[Module] = None
        self._artifacts: Dict[str, Any] = {}
        self._stages: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # cold start
    # ------------------------------------------------------------------
    def start(self, module: Module, key: Optional[str] = None) -> DesyncResult:
        """Run the full flow once and capture the reuse substrate."""
        from ..engine.cache import stable_hash

        self._input = module.clone()
        self._stages = {
            stage.name: stage for stage in self.tool.build_stages(self.options)
        }
        artifacts: Dict[str, Any] = {"module.input": module}
        with trace.span("flow.incremental.start", design=module.name):
            self._run_stages(
                artifacts,
                ("import", "group", "ffsub", "ddg", "delays", "network",
                 "constraints"),
            )
        self._artifacts = artifacts
        self.result = self.tool.assemble_result(module, artifacts)
        self.parent_key = key or stable_hash(
            {"design": self._input, "options": repr(self.options)}
        )
        self._prewarm()
        metrics.counter("flow.incr.sessions").inc()
        return self.result

    def _run_stages(self, artifacts: Dict[str, Any], names) -> None:
        """Execute stage functions in order, snapshotting boundaries.

        The snapshots are taken *between* stages, before the next one
        mutates the threaded module -- so each clone carries the exact
        name-counter state a from-scratch run would have at that point,
        which is what makes fallback re-runs bit-identical.
        """
        for name in names:
            if name == "delays" and "ladder" in artifacts:
                continue
            artifacts.update(self._stages[name].call(artifacts))
            if name == "import":
                self._snap_imported = artifacts["module.imported"].clone()
            elif name == "group":
                self._snap_grouped = artifacts["module.grouped"].clone()
                artifacts["region_map.grouped"] = copy_region_map(
                    artifacts["region_map"]
                )
            elif name == "ffsub":
                self._snap_ffsub = artifacts["module.ffsub"].clone()

    def _prewarm(self) -> None:
        """Warm the snapshot STA caches and assert parity with the run.

        The snapshots are structural clones of the live module at each
        boundary, so the compiled STA over them must reproduce the
        run's clock period and region delays exactly -- asserted here,
        making the snapshots themselves oracle-checked before any edit
        relies on them.
        """
        options = self.options
        if options.clock_period is None:
            warm = min_clock_period(
                self._snap_imported, self.library, options.corner
            )
            if warm != self._artifacts["clock_period"]:
                raise AssertionError(
                    "imported snapshot clock period diverged from the "
                    f"flow: {warm} != {self._artifacts['clock_period']}"
                )
        warm_delays = region_delays(
            self._snap_ffsub,
            self.library,
            self.result.region_map,
            corner=options.corner,
        )
        if warm_delays != self.result.network.region_delays:
            raise AssertionError(
                "ffsub snapshot region delays diverged from the flow"
            )

    # ------------------------------------------------------------------
    # parity oracle
    # ------------------------------------------------------------------
    def oracle(self, edits: Union[NetlistEdit, Sequence[NetlistEdit]] = ())\
            -> DesyncResult:
        """``mode="full"``: from-scratch re-flow of input + all edits.

        Replays the session's whole edit history plus ``edits`` on a
        pristine clone of the original input through the untouched
        pipeline.  Incremental outputs must equal this bit for bit.
        """
        from ..desync.tool import desynchronize

        module = self._input.clone()
        for edit in self._edits_applied:
            apply_edit(module, self.library, edit)
        for edit in _as_edits(edits):
            apply_edit(module, self.library, edit)
        return desynchronize(module, self.library, self.options)

    # ------------------------------------------------------------------
    # the ECO entry point
    # ------------------------------------------------------------------
    def apply(
        self,
        edits: Union[NetlistEdit, Sequence[NetlistEdit]],
        verify: str = "none",
    ) -> ReflowOutcome:
        """Apply edits and re-derive only what they invalidate.

        ``verify`` scopes the post-edit re-simulation: ``"none"``
        (default), ``"affected"`` (handshake probe over only the
        regions the edit touched) or ``"full"`` (whole-design
        observation run).
        """
        if self.result is None:
            raise EditError("call start() before apply()")
        if verify not in ("none", "affected", "full"):
            raise EditError(f"unknown verify mode {verify!r}")
        batch = _as_edits(edits)
        if not batch:
            raise EditError("apply() needs at least one edit")
        with trace.span(
            "flow.incremental.apply", edits=len(batch), verify=verify
        ):
            if all(self._fast_eligible(edit) for edit in batch):
                outcome = self._apply_fast(batch)
            else:
                outcome = self._apply_deep(batch)
            self._edits_applied.extend(batch)
            self._record(outcome, batch, verify)
        return outcome

    # -- fast-path guards ----------------------------------------------
    def _fast_eligible(self, edit: NetlistEdit) -> bool:
        if edit.kind == "swap_cell":
            return self._fast_swap_ok(edit)
        if edit.kind == "annotate_wires":
            return self._fast_annotate_ok(edit)
        return False

    def _fast_swap_ok(self, edit: NetlistEdit) -> bool:
        """A swap is spliceable when it provably preserves every
        classification the cached artifacts encode: same pin interface,
        combinational on both sides, untouched by logic cleaning, and
        present (with the same binding) in every snapshot."""
        gatefile = self.tool.gatefile
        modules = (
            self._snap_imported,
            self._snap_grouped,
            self._snap_ffsub,
            self.result.module,
        )
        if edit.instance is None or edit.cell is None:
            return False
        first = self._snap_imported.instances.get(edit.instance)
        if first is None:
            return False
        for module in modules:
            inst = module.instances.get(edit.instance)
            if inst is None or inst.cell != first.cell:
                return False
        old_info = gatefile.cells.get(first.cell)
        new_info = gatefile.cells.get(edit.cell)
        if old_info is None or new_info is None:
            return False
        if edit.cell not in self.library.cells:
            return False
        if old_info.is_sequential or new_info.is_sequential:
            return False
        if old_info.kind != new_info.kind:
            return False
        if set(old_info.pins) != set(new_info.pins):
            return False
        for name, pin in old_info.pins.items():
            other = new_info.pins[name]
            if pin.direction != other.direction or pin.is_clock != other.is_clock:
                return False
        if self.options.clean and self.options.grouping == "auto":
            # logic cleaning keys on buffer/inverter-ness: a swap that
            # crosses that boundary changes what `clean_logic` removes
            for info in (old_info, new_info):
                if info.is_buffer or info.is_inverter:
                    return False
        return True

    def _fast_annotate_ok(self, edit: NetlistEdit) -> bool:
        """Annotations are spliceable only on pure design nets.

        Nets created by flip-flop substitution (the per-region enable
        nets ``gm_*``/``gs_*``, master-slave plumbing) or by the
        control-network insertion (handshake, delay-element wiring)
        feed sizing decisions the splice treats as invariant -- the
        ack-matching element covers the *enable net's* insertion delay,
        for one.  Design nets only influence the clock period and the
        region delays, both re-derived warm on the fast path."""
        final = self.result.module
        grouped = self._snap_grouped
        ffsub = self._snap_ffsub
        for net, _value in (*edit.wire_caps, *edit.wire_delays):
            if (net in final.nets or net in ffsub.nets) \
                    and net not in grouped.nets:
                return False
        return True

    # -- fast path ------------------------------------------------------
    def _apply_fast(self, batch: Sequence[NetlistEdit]) -> ReflowOutcome:
        options = self.options
        result = self.result
        dirty_cells: Set[str] = set()
        dirty_nets: Set[str] = set()
        snapshots = (
            self._snap_imported,
            self._snap_grouped,
            self._snap_ffsub,
            result.module,
        )
        for edit in batch:
            for module in snapshots:
                apply_edit(module, self.library, edit)
            if edit.kind == "swap_cell":
                dirty_cells.add(edit.instance)
                inst = self._snap_ffsub.instances[edit.instance]
                dirty_nets.update(inst.pins.values())

        reused = {name: True for name in FLOW_STAGES}
        # import: hygiene untouched; clock period re-derived warm
        clock_period = options.clock_period
        if clock_period is None:
            clock_period = min_clock_period(
                self._snap_imported, self.library, options.corner
            )

        # group: revalidate the cached partition around the dirty cells
        if dirty_cells:
            spliced = regroup_incremental(
                self._snap_ffsub,
                self.tool.gatefile,
                result.region_map,
                dirty_cells,
                options.false_path_nets,
            )
            if spliced is None:
                return self._apply_deep(batch, already_applied=True)
            touched_regions = {
                result.region_map.region_of(cell) for cell in dirty_cells
            }
            problems = validate_independence_for(
                self._snap_ffsub,
                self.tool.gatefile,
                result.region_map,
                sorted(r for r in touched_regions if r is not None),
                options.false_path_nets,
            )
            if problems:
                # same failure a cold run would hit in its group stage
                return self._apply_deep(batch, already_applied=True)

        # ddg: confirm the cached graph against the dirty-net edges
        if dirty_nets:
            confirmed = patch_ddg(
                result.ddg,
                self._snap_ffsub,
                self.tool.gatefile,
                result.region_map,
                dirty_nets,
                options.false_path_nets,
                env_instances=self._artifacts.get("foreign"),
            )
            if not confirmed:
                return self._apply_deep(batch, already_applied=True)

        # delays: re-select element lengths through the warm STA
        old_delays = dict(result.network.region_delays)
        new_delays = region_delays(
            self._snap_ffsub,
            self.library,
            result.region_map,
            corner=options.corner,
        )
        resized = False
        for region, element in result.network.delay_elements.items():
            length = element_length_for(
                result.ladder,
                new_delays.get(region, 0.0),
                options.delay_margin,
                options.delay_mux_taps,
                options.delay_mux_headroom,
            )
            if length != element.length:
                resized = True
                break

        if resized:
            outcome = self._reinsert_network(new_delays, clock_period)
        else:
            # the splice: every structure survives, only the recorded
            # region delays and the SDC (pure functions) refresh
            result.network.region_delays = new_delays
            result.sdc = generate_constraints(
                result.module,
                result.network,
                clock_period,
                options.delay_margin,
            )
            self._artifacts["clock_period"] = clock_period
            self._artifacts["sdc"] = result.sdc
            reused["constraints"] = False
            outcome = ReflowOutcome(
                result=result,
                mode="incremental",
                path="splice",
                reused=reused,
                region_status={
                    region: "reused" for region in result.network.region_delays
                },
                clock_period=clock_period,
            )
        outcome.verified_regions = sorted(
            {
                result.region_map.region_of(cell)
                for cell in dirty_cells
                if result.region_map.region_of(cell) is not None
            }
            | {
                region
                for region, status in outcome.region_status.items()
                if status != "reused"
            }
            | {
                region
                for region in new_delays
                if new_delays.get(region) != old_delays.get(region)
            }
        )
        return outcome

    def _reinsert_network(
        self, new_delays: Dict[str, float], clock_period: float
    ) -> ReflowOutcome:
        """An element length moved: re-insert the controller network
        into a clone of the (already edited) pre-network snapshot,
        feeding it the warm region delays so no STA pass repeats."""
        options = self.options
        result = self.result
        old_network = result.network
        work = self._snap_ffsub.clone()
        network = insert_control_network(
            work,
            self.library,
            self.tool.gatefile,
            result.region_map,
            result.ddg,
            result.ladder,
            chooser=self.tool.chooser,
            delay_margin=options.delay_margin,
            mux_taps=options.delay_mux_taps,
            mux_headroom=options.delay_mux_headroom,
            reset_port=options.reset_port,
            corner=options.corner,
            precomputed_delays=new_delays,
        )
        sdc = generate_constraints(
            work, network, clock_period, options.delay_margin
        )
        result.module.copy_from(work)
        result.network = network
        result.sdc = sdc
        self._artifacts.update(
            {
                "network": network,
                "sdc": sdc,
                "clock_period": clock_period,
                "module.network": result.module,
            }
        )
        reused = {name: True for name in FLOW_STAGES}
        reused["network"] = False
        reused["constraints"] = False
        return ReflowOutcome(
            result=result,
            mode="incremental",
            path="network",
            reused=reused,
            region_status=diff_networks(old_network, network),
            clock_period=clock_period,
        )

    # -- deep fallback --------------------------------------------------
    def _apply_deep(
        self,
        batch: Sequence[NetlistEdit],
        already_applied: bool = False,
    ) -> ReflowOutcome:
        """Re-run the stage functions from the imported snapshot.

        Still far from a cold start: design import is skipped, the
        ladder characterisation is reused and the edit lands on a
        clone that carries the exact post-import name-counter state, so
        the output is bit-identical to a from-scratch flow over the
        edited input.
        """
        options = self.options
        result = self.result
        old_network = result.network
        if not already_applied:
            # fast-path bailouts already pushed the edits into every
            # snapshot; first-time deep edits only touch the base one
            for edit in batch:
                apply_edit(self._snap_imported, self.library, edit)
        clock_period = options.clock_period
        if clock_period is None:
            clock_period = min_clock_period(
                self._snap_imported, self.library, options.corner
            )
        working = self._snap_imported.clone()
        artifacts: Dict[str, Any] = {
            "module.imported": working,
            "clock_period": clock_period,
            "import_stats": dict(self._artifacts["import_stats"]),
            "ladder": result.ladder,
        }
        self._run_stages(
            artifacts, ("group", "ffsub", "ddg", "network", "constraints")
        )
        self._artifacts = artifacts
        final = artifacts["module.network"]
        result.module.copy_from(final)
        artifacts["module.network"] = result.module
        result.region_map = artifacts["region_map.ffsub"]
        result.ddg = artifacts["ddg"]
        result.substitution = artifacts["substitution"]
        result.network = artifacts["network"]
        result.sdc = artifacts["sdc"]
        import_stats = dict(artifacts["import_stats"])
        import_stats.update(artifacts["clean_stats"])
        result.import_stats = import_stats
        self._prewarm()
        reused = {name: False for name in FLOW_STAGES}
        reused["import"] = True
        reused["delays"] = True
        return ReflowOutcome(
            result=result,
            mode="incremental",
            path="deep",
            reused=reused,
            region_status=diff_networks(old_network, result.network),
            clock_period=clock_period,
        )

    # -- bookkeeping ----------------------------------------------------
    def _record(
        self,
        outcome: ReflowOutcome,
        batch: Sequence[NetlistEdit],
        verify: str,
    ) -> None:
        for stage, hit in outcome.reused.items():
            if stage == "sim":
                continue
            name = "flow.incr.reused" if hit else "flow.incr.recomputed"
            metrics.counter(name, labels={"stage": stage}).inc()
        metrics.counter(
            "flow.incr.applies", labels={"path": outcome.path}
        ).inc()
        if verify != "none":
            self._verify(outcome, verify)
            name = "flow.incr.reused" if outcome.reused["sim"] else \
                "flow.incr.recomputed"
            metrics.counter(name, labels={"stage": "sim"}).inc()
        if self.cache is not None and self.parent_key is not None:
            from ..engine.cache import stable_hash

            child = stable_hash(
                {
                    "parent": self.parent_key,
                    "edits": [e.to_dict() for e in self._edits_applied],
                }
            )
            self.cache.record_patch(
                child,
                {
                    "parent": self.parent_key,
                    "path": outcome.path,
                    "edits": [e.to_dict() for e in batch],
                    "reused": dict(outcome.reused),
                },
            )
            self.parent_key = child

    def _verify(self, outcome: ReflowOutcome, verify: str) -> None:
        """Re-simulate the handshake layer, scoped to what changed."""
        result = self.result
        regions = sorted(result.network.handshake_nets())
        if verify == "affected":
            scoped = [r for r in outcome.verified_regions if r in regions]
            if not scoped and outcome.path != "splice":
                scoped = regions
            if not scoped:
                # nothing moved: the splice left every region's
                # structure and delays alone, so there is nothing to
                # re-simulate -- count the stage as reused
                outcome.reused["sim"] = True
                outcome.verified_regions = []
                return
        else:
            scoped = regions
        outcome.reused["sim"] = False
        outcome.verified_regions = scoped
        outcome.report = _scoped_handshake_run(
            result, self.library, scoped, self.options.corner
        )


def _as_edits(
    edits: Union[NetlistEdit, Sequence[NetlistEdit]]
) -> Tuple[NetlistEdit, ...]:
    if isinstance(edits, NetlistEdit):
        return (edits,)
    return tuple(edits)


class _ScopedSource:
    """A probe source exposing only the affected regions' handshakes.

    ``HandshakeProbe`` reads ``source.network.handshake_nets()`` and
    ``source.ddg``; narrowing the former to the affected regions keeps
    the simulator full-design (electrically honest) while the probe
    watches -- and the report covers -- only the region boundary nets
    the edit could have disturbed.
    """

    def __init__(self, result: DesyncResult, regions: Iterable[str]):
        keep = set(regions)
        full = result.network.handshake_nets()
        self._nets = {r: dict(n) for r, n in full.items() if r in keep}
        self.ddg = result.ddg
        self.network = self

    def handshake_nets(self) -> Dict[str, Dict[str, str]]:
        return self._nets


def _scoped_handshake_run(
    result: DesyncResult,
    library: Library,
    regions: Sequence[str],
    corner: str,
    items: int = 8,
    free_run_time: float = 500.0,
) -> Dict[str, Any]:
    """Affected-region-only re-verification (the ``sim`` stage)."""
    from ..sim.probes import DeadlockWatchdog, HandshakeProbe, handshake_report
    from ..sim.simulator import SimulationError, Simulator
    from ..sim.testbench import HandshakeTestbench

    with trace.span("flow.incremental.verify", regions=len(regions)):
        simulator = Simulator(result.module, library, corner, kernel="compiled")
        probe = HandshakeProbe(simulator, _ScopedSource(result, regions))
        watchdog = DeadlockWatchdog(probe)
        bench = HandshakeTestbench(
            simulator, result.network.env_ports, result.network.reset_net
        )
        error = None
        try:
            bench.apply_reset(0)
            has_inputs = any(
                "ri" in ports for ports in result.network.env_ports.values()
            )
            if has_inputs:
                bench.run_items(max(items - 1, 0), None, first_item=1)
            else:
                bench.run_free(free_run_time)
        except SimulationError as exc:
            error = str(exc)
        probe.finalize()
        watchdog.poll(simulator.now)
        report = handshake_report(probe, watchdog=watchdog)
        report["regions_verified"] = list(regions)
        if error is not None:
            report["error"] = error
        return report
