"""End-to-end implementation flows and result reporting."""

from .reports import AreaReport, ComparisonTable, area_report, overhead
from .implementation import (
    ImplementationResult,
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)
from .observe import ObservationResult, observe_handshake

__all__ = [
    "AreaReport",
    "ComparisonTable",
    "ImplementationResult",
    "ObservationResult",
    "area_report",
    "compare_implementations",
    "implement_desynchronized",
    "implement_synchronous",
    "observe_handshake",
    "overhead",
]
