"""End-to-end implementation flows and result reporting."""

from .reports import AreaReport, ComparisonTable, area_report, overhead
from .implementation import (
    ImplementationResult,
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)
from .observe import ObservationResult, observe_handshake
from .incremental import (
    EditError,
    IncrementalSession,
    NetlistEdit,
    ReflowOutcome,
    apply_edit,
    load_edits,
)

__all__ = [
    "AreaReport",
    "ComparisonTable",
    "EditError",
    "ImplementationResult",
    "IncrementalSession",
    "NetlistEdit",
    "ObservationResult",
    "ReflowOutcome",
    "apply_edit",
    "area_report",
    "compare_implementations",
    "implement_desynchronized",
    "implement_synchronous",
    "load_edits",
    "observe_handshake",
    "overhead",
]
