"""One-call simulation observability for a desynchronized design.

:func:`observe_handshake` is what the CLI's ``--vcd`` /
``--handshake-report`` flags call: it runs the handshake testbench over
a :class:`repro.desync.tool.DesyncResult` with the
:class:`~repro.sim.probes.HandshakeProbe` + watchdog attached and an
optional VCD waveform streaming to disk, then folds everything into the
cross-validated token-flow report::

    from repro.flow import observe_handshake

    obs = observe_handshake(result, library, items=32, vcd_path="run.vcd")
    print(obs.report["effective_period_measured_ns"])
    print(obs.report["agreement"])          # vs effective_period_model

A handshake timeout (e.g. a genuinely deadlocked network) does not
raise: the run stops, the watchdog names the blocked controller cycle
and the report carries an ``error`` field instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..desync.tool import DesyncResult
from ..liberty.model import Library
from ..obs import trace as trace_mod
from ..obs.vcd import VcdWriter
from ..sim.probes import DeadlockWatchdog, HandshakeProbe, handshake_report
from ..sim.simulator import SimulationError, Simulator
from ..sim.testbench import HandshakeTestbench, StimulusFn

__all__ = ["ObservationResult", "observe_handshake"]


@dataclass
class ObservationResult:
    """Everything :func:`observe_handshake` produced."""

    simulator: Simulator
    probe: HandshakeProbe
    watchdog: DeadlockWatchdog
    report: Dict[str, Any]
    vcd_path: Optional[str] = None
    vcd_nets: List[str] = field(default_factory=list)


def observe_handshake(
    result: DesyncResult,
    library: Library,
    items: int = 16,
    stimulus: Optional[StimulusFn] = None,
    corner: str = "worst",
    kernel: str = "compiled",
    vcd_path: Optional[str] = None,
    vcd_nets: Optional[Sequence[str]] = None,
    vcd_include: Optional[Sequence[str]] = None,
    vcd_exclude: Optional[Sequence[str]] = None,
    watchdog_window: float = 100.0,
    free_run_time: float = 500.0,
    warmup: int = 3,
) -> ObservationResult:
    """Run the handshake network under full observation.

    Mirrors :func:`repro.sim.flowequiv.run_desynchronized` (zero-init,
    reset, ``items`` handshakes or a free run for closed designs) with
    the probe, watchdog and optional VCD writer attached *before*
    reset, so the waveform covers the whole run.  When no VCD net
    selection is given, the default waveform is the handshake layer
    itself: every net the probe watches.
    """
    simulator = Simulator(result.module, library, corner, kernel=kernel)
    probe = HandshakeProbe(simulator, result)
    watchdog = DeadlockWatchdog(probe, window_ns=watchdog_window)

    writer: Optional[VcdWriter] = None
    selected: List[str] = []
    if vcd_path is not None:
        writer = VcdWriter(vcd_path)
        if vcd_nets is None and vcd_include is None:
            vcd_nets = probe.watched_nets()
        selected = writer.attach(
            simulator,
            nets=vcd_nets,
            include=vcd_include,
            exclude=vcd_exclude,
        )

    bench = HandshakeTestbench(
        simulator, result.network.env_ports, result.network.reset_net
    )
    error: Optional[str] = None
    try:
        initial = stimulus(0) if stimulus is not None else None
        bench.apply_reset(0, initial_inputs=initial)
        has_inputs = any(
            "ri" in ports for ports in result.network.env_ports.values()
        )
        if has_inputs:
            bench.run_items(max(items - 1, 0), stimulus, first_item=1)
        else:
            bench.run_free(free_run_time)
    except SimulationError as exc:
        error = str(exc)
    finally:
        if writer is not None:
            writer.close()

    probe.finalize()
    watchdog.poll(simulator.now)
    report = handshake_report(
        probe,
        result=result,
        library=library,
        corner=corner,
        warmup=warmup,
        watchdog=watchdog,
    )
    if error is not None:
        report["error"] = error
    # correlate the report with the surrounding run: when this
    # observation happens inside a traced job (the service daemon
    # scopes a per-job tracer around execute_job), stamp its trace ID
    trace_id = getattr(trace_mod.get_tracer(), "trace_id", None)
    if trace_id is not None:
        report["trace_id"] = trace_id
    return ObservationResult(
        simulator=simulator,
        probe=probe,
        watchdog=watchdog,
        report=report,
        vcd_path=vcd_path,
        vcd_nets=selected,
    )
