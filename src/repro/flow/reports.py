"""Area / timing / power reports in the paper's table formats.

Table 5.1 / 5.2 rows: per design phase (post-synthesis, post-layout):
nets, cells, cell area split into combinational and sequential logic,
core size and utilization -- plus the percentage overhead columns
comparing the desynchronized version against the synchronous one.

Accounting note from section 5.3.1: the paper counts the combinational
cells added by flip-flop substitution (scan muxes, set/reset gating) as
*sequential logic overhead*; drdesync tags those cells ``seq_overhead``
and this module honours the same convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..liberty.gatefile import Gatefile
from ..liberty.model import Library
from ..netlist.core import Module


@dataclass
class AreaReport:
    """One column of Table 5.1 / 5.2 for one design phase."""

    nets: int = 0
    cells: int = 0
    cell_area: float = 0.0
    combinational_area: float = 0.0
    sequential_area: float = 0.0
    core_size: Optional[float] = None
    utilization: Optional[float] = None

    def as_dict(self) -> Dict[str, float]:
        out = {
            "# nets": self.nets,
            "# cells": self.cells,
            "cell area (um2)": round(self.cell_area, 2),
            "combinational logic (um2)": round(self.combinational_area, 2),
            "sequential logic (um2)": round(self.sequential_area, 2),
        }
        if self.core_size is not None:
            out["core size (um2)"] = round(self.core_size, 2)
        if self.utilization is not None:
            out["core utilization (%)"] = round(self.utilization * 100, 2)
        return out


def area_report(
    module: Module,
    library: Library,
    gatefile: Gatefile,
    core_size: Optional[float] = None,
    utilization: Optional[float] = None,
) -> AreaReport:
    """Measure a netlist, applying the paper's seq-overhead accounting."""
    report = AreaReport(
        nets=len(module.nets),
        cells=len(module.instances),
        core_size=core_size,
        utilization=utilization,
    )
    for inst in module.instances.values():
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        report.cell_area += cell.area
        info = gatefile.cells.get(inst.cell)
        is_sequential = info.is_sequential if info else False
        if is_sequential or inst.attributes.get("seq_overhead"):
            report.sequential_area += cell.area
        else:
            report.combinational_area += cell.area
    return report


def overhead(sync_value: float, desync_value: float) -> float:
    """Percentage overhead of the desynchronized value."""
    if sync_value == 0:
        return 0.0
    return (desync_value - sync_value) / sync_value * 100.0


@dataclass
class ComparisonTable:
    """Sync vs desync comparison in the Table 5.1 / 5.2 layout.

    ``trace_id`` ties the table to the run that produced it (the
    service daemon stamps each job's trace ID), so a report artifact
    can be correlated back to its journal lines and exported spans.
    """

    design: str
    phases: Dict[str, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )
    trace_id: Optional[str] = None

    def add_phase(
        self, phase: str, sync: AreaReport, desync: AreaReport
    ) -> None:
        rows: Dict[str, Dict[str, float]] = {}
        sync_dict = sync.as_dict()
        desync_dict = desync.as_dict()
        for key in sync_dict:
            if key not in desync_dict:
                continue
            rows[key] = {
                "sync": sync_dict[key],
                "desync": desync_dict[key],
                "overhead_pct": round(
                    overhead(sync_dict[key], desync_dict[key]), 2
                ),
            }
        self.phases[phase] = rows

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "design": self.design,
            "phases": self.phases,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    def to_text(self) -> str:
        lines = [f"== {self.design}: synchronous vs desynchronized =="]
        if self.trace_id is not None:
            lines.append(f"trace: {self.trace_id}")
        for phase, rows in self.phases.items():
            lines.append(f"-- {phase} --")
            lines.append(
                f"{'property':28s} {'sync':>14s} {'desync':>14s} {'ovhd %':>8s}"
            )
            for name, row in rows.items():
                lines.append(
                    f"{name:28s} {row['sync']:>14.2f} {row['desync']:>14.2f} "
                    f"{row['overhead_pct']:>8.2f}"
                )
        return "\n".join(lines)
