"""End-to-end implementation flows (Figures 4.1 and 5.1).

Both flows start from the same post-synthesis netlist and use the same
backend, so the comparison is fair -- the paper's central experimental
discipline.  The "synthesis" front-end of the paper (Design Compiler)
is replaced by the gate-level design generators; the flow adds the
optional DFT pass, the desynchronization step for the asynchronous
variant, and the physical backend, collecting the Table 5.1 / 5.2
metrics at each phase.

Both flows execute as stage graphs on the
:class:`repro.engine.executor.FlowEngine`: with a cached engine, warm
reruns resume from the cached stage prefix; with ``jobs > 1`` the
synchronous and desynchronized branches of a comparison run in
parallel.  The P&R stage degrades gracefully -- a backend failure is
recorded on the result (and in the engine journal) while the
post-synthesis reports survive.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..desync.tool import DesyncOptions, DesyncResult, Drdesync
from ..dft.scan import ScanResult, insert_scan
from ..engine.executor import FlowEngine, FlowResult
from ..engine.graph import FlowGraph, Stage
from ..engine.stages import library_fingerprint
from ..liberty.gatefile import Gatefile, build_gatefile
from ..liberty.model import Library
from ..netlist.core import Module
from ..obs import trace
from ..physical.backend import BackendResult, run_backend
from ..sta.analysis import min_clock_period
from .reports import AreaReport, ComparisonTable, area_report

log = logging.getLogger("repro.flow")

#: engine used when the caller does not supply one: deterministic
#: serial execution, no cache -- the historical behaviour
_default_engine: Optional[FlowEngine] = None


def default_engine() -> FlowEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = FlowEngine()
    return _default_engine


@dataclass
class ImplementationResult:
    """One implemented design: netlist through layout with reports."""

    module: Module
    library: Library
    gatefile: Gatefile
    post_synthesis: AreaReport
    post_layout: Optional[AreaReport] = None
    backend: Optional[BackendResult] = None
    scan: Optional[ScanResult] = None
    desync: Optional[DesyncResult] = None
    min_period: Optional[float] = None
    #: stage name -> error text for stages that failed but were
    #: tolerated (graceful degradation of the backend)
    failures: Dict[str, str] = field(default_factory=dict)


def _synchronous_stages(
    library: Library,
    gatefile: Gatefile,
    with_scan: bool,
    target_utilization: float,
    run_pnr: bool,
    prefix: str = "",
    module_input: str = "module.input",
) -> List[Stage]:
    """Conventional flow: (DFT) -> STA -> P&R -> reports."""
    libfp = library_fingerprint(library)
    p = prefix
    stages: List[Stage] = []
    module_key = module_input

    if with_scan:
        def s_scan(a: Dict[str, Any]) -> Dict[str, Any]:
            module = a[module_input]
            scan = insert_scan(module, library)
            return {p + "module.scan": module, p + "scan": scan}

        stages.append(
            Stage(
                name=p + "scan",
                func=s_scan,
                inputs=(module_input,),
                outputs=(p + "module.scan", p + "scan"),
                params={"library": libfp},
            )
        )
        module_key = p + "module.scan"

    def s_synth_report(a: Dict[str, Any]) -> AreaReport:
        return area_report(a[module_key], library, gatefile)

    stages.append(
        Stage(
            name=p + "report.synth",
            func=s_synth_report,
            inputs=(module_key,),
            outputs=(p + "post_synthesis",),
            params={"library": libfp},
        )
    )

    def s_sta(a: Dict[str, Any]) -> float:
        return min_clock_period(a[module_key], library, "worst")

    stages.append(
        Stage(
            name=p + "sta",
            func=s_sta,
            inputs=(module_key,),
            outputs=(p + "min_period",),
            params={"library": libfp, "corner": "worst"},
        )
    )

    if run_pnr:
        stages.extend(
            _backend_stages(
                library,
                gatefile,
                target_utilization,
                prefix=p,
                module_key=module_key,
                sdc_key=None,
                after=(p + "report.synth", p + "sta"),
            )
        )
    return stages


def _backend_stages(
    library: Library,
    gatefile: Gatefile,
    target_utilization: float,
    prefix: str,
    module_key: str,
    sdc_key: Optional[str],
    after: Tuple[str, ...],
) -> List[Stage]:
    """P&R plus the post-layout report (section 4.7)."""
    libfp = library_fingerprint(library)
    p = prefix
    pnr_inputs = (module_key,) + ((sdc_key,) if sdc_key else ())

    def s_pnr(a: Dict[str, Any]) -> Dict[str, Any]:
        module = a[module_key]
        backend = run_backend(
            module,
            library,
            sdc=a[sdc_key] if sdc_key else None,
            target_utilization=target_utilization,
        )
        return {p + "module.layout": module, p + "backend": backend}

    def s_layout_report(a: Dict[str, Any]) -> AreaReport:
        backend = a[p + "backend"]
        return area_report(
            a[p + "module.layout"],
            library,
            gatefile,
            core_size=backend.report.core_size,
            utilization=backend.report.utilization,
        )

    return [
        Stage(
            name=p + "pnr",
            func=s_pnr,
            inputs=pnr_inputs,
            outputs=(p + "module.layout", p + "backend"),
            params={
                "library": libfp,
                "target_utilization": target_utilization,
            },
            # P&R mutates the netlist: order it after every stage that
            # reads the pre-layout module
            after=after,
        ),
        Stage(
            name=p + "report.layout",
            func=s_layout_report,
            inputs=(p + "module.layout", p + "backend"),
            outputs=(p + "post_layout",),
            params={"library": libfp},
        ),
    ]


def _desynchronized_stages(
    tool: Drdesync,
    options: Optional[DesyncOptions],
    with_scan: bool,
    target_utilization: float,
    run_pnr: bool,
    prefix: str = "",
    module_input: str = "module.input",
) -> List[Stage]:
    """Desynchronization flow: (DFT) -> drdesync -> P&R -> reports."""
    library = tool.library
    libfp = library_fingerprint(library)
    p = prefix
    stages: List[Stage] = []
    module_key = module_input

    if with_scan:
        def s_scan(a: Dict[str, Any]) -> Dict[str, Any]:
            module = a[module_input]
            scan = insert_scan(module, library)
            return {p + "module.scan": module, p + "scan": scan}

        stages.append(
            Stage(
                name=p + "scan",
                func=s_scan,
                inputs=(module_input,),
                outputs=(p + "module.scan", p + "scan"),
                params={"library": libfp},
            )
        )
        module_key = p + "module.scan"

    stages.extend(
        tool.build_stages(options, prefix=p, module_input=module_key)
    )

    def s_synth_report(a: Dict[str, Any]) -> AreaReport:
        return area_report(a[p + "module.network"], library, tool.gatefile)

    stages.append(
        Stage(
            name=p + "report.synth",
            func=s_synth_report,
            inputs=(p + "module.network",),
            outputs=(p + "post_synthesis",),
            params={"library": libfp},
        )
    )
    if run_pnr:
        stages.extend(
            _backend_stages(
                library,
                tool.gatefile,
                target_utilization,
                prefix=p,
                module_key=p + "module.network",
                sdc_key=p + "sdc",
                after=(p + "report.synth",),
            )
        )
    return stages


def _tolerated(result: FlowResult, prefix: str = "") -> Dict[str, str]:
    """Backend stages may fail gracefully; everything else raises."""
    backend_stages = {prefix + "pnr", prefix + "report.layout"}
    result.raise_first_failure(allow=backend_stages)
    return {
        record.name: record.error_text or record.status.value
        for record in result.failed_stages()
        if record.name in backend_stages
    }


def _assemble_synchronous(
    module: Module,
    library: Library,
    gatefile: Gatefile,
    result: FlowResult,
    prefix: str = "",
) -> ImplementationResult:
    artifacts = result.artifacts
    failures = _tolerated(result, prefix)
    final = artifacts.get(prefix + "module.layout") or artifacts.get(
        prefix + "module.scan"
    )
    if final is not None and final is not module:
        module.copy_from(final)
    out = ImplementationResult(
        module,
        library,
        gatefile,
        artifacts[prefix + "post_synthesis"],
        scan=artifacts.get(prefix + "scan"),
        failures=failures,
    )
    out.min_period = artifacts.get(prefix + "min_period")
    out.backend = artifacts.get(prefix + "backend")
    out.post_layout = artifacts.get(prefix + "post_layout")
    return out


def _assemble_desynchronized(
    module: Module,
    tool: Drdesync,
    result: FlowResult,
    prefix: str = "",
) -> ImplementationResult:
    artifacts = result.artifacts
    failures = _tolerated(result, prefix)
    desync = tool.assemble_result(module, artifacts, prefix=prefix)
    final = artifacts.get(prefix + "module.layout")
    if final is not None and final is not module:
        module.copy_from(final)
    out = ImplementationResult(
        module,
        tool.library,
        tool.gatefile,
        artifacts[prefix + "post_synthesis"],
        scan=artifacts.get(prefix + "scan"),
        desync=desync,
        failures=failures,
    )
    out.backend = artifacts.get(prefix + "backend")
    out.post_layout = artifacts.get(prefix + "post_layout")
    return out


def implement_synchronous(
    module: Module,
    library: Library,
    with_scan: bool = False,
    target_utilization: float = 0.92,
    run_pnr: bool = True,
    engine: Optional[FlowEngine] = None,
) -> ImplementationResult:
    """The conventional flow: (DFT) -> P&R -> reports."""
    engine = engine or default_engine()
    log.info("implementing %s (synchronous flow)", module.name)
    with trace.span("flow:sync", module=module.name) as span:
        gatefile = build_gatefile(library)
        graph = FlowGraph("implement-sync")
        graph.add_stages(
            _synchronous_stages(
                library, gatefile, with_scan, target_utilization, run_pnr
            )
        )
        result = engine.run(
            graph,
            initial={"module.input": module},
            label=f"sync:{module.name}",
        )
        out = _assemble_synchronous(module, library, gatefile, result)
        span.set("failures", len(out.failures))
    if out.failures:
        log.warning(
            "%s: tolerated stage failures: %s",
            module.name,
            ", ".join(sorted(out.failures)),
        )
    return out


def implement_desynchronized(
    module: Module,
    library: Library,
    tool: Optional[Drdesync] = None,
    options: Optional[DesyncOptions] = None,
    with_scan: bool = False,
    target_utilization: float = 0.90,
    run_pnr: bool = True,
    engine: Optional[FlowEngine] = None,
) -> ImplementationResult:
    """The desynchronization flow: (DFT) -> drdesync -> P&R -> reports."""
    engine = engine or default_engine()
    tool = tool or Drdesync(library)
    log.info("implementing %s (desynchronization flow)", module.name)
    with trace.span("flow:desync", module=module.name) as span:
        graph = FlowGraph("implement-desync")
        graph.add_stages(
            _desynchronized_stages(
                tool, options, with_scan, target_utilization, run_pnr
            )
        )
        result = engine.run(
            graph,
            initial={"module.input": module},
            label=f"desync:{module.name}",
        )
        out = _assemble_desynchronized(module, tool, result)
        span.set("failures", len(out.failures))
    if out.failures:
        log.warning(
            "%s: tolerated stage failures: %s",
            module.name,
            ", ".join(sorted(out.failures)),
        )
    return out


def implement_comparison(
    design_name: str,
    sync_module: Module,
    desync_module: Module,
    library: Library,
    options: Optional[DesyncOptions] = None,
    sync_utilization: float = 0.92,
    desync_utilization: float = 0.90,
    with_scan: bool = False,
    run_pnr: bool = True,
    engine: Optional[FlowEngine] = None,
) -> Tuple[ImplementationResult, ImplementationResult, ComparisonTable]:
    """Both implementations as ONE stage graph (Figure 5.1 discipline).

    The two branches share no artifacts, so a parallel engine runs them
    concurrently; a cached engine resumes either branch from its cached
    prefix independently.
    """
    engine = engine or default_engine()
    log.info("comparing %s: synchronous vs desynchronized", design_name)
    with trace.span("flow:compare", design=design_name):
        gatefile = build_gatefile(library)
        tool = Drdesync(library)
        graph = FlowGraph(f"compare:{design_name}")
        graph.add_stages(
            _synchronous_stages(
                library,
                gatefile,
                with_scan,
                sync_utilization,
                run_pnr,
                prefix="sync:",
                module_input="sync:module.input",
            )
        )
        graph.add_stages(
            _desynchronized_stages(
                tool,
                options,
                with_scan,
                desync_utilization,
                run_pnr,
                prefix="desync:",
                module_input="desync:module.input",
            )
        )
        result = engine.run(
            graph,
            initial={
                "sync:module.input": sync_module,
                "desync:module.input": desync_module,
            },
            label=f"compare:{design_name}",
        )
        sync = _assemble_synchronous(
            sync_module, library, gatefile, result, prefix="sync:"
        )
        desync = _assemble_desynchronized(
            desync_module, tool, result, prefix="desync:"
        )
    table = compare_implementations(design_name, sync, desync)
    log.debug("comparison table for %s assembled", design_name)
    return sync, desync, table


def compare_implementations(
    design_name: str,
    sync: ImplementationResult,
    desync: ImplementationResult,
) -> ComparisonTable:
    """Assemble the Table 5.1 / 5.2 comparison."""
    trace_id = getattr(trace.get_tracer(), "trace_id", None)
    table = ComparisonTable(design_name, trace_id=trace_id)
    table.add_phase("Post Synthesis", sync.post_synthesis, desync.post_synthesis)
    if sync.post_layout and desync.post_layout:
        table.add_phase("Post Layout", sync.post_layout, desync.post_layout)
    return table
