"""End-to-end implementation flows (Figures 4.1 and 5.1).

Both flows start from the same post-synthesis netlist and use the same
backend, so the comparison is fair -- the paper's central experimental
discipline.  The "synthesis" front-end of the paper (Design Compiler)
is replaced by the gate-level design generators; the flow adds the
optional DFT pass, the desynchronization step for the asynchronous
variant, and the physical backend, collecting the Table 5.1 / 5.2
metrics at each phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..desync.tool import DesyncOptions, DesyncResult, Drdesync
from ..dft.scan import ScanResult, insert_scan
from ..liberty.gatefile import Gatefile, build_gatefile
from ..liberty.model import Library
from ..netlist.core import Module
from ..physical.backend import BackendResult, run_backend
from ..sta.analysis import min_clock_period
from .reports import AreaReport, ComparisonTable, area_report


@dataclass
class ImplementationResult:
    """One implemented design: netlist through layout with reports."""

    module: Module
    library: Library
    gatefile: Gatefile
    post_synthesis: AreaReport
    post_layout: Optional[AreaReport] = None
    backend: Optional[BackendResult] = None
    scan: Optional[ScanResult] = None
    desync: Optional[DesyncResult] = None
    min_period: Optional[float] = None


def implement_synchronous(
    module: Module,
    library: Library,
    with_scan: bool = False,
    target_utilization: float = 0.92,
    run_pnr: bool = True,
) -> ImplementationResult:
    """The conventional flow: (DFT) -> P&R -> reports."""
    gatefile = build_gatefile(library)
    scan = insert_scan(module, library) if with_scan else None
    post_synthesis = area_report(module, library, gatefile)
    result = ImplementationResult(
        module, library, gatefile, post_synthesis, scan=scan
    )
    result.min_period = min_clock_period(module, library, "worst")
    if run_pnr:
        backend = run_backend(
            module, library, target_utilization=target_utilization
        )
        result.backend = backend
        result.post_layout = area_report(
            module,
            library,
            gatefile,
            core_size=backend.report.core_size,
            utilization=backend.report.utilization,
        )
    return result


def implement_desynchronized(
    module: Module,
    library: Library,
    tool: Optional[Drdesync] = None,
    options: Optional[DesyncOptions] = None,
    with_scan: bool = False,
    target_utilization: float = 0.90,
    run_pnr: bool = True,
) -> ImplementationResult:
    """The desynchronization flow: (DFT) -> drdesync -> P&R -> reports."""
    tool = tool or Drdesync(library)
    scan = insert_scan(module, library) if with_scan else None
    desync = tool.run(module, options)
    post_synthesis = area_report(module, library, tool.gatefile)
    result = ImplementationResult(
        module,
        library,
        tool.gatefile,
        post_synthesis,
        scan=scan,
        desync=desync,
    )
    if run_pnr:
        backend = run_backend(
            module,
            library,
            sdc=desync.sdc,
            target_utilization=target_utilization,
        )
        result.backend = backend
        result.post_layout = area_report(
            module,
            library,
            tool.gatefile,
            core_size=backend.report.core_size,
            utilization=backend.report.utilization,
        )
    return result


def compare_implementations(
    design_name: str,
    sync: ImplementationResult,
    desync: ImplementationResult,
) -> ComparisonTable:
    """Assemble the Table 5.1 / 5.2 comparison."""
    table = ComparisonTable(design_name)
    table.add_phase("Post Synthesis", sync.post_synthesis, desync.post_synthesis)
    if sync.post_layout and desync.post_layout:
        table.add_phase("Post Layout", sync.post_layout, desync.post_layout)
    return table
