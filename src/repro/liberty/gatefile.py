"""The *gatefile*: library knowledge distilled for the desynchronizer.

Section 3.1.1 of the paper: "The first and most important part of the
preparation is the creation of the file called gatefile which contains
information about the library cells ... name, type (flip-flop, latch,
combinational logic gate), its pins, their name and type ... In addition
the gatefile contains replacement rules used during the flip-flop
substitution phase".

:class:`Gatefile` is generated from a parsed :class:`Library` (the
paper's custom .lib-parsing script), can be serialised to/from the text
format, and implements the netlist package's ``CellInfoProvider``
protocol so connectivity queries and grouping run off it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..netlist.core import CellInfoProvider, PortDirection
from .functions import Not, Var, expr_inputs, parse_function
from .model import CellKind, Library, LibraryCell, is_scan_cell


@dataclass
class GatePin:
    name: str
    direction: PortDirection
    is_clock: bool = False


@dataclass
class GateInfo:
    """One gatefile entry: what drdesync knows about a library cell."""

    name: str
    kind: CellKind
    pins: Dict[str, GatePin] = field(default_factory=dict)
    is_buffer: bool = False
    is_inverter: bool = False
    is_scan: bool = False

    @property
    def clock_pins(self) -> List[str]:
        return [p.name for p in self.pins.values() if p.is_clock]

    @property
    def data_inputs(self) -> List[str]:
        return [
            p.name
            for p in self.pins.values()
            if p.direction == PortDirection.INPUT and not p.is_clock
        ]

    @property
    def inputs(self) -> List[str]:
        return [
            p.name
            for p in self.pins.values()
            if p.direction == PortDirection.INPUT
        ]

    @property
    def outputs(self) -> List[str]:
        return [
            p.name
            for p in self.pins.values()
            if p.direction == PortDirection.OUTPUT
        ]

    @property
    def is_sequential(self) -> bool:
        return self.kind in (CellKind.FLIP_FLOP, CellKind.LATCH)


@dataclass
class ReplacementRule:
    """How to substitute one flip-flop cell by a master/slave latch pair.

    - ``front_logic``: liberty expression over the FF's data inputs that
      must be mapped to gates in front of the master latch (Fig 3.1 a/b:
      scan muxes, synchronous set/reset gates).  ``"D"`` means a direct
      wire.
    - ``async_clear`` / ``async_preset``: assertion expressions (e.g.
      ``"!CDN"``); they require data forcing and enable gating on *both*
      latches (Fig 3.1 c).
    - ``latch_cell``: the simple latch to instantiate twice.  When the
      library has no latch the rule records a placeholder name and
      :meth:`Gatefile.missing_latches` reports it for by-hand creation.
    """

    ff_cell: str
    latch_cell: str
    front_logic: str
    output_pins: Dict[str, str] = field(default_factory=dict)  # Q/QN -> IQ/!IQ
    async_clear: Optional[str] = None
    async_preset: Optional[str] = None


class GatefileError(Exception):
    """Raised for unknown cells/pins or malformed gatefile text."""


class Gatefile(CellInfoProvider):
    """Cell classification + replacement rules, queryable by the tool."""

    def __init__(self, library_name: str = ""):
        self.library_name = library_name
        self.cells: Dict[str, GateInfo] = {}
        self.rules: Dict[str, ReplacementRule] = {}
        self._missing_latches: Set[str] = set()

    # -- CellInfoProvider ------------------------------------------------
    def pin_direction(self, cell: str, pin: str) -> PortDirection:
        info = self.cells.get(cell)
        if info is None:
            raise GatefileError(f"cell {cell!r} not in gatefile")
        gate_pin = info.pins.get(pin)
        if gate_pin is None:
            raise GatefileError(f"pin {cell}.{pin} not in gatefile")
        return gate_pin.direction

    # -- queries ----------------------------------------------------------
    def info(self, cell: str) -> GateInfo:
        try:
            return self.cells[cell]
        except KeyError:
            raise GatefileError(f"cell {cell!r} not in gatefile")

    def kind(self, cell: str) -> CellKind:
        return self.info(cell).kind

    def is_flip_flop(self, cell: str) -> bool:
        return self.kind(cell) == CellKind.FLIP_FLOP

    def is_latch(self, cell: str) -> bool:
        return self.kind(cell) == CellKind.LATCH

    def is_combinational(self, cell: str) -> bool:
        return self.kind(cell) == CellKind.COMBINATIONAL

    def rule_for(self, cell: str) -> ReplacementRule:
        rule = self.rules.get(cell)
        if rule is None:
            raise GatefileError(f"no replacement rule for flip-flop {cell!r}")
        return rule

    def missing_latches(self) -> Set[str]:
        """Latch cells referenced by rules but absent from the library."""
        return set(self._missing_latches)

    # -- text round-trip ---------------------------------------------------
    def to_text(self) -> str:
        lines = [f"# gatefile for library {self.library_name}"]
        for info in self.cells.values():
            flags = []
            if info.is_buffer:
                flags.append("buffer")
            if info.is_inverter:
                flags.append("inverter")
            if info.is_scan:
                flags.append("scan")
            suffix = (" " + " ".join(flags)) if flags else ""
            lines.append(f"cell {info.name} {info.kind.value}{suffix}")
            for pin in info.pins.values():
                role = "clock" if pin.is_clock else pin.direction.value
                lines.append(f"  pin {pin.name} {role}")
            rule = self.rules.get(info.name)
            if rule is not None:
                lines.append(
                    f"  replace latch={rule.latch_cell} "
                    f'front="{rule.front_logic}" '
                    f'clear="{rule.async_clear or ""}" '
                    f'preset="{rule.async_preset or ""}" '
                    + " ".join(
                        f"{out}={fn}" for out, fn in rule.output_pins.items()
                    )
                )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Gatefile":
        gatefile = cls()
        current: Optional[GateInfo] = None
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                if line.startswith("# gatefile for library"):
                    gatefile.library_name = line.split()[-1]
                continue
            parts = line.split()
            if parts[0] == "cell":
                current = GateInfo(parts[1], CellKind(parts[2]))
                current.is_buffer = "buffer" in parts[3:]
                current.is_inverter = "inverter" in parts[3:]
                current.is_scan = "scan" in parts[3:]
                gatefile.cells[current.name] = current
            elif parts[0] == "pin":
                if current is None:
                    raise GatefileError("pin line outside cell block")
                role = parts[2]
                is_clock = role == "clock"
                direction = (
                    PortDirection.INPUT if is_clock else PortDirection(role)
                )
                current.pins[parts[1]] = GatePin(parts[1], direction, is_clock)
            elif parts[0] == "replace":
                if current is None:
                    raise GatefileError("replace line outside cell block")
                pairs = re.findall(r'(\w+)=("[^"]*"|\S+)', line[len("replace") :])
                fields = {key: value for key, value in pairs}
                outputs = {
                    key: value.strip('"')
                    for key, value in fields.items()
                    if key not in ("latch", "front", "clear", "preset")
                }
                gatefile.rules[current.name] = ReplacementRule(
                    ff_cell=current.name,
                    latch_cell=fields["latch"],
                    front_logic=fields["front"].strip('"'),
                    output_pins=outputs,
                    async_clear=fields.get("clear", "").strip('"') or None,
                    async_preset=fields.get("preset", "").strip('"') or None,
                )
            else:
                raise GatefileError(f"bad gatefile line: {raw_line!r}")
        return gatefile


def _classify_buffer_inverter(cell: LibraryCell) -> Tuple[bool, bool]:
    outs = cell.output_pins()
    ins = cell.input_pins()
    if cell.kind != CellKind.COMBINATIONAL or len(outs) != 1 or len(ins) != 1:
        return False, False
    function = cell.pins[outs[0]].function
    if function is None:
        return False, False
    expr = parse_function(function)
    if isinstance(expr, Var) and expr.name == ins[0]:
        return True, False
    if (
        isinstance(expr, Not)
        and isinstance(expr.arg, Var)
        and expr.arg.name == ins[0]
    ):
        return False, True
    return False, False


def _pick_latch(library: Library) -> Tuple[str, bool]:
    """Choose the simplest transparent latch; report if it must be created."""
    candidates = []
    for cell in library.cells_of_kind(CellKind.LATCH):
        seq = cell.sequential
        assert seq is not None
        # the simplest possible latch: plain enable, plain data, no async
        if seq.clear or seq.preset:
            continue
        if seq.clocked_on and seq.clocked_on.strip().startswith("!"):
            continue  # an inverted-enable latch (e.g. clock-gate) won't do
        if seq.next_state and seq.next_state.strip() in cell.pins:
            candidates.append(cell)
    if not candidates:
        return "GEN_LATCH", True
    best = min(candidates, key=lambda c: c.area)
    return best.name, False


def build_gatefile(library: Library) -> Gatefile:
    """Generate the gatefile from a parsed library (paper section 3.1.1)."""
    gatefile = Gatefile(library.name)
    latch_cell, latch_missing = _pick_latch(library)
    for cell in library.cells.values():
        info = GateInfo(cell.name, cell.kind)
        for pin in cell.pins.values():
            info.pins[pin.name] = GatePin(pin.name, pin.direction, pin.is_clock)
        info.is_buffer, info.is_inverter = _classify_buffer_inverter(cell)
        info.is_scan = is_scan_cell(cell)
        gatefile.cells[cell.name] = info

        if cell.kind == CellKind.FLIP_FLOP:
            seq = cell.sequential
            assert seq is not None
            outputs: Dict[str, str] = {}
            for out in cell.output_pins():
                function = cell.pins[out].function or seq.state_pin
                outputs[out] = function
            gatefile.rules[cell.name] = ReplacementRule(
                ff_cell=cell.name,
                latch_cell=latch_cell,
                front_logic=seq.next_state or "D",
                output_pins=outputs,
                async_clear=seq.clear,
                async_preset=seq.preset,
            )
            if latch_missing:
                gatefile._missing_latches.add(latch_cell)
    return gatefile
