"""Object model for technology libraries (Liberty subset).

Delay model: the classic CMOS linear model --
``delay = intrinsic + resistance * load_capacitance`` -- which old
Liberty files express with ``intrinsic_rise`` / ``rise_resistance``
attributes.  Loads are in pF, delays in ns, area in um^2, leakage in uW,
internal switching energy in pJ per output toggle.

Operating corners scale every delay by a derate factor.  Like the ST
library of the paper, the shipped libraries define *best* and *worst*
conditions only (no typical corner, footnote in chapter 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from ..netlist.core import PortDirection
from .functions import compile_function, expr_inputs, parse_function


class CellKind(Enum):
    COMBINATIONAL = "combinational"
    FLIP_FLOP = "flip_flop"
    LATCH = "latch"


@dataclass
class LibraryPin:
    """One pin of a library cell."""

    name: str
    direction: PortDirection
    capacitance: float = 0.0
    function: Optional[str] = None
    is_clock: bool = False
    max_capacitance: Optional[float] = None


@dataclass
class TimingArc:
    """A pin-to-pin delay or constraint arc.

    ``timing_type`` follows liberty: ``combinational``,
    ``rising_edge`` (clk->q), ``setup_rising``, ``hold_rising``, or the
    falling variants for latches closed by a falling enable.
    """

    related_pin: str
    pin: str
    timing_type: str = "combinational"
    intrinsic_rise: float = 0.0
    intrinsic_fall: float = 0.0
    rise_resistance: float = 0.0
    fall_resistance: float = 0.0

    def delay(self, load: float, rise: bool = True) -> float:
        if rise:
            return self.intrinsic_rise + self.rise_resistance * load
        return self.intrinsic_fall + self.fall_resistance * load

    def worst_delay(self, load: float) -> float:
        return max(self.delay(load, True), self.delay(load, False))


@dataclass
class SequentialInfo:
    """The liberty ``ff``/``latch`` group of a sequential cell."""

    kind: CellKind
    state_pin: str  # internal state name, usually IQ
    next_state: Optional[str] = None  # ff: next_state; latch: data_in
    clocked_on: Optional[str] = None  # ff: clocked_on; latch: enable
    clear: Optional[str] = None  # async clear expression, e.g. "!CDN"
    preset: Optional[str] = None  # async preset expression


@dataclass
class LibraryCell:
    """One standard cell."""

    name: str
    area: float
    pins: Dict[str, LibraryPin] = field(default_factory=dict)
    arcs: List[TimingArc] = field(default_factory=list)
    sequential: Optional[SequentialInfo] = None
    leakage: float = 0.0  # uW
    switch_energy: float = 0.0  # pJ per output toggle (internal)
    dont_touch: bool = False

    @property
    def kind(self) -> CellKind:
        if self.sequential is not None:
            return self.sequential.kind
        return CellKind.COMBINATIONAL

    def input_pins(self) -> List[str]:
        return [
            p.name
            for p in self.pins.values()
            if p.direction == PortDirection.INPUT
        ]

    def output_pins(self) -> List[str]:
        return [
            p.name
            for p in self.pins.values()
            if p.direction == PortDirection.OUTPUT
        ]

    def clock_pins(self) -> List[str]:
        return [p.name for p in self.pins.values() if p.is_clock]

    def arcs_to(self, pin: str) -> List[TimingArc]:
        return [a for a in self.arcs if a.pin == pin]

    def delay_arcs(self) -> List[TimingArc]:
        return [
            a
            for a in self.arcs
            if a.timing_type in ("combinational", "rising_edge", "falling_edge")
        ]

    def constraint_arcs(self) -> List[TimingArc]:
        return [
            a
            for a in self.arcs
            if a.timing_type.startswith(("setup", "hold"))
        ]

    def compiled_function(self, pin: str):
        """Compile and cache the output function of ``pin``."""
        cache = self.__dict__.setdefault("_fn_cache", {})
        if pin not in cache:
            text = self.pins[pin].function
            if text is None:
                raise ValueError(f"pin {self.name}.{pin} has no function")
            cache[pin] = compile_function(text)
        return cache[pin]


@dataclass
class OperatingCorner:
    """A PVT corner: a global delay derate plus a voltage for power."""

    name: str
    derate: float
    voltage: float
    temperature: float = 25.0


class Library:
    """A technology library: cells plus operating corners."""

    def __init__(
        self,
        name: str,
        corners: Optional[Dict[str, OperatingCorner]] = None,
        default_wire_cap: float = 0.002,
    ):
        self.name = name
        self.cells: Dict[str, LibraryCell] = {}
        self.corners: Dict[str, OperatingCorner] = corners or {
            "best": OperatingCorner("best", 0.60, 1.10, 0.0),
            "worst": OperatingCorner("worst", 1.45, 0.90, 125.0),
        }
        #: estimated wire capacitance per fanout pin (pF), pre-layout
        self.default_wire_cap = default_wire_cap

    def add_cell(self, cell: LibraryCell) -> LibraryCell:
        self.cells[cell.name] = cell
        return cell

    def cell(self, name: str) -> LibraryCell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"cell {name!r} not in library {self.name!r}")

    def corner(self, name: str) -> OperatingCorner:
        try:
            return self.corners[name]
        except KeyError:
            raise KeyError(
                f"corner {name!r} not in library {self.name!r} "
                f"(available: {sorted(self.corners)})"
            )

    def cells_of_kind(self, kind: CellKind) -> List[LibraryCell]:
        return [c for c in self.cells.values() if c.kind == kind]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"


def is_scan_cell(cell: LibraryCell) -> bool:
    """Heuristic scan detection: a FF whose next_state muxes SI with SE."""
    if cell.sequential is None or cell.sequential.kind != CellKind.FLIP_FLOP:
        return False
    next_state = cell.sequential.next_state
    if not next_state:
        return False
    inputs = expr_inputs(parse_function(next_state))
    return "SI" in inputs and "SE" in inputs
