"""Map boolean expressions onto library gates inside a netlist module.

Used in three places: the FF-to-latch replacement rules (the ``next_state``
function of a complex flip-flop becomes front logic before the master
latch), C-Muller element synthesis (AND/OR trees plus a MAJ3 feedback),
and the simple synthesis stage of the flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netlist.core import Module
from .functions import Const, Expr, Not, Op, Var, parse_function
from .model import Library


class TechmapError(Exception):
    """Raised when an expression cannot be mapped with available cells."""


class GateChooser:
    """Picks concrete library cells for abstract gate roles.

    The defaults match the CORE9-class naming; pass overrides for other
    libraries.  Each entry is ``role -> (cell, input pins, output pin)``.
    """

    DEFAULTS: Dict[str, Tuple[str, Tuple[str, ...], str]] = {
        "inv": ("INVX1", ("A",), "Z"),
        "buf": ("BUFX1", ("A",), "Z"),
        "and2": ("AND2X1", ("A", "B"), "Z"),
        "and3": ("AND3X1", ("A", "B", "C"), "Z"),
        "andn2": ("ANDN2X1", ("A", "B"), "Z"),
        "or2": ("OR2X1", ("A", "B"), "Z"),
        "or3": ("OR3X1", ("A", "B", "C"), "Z"),
        "orn2": ("ORN2X1", ("A", "B"), "Z"),
        "xor2": ("XOR2X1", ("A", "B"), "Z"),
        "mux2": ("MUX2X1", ("A", "B", "S"), "Z"),
        "maj3": ("MAJ3X1", ("A", "B", "C"), "Z"),
        "nand2": ("NAND2X1", ("A", "B"), "Z"),
        "nor2": ("NOR2X1", ("A", "B"), "Z"),
    }

    def __init__(
        self,
        library: Library,
        overrides: Optional[Dict[str, Tuple[str, Tuple[str, ...], str]]] = None,
    ):
        self.library = library
        self.table = dict(self.DEFAULTS)
        if overrides:
            self.table.update(overrides)

    def gate(self, role: str) -> Tuple[str, Tuple[str, ...], str]:
        entry = self.table.get(role)
        if entry is None or entry[0] not in self.library:
            raise TechmapError(
                f"library {self.library.name!r} has no cell for role {role!r}"
            )
        return entry


class ExpressionMapper:
    """Instantiates gates computing an expression over named input nets."""

    def __init__(self, module: Module, chooser: GateChooser, prefix: str = "tm"):
        self.module = module
        self.chooser = chooser
        self.prefix = prefix
        self.added: List[str] = []  # instance names created

    # ------------------------------------------------------------------
    def map_text(self, text: str, input_nets: Dict[str, str]) -> str:
        """Map a liberty function string; returns the output net name."""
        return self.map_expr(parse_function(text), input_nets)

    def map_expr(self, expr: Expr, input_nets: Dict[str, str]) -> str:
        if isinstance(expr, Const):
            return self.module.constant_net(expr.value).name
        if isinstance(expr, Var):
            try:
                return input_nets[expr.name]
            except KeyError:
                raise TechmapError(f"no net bound for input {expr.name!r}")
        if isinstance(expr, Not):
            inner = self.map_expr(expr.arg, input_nets)
            return self._emit("inv", [inner])
        mux = _match_mux(expr)
        if mux is not None:
            a, b, s = (self.map_expr(part, input_nets) for part in mux)
            return self._emit("mux2", [a, b, s])
        if expr.kind == "xor":
            nets = [self.map_expr(arg, input_nets) for arg in expr.args]
            return self._tree("xor2", nets, arity=2)
        if expr.kind in ("and", "or"):
            simple: List[str] = []
            negated_last: Optional[str] = None
            for arg in expr.args:
                if isinstance(arg, Not) and isinstance(arg.arg, Var) and (
                    negated_last is None
                ):
                    role = "andn2" if expr.kind == "and" else "orn2"
                    if role in self.chooser.table and (
                        self.chooser.table[role][0] in self.chooser.library
                    ):
                        negated_last = self.map_expr(arg.arg, input_nets)
                        continue
                simple.append(self.map_expr(arg, input_nets))
            role2, role3 = (
                ("and2", "and3") if expr.kind == "and" else ("or2", "or3")
            )
            if negated_last is not None:
                if not simple:
                    return self._emit("inv", [negated_last])
                positive = self._tree(role2, simple, arity=2, role3=role3)
                neg_role = "andn2" if expr.kind == "and" else "orn2"
                return self._emit(neg_role, [positive, negated_last])
            return self._tree(role2, simple, arity=2, role3=role3)
        raise TechmapError(f"cannot map expression node {expr!r}")

    # ------------------------------------------------------------------
    def _tree(
        self, role: str, nets: List[str], arity: int, role3: Optional[str] = None
    ) -> str:
        if not nets:
            raise TechmapError("empty operand list")
        nets = list(nets)
        while len(nets) > 1:
            if role3 is not None and len(nets) == 3 and (
                self.chooser.table.get(role3, ("",))[0] in self.chooser.library
            ):
                return self._emit(role3, nets)
            a = nets.pop(0)
            b = nets.pop(0)
            nets.append(self._emit(role, [a, b]))
        return nets[0]

    def _emit(self, role: str, inputs: List[str]) -> str:
        cell, pin_names, out_pin = self.chooser.gate(role)
        inst_name = self.module.new_name(f"{self.prefix}_{role}")
        out_net = self.module.new_name(f"{self.prefix}_n")
        self.module.ensure_net(out_net)
        pins = dict(zip(pin_names, inputs))
        pins[out_pin] = out_net
        self.module.add_instance(inst_name, cell, pins)
        self.added.append(inst_name)
        return out_net


def _match_mux(expr: Expr) -> Optional[Tuple[Expr, Expr, Expr]]:
    """Detect ``(a * !s) + (b * s)`` and return (a, b, s)."""
    if not isinstance(expr, Op) or expr.kind != "or" or len(expr.args) != 2:
        return None
    left, right = expr.args
    if not (isinstance(left, Op) and left.kind == "and" and len(left.args) == 2):
        return None
    if not (isinstance(right, Op) and right.kind == "and" and len(right.args) == 2):
        return None

    def split(term: Op) -> Optional[Tuple[Expr, Expr, bool]]:
        a, b = term.args
        if isinstance(b, Not):
            return a, b.arg, True
        if isinstance(a, Not):
            return b, a.arg, True
        return None

    # try to find a shared select: one term has !s, the other has s
    for sel_term, other in ((left, right), (right, left)):
        neg = split(sel_term)
        if neg is None:
            continue
        data_a, sel, _ = neg
        if not isinstance(other, Op) or other.kind != "and":
            continue
        a, b = other.args
        if a == sel:
            return data_a, b, sel
        if b == sel:
            return data_a, a, sel
    return None
