"""Liberty (.lib) subset parser.

A generic group/attribute tokenizer builds a syntax tree which is then
lowered to the :class:`~repro.liberty.model.Library` object model.  The
subset covers everything the gatefile generation needs: cells, pins,
directions, functions, capacitances, ff/latch groups, timing arcs and
operating conditions.  Unrecognised attributes and groups are ignored,
so real-world .lib fragments parse without errors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..netlist.core import PortDirection
from .model import (
    Library,
    LibraryCell,
    LibraryPin,
    OperatingCorner,
    SequentialInfo,
    TimingArc,
)
from .model import CellKind


class LibertyParseError(Exception):
    """Raised on malformed .lib input."""


@dataclass
class Group:
    """A liberty group: ``name (args) { attributes; subgroups }``."""

    name: str
    args: List[str] = field(default_factory=list)
    attributes: Dict[str, str] = field(default_factory=dict)
    subgroups: List["Group"] = field(default_factory=list)

    def find_all(self, name: str) -> List["Group"]:
        return [g for g in self.subgroups if g.name == name]

    def find(self, name: str) -> Optional["Group"]:
        groups = self.find_all(name)
        if groups:
            return groups[0]
        return None


_LIB_TOKEN_RE = re.compile(
    r"""
    "(?P<string>[^"]*)"
  | (?P<word>[A-Za-z0-9_.+\-\[\]!*^']+)
  | (?P<sym>[(){}:;,])
    """,
    re.VERBOSE,
)

_LIB_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    text = _LIB_COMMENT_RE.sub(" ", text)
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace() or text[pos] == "\\":
            pos += 1
            continue
        match = _LIB_TOKEN_RE.match(text, pos)
        if match is None:
            raise LibertyParseError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        if match.lastgroup == "string":
            tokens.append(("string", match.group("string")))
        elif match.lastgroup == "word":
            tokens.append(("word", match.group("word")))
        else:
            tokens.append(("sym", match.group("sym")))
        pos = match.end()
    return tokens


class _GroupParser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._pos >= len(self._tokens):
            return None
        return self._tokens[self._pos]

    def _next(self) -> Tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise LibertyParseError("unexpected end of file")
        self._pos += 1
        return tok

    def _expect_sym(self, sym: str) -> None:
        kind, value = self._next()
        if kind != "sym" or value != sym:
            raise LibertyParseError(f"expected {sym!r}, got {value!r}")

    def parse_group(self) -> Group:
        kind, name = self._next()
        if kind != "word":
            raise LibertyParseError(f"expected group name, got {name!r}")
        self._expect_sym("(")
        args: List[str] = []
        while True:
            tok_kind, value = self._next()
            if tok_kind == "sym" and value == ")":
                break
            if tok_kind == "sym" and value == ",":
                continue
            args.append(value)
        self._expect_sym("{")
        group = Group(name, args)
        while True:
            tok = self._peek()
            if tok is None:
                raise LibertyParseError(f"unterminated group {name!r}")
            if tok == ("sym", "}"):
                self._next()
                break
            self._parse_statement(group)
        return group

    def _parse_statement(self, group: Group) -> None:
        kind, name = self._next()
        if kind != "word":
            raise LibertyParseError(f"expected statement, got {name!r}")
        tok = self._peek()
        if tok == ("sym", ":"):
            self._next()
            value_parts: List[str] = []
            while True:
                tok_kind, value = self._next()
                if tok_kind == "sym" and value == ";":
                    break
                if tok_kind == "sym" and value == "}":
                    # tolerate a missing semicolon before }
                    self._pos -= 1
                    break
                value_parts.append(value)
            group.attributes[name] = " ".join(value_parts)
        elif tok == ("sym", "("):
            self._pos -= 1
            group.subgroups.append(self.parse_group())
        else:
            raise LibertyParseError(
                f"expected ':' or '(' after {name!r}, got {tok!r}"
            )


def parse_groups(text: str) -> Group:
    """Parse .lib text into the raw group tree (root = library group)."""
    parser = _GroupParser(_tokenize(text))
    return parser.parse_group()


# ----------------------------------------------------------------------
# lowering to the object model
# ----------------------------------------------------------------------

def _float(group: Group, name: str, default: float = 0.0) -> float:
    value = group.attributes.get(name)
    if value is None:
        return default
    return float(value)


def _lower_arc(timing: Group, target_pin: str) -> Optional[TimingArc]:
    related = timing.attributes.get("related_pin")
    if related is None:
        return None
    return TimingArc(
        related_pin=related,
        pin=target_pin,
        timing_type=timing.attributes.get("timing_type", "combinational"),
        intrinsic_rise=_float(timing, "intrinsic_rise"),
        intrinsic_fall=_float(timing, "intrinsic_fall"),
        rise_resistance=_float(timing, "rise_resistance"),
        fall_resistance=_float(timing, "fall_resistance"),
    )


def _lower_cell(group: Group) -> LibraryCell:
    cell = LibraryCell(
        name=group.args[0],
        area=_float(group, "area"),
        leakage=_float(group, "cell_leakage_power"),
        switch_energy=_float(group, "internal_energy"),
        dont_touch=group.attributes.get("dont_touch", "false") == "true",
    )
    for seq_name, seq_kind in (("ff", CellKind.FLIP_FLOP), ("latch", CellKind.LATCH)):
        seq_group = group.find(seq_name)
        if seq_group is None:
            continue
        data_attr = "next_state" if seq_name == "ff" else "data_in"
        clock_attr = "clocked_on" if seq_name == "ff" else "enable"
        cell.sequential = SequentialInfo(
            kind=seq_kind,
            state_pin=seq_group.args[0] if seq_group.args else "IQ",
            next_state=seq_group.attributes.get(data_attr),
            clocked_on=seq_group.attributes.get(clock_attr),
            clear=seq_group.attributes.get("clear"),
            preset=seq_group.attributes.get("preset"),
        )
    for pin_group in group.find_all("pin"):
        pin_name = pin_group.args[0]
        direction_text = pin_group.attributes.get("direction", "input")
        pin = cell.pins.get(pin_name)
        if pin is None:
            pin = LibraryPin(pin_name, PortDirection(direction_text))
            cell.pins[pin_name] = pin
        else:
            pin.direction = PortDirection(direction_text)
        pin.capacitance = _float(pin_group, "capacitance", pin.capacitance)
        if "function" in pin_group.attributes:
            pin.function = pin_group.attributes["function"]
        if "max_capacitance" in pin_group.attributes:
            pin.max_capacitance = _float(pin_group, "max_capacitance")
        if pin_group.attributes.get("clock") == "true":
            pin.is_clock = True
        for timing in pin_group.find_all("timing"):
            arc = _lower_arc(timing, pin_name)
            if arc is not None:
                cell.arcs.append(arc)
    # flag the enable/clock pin of sequential cells even when the .lib
    # omits the clock attribute
    if cell.sequential is not None and cell.sequential.clocked_on:
        clock_expr = cell.sequential.clocked_on.strip("!() ")
        if clock_expr in cell.pins:
            cell.pins[clock_expr].is_clock = True
    return cell


def lower_library(root: Group) -> Library:
    if root.name != "library":
        raise LibertyParseError(f"expected library group, got {root.name!r}")
    corners: Dict[str, OperatingCorner] = {}
    for cond in root.find_all("operating_conditions"):
        name = cond.args[0]
        corners[name] = OperatingCorner(
            name=name,
            derate=_float(cond, "derate", 1.0),
            voltage=_float(cond, "voltage", 1.0),
            temperature=_float(cond, "temperature", 25.0),
        )
    library = Library(
        root.args[0] if root.args else "library",
        corners=corners or None,
        default_wire_cap=_float(root, "default_wire_cap", 0.002),
    )
    for cell_group in root.find_all("cell"):
        library.add_cell(_lower_cell(cell_group))
    return library


def parse_liberty(text: str) -> Library:
    """Parse .lib text straight to a :class:`Library`."""
    return lower_library(parse_groups(text))


def read_liberty(path: str) -> Library:
    with open(path) as handle:
        return parse_liberty(handle.read())
