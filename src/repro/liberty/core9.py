"""Synthetic CORE9-class 90nm standard-cell libraries.

The paper targets the STMicroelectronics CORE9 90nm library (High-Speed
for the DLX, Low-Leakage for the ARM).  That library is proprietary, so
this module generates self-consistent stand-ins with 90nm-scale numbers
(FO4 around 50 ps at nominal, ~1.4 um^2 area grid, best/worst operating
conditions only -- the paper notes the library has no typical corner).

The desynchronization tool consumes libraries exclusively through the
gatefile, so any library with the same *shape* (cell kinds, pin roles,
replacement-rule structure) exercises the identical flow code paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netlist.core import PortDirection
from .model import (
    Library,
    LibraryCell,
    LibraryPin,
    OperatingCorner,
    SequentialInfo,
    TimingArc,
)
from .model import CellKind

#: one placement-grid area unit in um^2 (90nm-class)
AREA_UNIT = 1.4

#: drive-strength scaling: (input-cap factor, resistance factor, max load pF)
_DRIVES: Dict[str, Tuple[float, float, float]] = {
    "X1": (1.0, 1.00, 0.060),
    "X2": (1.8, 0.52, 0.120),
    "X4": (3.2, 0.27, 0.240),
}

_BASE_CAP = 0.003  # pF, X1 input pin
_BASE_RES = 3.0  # ns/pF, X1 output


def _comb_cell(
    name: str,
    area_units: float,
    outputs: Dict[str, str],
    inputs: List[str],
    intrinsic: float,
    drive: str = "X1",
    leakage_per_unit: float = 0.04,
    extra_area_per_drive: float = 0.8,
) -> LibraryCell:
    cap_factor, res_factor, max_cap = _DRIVES[drive]
    drive_index = list(_DRIVES).index(drive)
    area = (area_units + extra_area_per_drive * drive_index) * AREA_UNIT
    cell = LibraryCell(
        name=f"{name}{drive}",
        area=area,
        leakage=leakage_per_unit * area_units * (1.0 + 0.5 * drive_index),
        switch_energy=0.0015 * area_units,
    )
    for pin_name in inputs:
        cell.pins[pin_name] = LibraryPin(
            pin_name, PortDirection.INPUT, capacitance=_BASE_CAP * cap_factor
        )
    for out_name, function in outputs.items():
        cell.pins[out_name] = LibraryPin(
            out_name,
            PortDirection.OUTPUT,
            function=function,
            max_capacitance=max_cap,
        )
        for pin_name in inputs:
            cell.arcs.append(
                TimingArc(
                    related_pin=pin_name,
                    pin=out_name,
                    timing_type="combinational",
                    intrinsic_rise=intrinsic,
                    intrinsic_fall=intrinsic * 0.92,
                    rise_resistance=_BASE_RES * res_factor,
                    fall_resistance=_BASE_RES * res_factor * 0.9,
                )
            )
    return cell


_COMB_DEFS: List[Tuple[str, float, Dict[str, str], List[str], float, Tuple[str, ...]]] = [
    ("INV", 2.0, {"Z": "!A"}, ["A"], 0.016, ("X1", "X2", "X4")),
    ("BUF", 2.6, {"Z": "A"}, ["A"], 0.028, ("X1", "X2", "X4")),
    ("CKBUF", 3.0, {"Z": "A"}, ["A"], 0.026, ("X2", "X4")),
    ("NAND2", 3.0, {"Z": "!(A * B)"}, ["A", "B"], 0.022, ("X1", "X2", "X4")),
    ("NAND3", 4.0, {"Z": "!(A * B * C)"}, ["A", "B", "C"], 0.028, ("X1", "X2")),
    ("NAND4", 5.0, {"Z": "!(A * B * C * D)"}, ["A", "B", "C", "D"], 0.034, ("X1",)),
    ("NOR2", 3.0, {"Z": "!(A + B)"}, ["A", "B"], 0.026, ("X1", "X2", "X4")),
    ("NOR3", 4.0, {"Z": "!(A + B + C)"}, ["A", "B", "C"], 0.034, ("X1",)),
    ("AND2", 3.5, {"Z": "A * B"}, ["A", "B"], 0.032, ("X1", "X2", "X4")),
    ("AND3", 4.5, {"Z": "A * B * C"}, ["A", "B", "C"], 0.038, ("X1", "X2")),
    ("ANDN2", 3.5, {"Z": "A * !B"}, ["A", "B"], 0.034, ("X1", "X2")),
    ("OR2", 3.5, {"Z": "A + B"}, ["A", "B"], 0.034, ("X1", "X2", "X4")),
    ("OR3", 4.5, {"Z": "A + B + C"}, ["A", "B", "C"], 0.040, ("X1", "X2")),
    ("ORN2", 3.5, {"Z": "A + !B"}, ["A", "B"], 0.036, ("X1", "X2")),
    ("XOR2", 5.5, {"Z": "A ^ B"}, ["A", "B"], 0.044, ("X1", "X2")),
    ("XNOR2", 5.5, {"Z": "!(A ^ B)"}, ["A", "B"], 0.044, ("X1", "X2")),
    ("MUX2", 5.0, {"Z": "(A * !S) + (B * S)"}, ["A", "B", "S"], 0.042, ("X1", "X2")),
    ("AOI21", 4.0, {"Z": "!((A * B) + C)"}, ["A", "B", "C"], 0.030, ("X1", "X2")),
    ("OAI21", 4.0, {"Z": "!((A + B) * C)"}, ["A", "B", "C"], 0.030, ("X1", "X2")),
    ("AOI22", 5.0, {"Z": "!((A * B) + (C * D))"}, ["A", "B", "C", "D"], 0.036, ("X1",)),
    ("OAI22", 5.0, {"Z": "!((A + B) * (C + D))"}, ["A", "B", "C", "D"], 0.036, ("X1",)),
    (
        "MAJ3",
        6.0,
        {"Z": "(A * B) + (A * C) + (B * C)"},
        ["A", "B", "C"],
        0.048,
        ("X1", "X2"),
    ),
    (
        "HA",
        6.5,
        {"S": "A ^ B", "CO": "A * B"},
        ["A", "B"],
        0.046,
        ("X1",),
    ),
    (
        "FA",
        9.5,
        {
            "S": "A ^ B ^ CI",
            "CO": "(A * B) + (A * CI) + (B * CI)",
        },
        ["A", "B", "CI"],
        0.058,
        ("X1",),
    ),
]


def _ff_cell(
    name: str,
    area_units: float,
    data_inputs: List[str],
    next_state: str,
    clear: Optional[str] = None,
    preset: Optional[str] = None,
    leakage_per_unit: float = 0.04,
) -> LibraryCell:
    cell = LibraryCell(
        name=name,
        area=area_units * AREA_UNIT,
        leakage=leakage_per_unit * area_units,
        switch_energy=0.0024 * area_units,
    )
    cell.sequential = SequentialInfo(
        kind=CellKind.FLIP_FLOP,
        state_pin="IQ",
        next_state=next_state,
        clocked_on="CK",
        clear=clear,
        preset=preset,
    )
    for pin_name in data_inputs:
        cell.pins[pin_name] = LibraryPin(
            pin_name, PortDirection.INPUT, capacitance=_BASE_CAP
        )
        cell.arcs.append(
            TimingArc(pin_name, pin_name, "setup_rising", 0.070, 0.070)
        )
        cell.arcs.append(
            TimingArc(pin_name, pin_name, "hold_rising", 0.015, 0.015)
        )
    cell.pins["CK"] = LibraryPin(
        "CK", PortDirection.INPUT, capacitance=_BASE_CAP * 1.2, is_clock=True
    )
    for out_name, function in (("Q", "IQ"), ("QN", "!IQ")):
        cell.pins[out_name] = LibraryPin(
            out_name,
            PortDirection.OUTPUT,
            function=function,
            max_capacitance=0.08,
        )
        cell.arcs.append(
            TimingArc(
                "CK",
                out_name,
                "rising_edge",
                intrinsic_rise=0.095,
                intrinsic_fall=0.090,
                rise_resistance=_BASE_RES * 0.8,
                fall_resistance=_BASE_RES * 0.75,
            )
        )
    return cell


def _latch_cell(
    name: str,
    area_units: float,
    drive: str = "X1",
    leakage_per_unit: float = 0.04,
) -> LibraryCell:
    """Simple transparent-high latch -- the only latch type, per the paper."""
    cap_factor, res_factor, max_cap = _DRIVES[drive]
    cell = LibraryCell(
        name=f"{name}{drive}",
        area=area_units * AREA_UNIT,
        leakage=leakage_per_unit * area_units,
        switch_energy=0.0018 * area_units,
    )
    cell.sequential = SequentialInfo(
        kind=CellKind.LATCH,
        state_pin="IQ",
        next_state="D",
        clocked_on="G",
    )
    cell.pins["D"] = LibraryPin(
        "D", PortDirection.INPUT, capacitance=_BASE_CAP * cap_factor
    )
    cell.pins["G"] = LibraryPin(
        "G",
        PortDirection.INPUT,
        capacitance=_BASE_CAP * 1.1 * cap_factor,
        is_clock=True,
    )
    cell.pins["Q"] = LibraryPin(
        "Q", PortDirection.OUTPUT, function="IQ", max_capacitance=max_cap
    )
    cell.arcs.append(
        TimingArc(
            "D",
            "Q",
            "combinational",
            intrinsic_rise=0.055,
            intrinsic_fall=0.052,
            rise_resistance=_BASE_RES * res_factor * 0.85,
            fall_resistance=_BASE_RES * res_factor * 0.80,
        )
    )
    cell.arcs.append(
        TimingArc(
            "G",
            "Q",
            "rising_edge",
            intrinsic_rise=0.070,
            intrinsic_fall=0.066,
            rise_resistance=_BASE_RES * res_factor * 0.85,
            fall_resistance=_BASE_RES * res_factor * 0.80,
        )
    )
    cell.arcs.append(TimingArc("D", "D", "setup_falling", 0.055, 0.055))
    cell.arcs.append(TimingArc("D", "D", "hold_falling", 0.012, 0.012))
    return cell


def _clock_gate_cell(leakage_per_unit: float) -> LibraryCell:
    """Integrated clock gate: low-transparent latch on EN, GCK = IQ & CK."""
    cell = LibraryCell(
        name="CKGATEX1",
        area=8.0 * AREA_UNIT,
        leakage=leakage_per_unit * 8.0,
        switch_energy=0.016,
    )
    cell.sequential = SequentialInfo(
        kind=CellKind.LATCH,
        state_pin="IQ",
        next_state="EN",
        clocked_on="!CK",
    )
    cell.pins["EN"] = LibraryPin("EN", PortDirection.INPUT, capacitance=_BASE_CAP)
    cell.pins["CK"] = LibraryPin(
        "CK", PortDirection.INPUT, capacitance=_BASE_CAP * 1.4, is_clock=True
    )
    cell.pins["GCK"] = LibraryPin(
        "GCK", PortDirection.OUTPUT, function="IQ * CK", max_capacitance=0.12
    )
    cell.arcs.append(
        TimingArc(
            "CK",
            "GCK",
            "combinational",
            intrinsic_rise=0.040,
            intrinsic_fall=0.038,
            rise_resistance=_BASE_RES * 0.5,
            fall_resistance=_BASE_RES * 0.48,
        )
    )
    return cell


def _build_library(
    name: str,
    delay_scale: float,
    leakage_per_unit: float,
    corners: Dict[str, OperatingCorner],
) -> Library:
    library = Library(name, corners=dict(corners))
    for base, units, outs, ins, intrinsic, drives in _COMB_DEFS:
        for drive in drives:
            cell = _comb_cell(
                base,
                units,
                outs,
                ins,
                intrinsic * delay_scale,
                drive=drive,
                leakage_per_unit=leakage_per_unit,
            )
            for arc in cell.arcs:
                arc.rise_resistance *= delay_scale
                arc.fall_resistance *= delay_scale
            library.add_cell(cell)

    ff_defs = [
        ("DFFX1", 13.0, ["D"], "D", None, None),
        ("DFFRX1", 14.2, ["D", "RN"], "D * RN", None, None),
        ("DFFSX1", 14.2, ["D", "SN"], "D + !SN", None, None),
        ("DFFCX1", 14.6, ["D", "CDN"], "D", "!CDN", None),
        ("DFFPX1", 14.6, ["D", "PDN"], "D", None, "!PDN"),
        ("SDFFX1", 16.4, ["D", "SI", "SE"], "(D * !SE) + (SI * SE)", None, None),
        (
            "SDFFRX1",
            17.6,
            ["D", "RN", "SI", "SE"],
            "((D * RN) * !SE) + (SI * SE)",
            None,
            None,
        ),
        (
            "SDFFCX1",
            18.0,
            ["D", "CDN", "SI", "SE"],
            "(D * !SE) + (SI * SE)",
            "!CDN",
            None,
        ),
    ]
    for ff_name, units, ins, next_state, clear, preset in ff_defs:
        cell = _ff_cell(
            ff_name, units, ins, next_state, clear, preset, leakage_per_unit
        )
        for arc in cell.arcs:
            arc.intrinsic_rise *= delay_scale
            arc.intrinsic_fall *= delay_scale
            arc.rise_resistance *= delay_scale
            arc.fall_resistance *= delay_scale
        library.add_cell(cell)

    for drive in ("X1", "X2"):
        latch = _latch_cell("LDH", 7.65, drive, leakage_per_unit)
        for arc in latch.arcs:
            arc.intrinsic_rise *= delay_scale
            arc.intrinsic_fall *= delay_scale
            arc.rise_resistance *= delay_scale
            arc.fall_resistance *= delay_scale
        library.add_cell(latch)

    library.add_cell(_clock_gate_cell(leakage_per_unit))
    return library


def core9_hs() -> Library:
    """High-Speed library variant (used for the DLX in the paper)."""
    corners = {
        "best": OperatingCorner("best", 0.60, 1.10, 0.0),
        "worst": OperatingCorner("worst", 1.45, 0.90, 125.0),
    }
    return _build_library("core9gphs", 1.0, 0.045, corners)


def core9_ll() -> Library:
    """Low-Leakage library variant (used for the ARM in the paper)."""
    corners = {
        "best": OperatingCorner("best", 0.62, 1.10, 0.0),
        "worst": OperatingCorner("worst", 1.50, 0.90, 125.0),
    }
    return _build_library("core9gpll", 1.65, 0.0035, corners)
