"""Liberty boolean function expressions.

Liberty cell functions use a small expression language::

    function : "(A * B) + !C";     and/or/not as * + !
    function : "(A B)";            juxtaposition is AND
    function : "A ^ B";            xor

This module parses such expressions to an AST and compiles them to fast
evaluators over pin-value dicts.  Values follow 3-valued logic: 0, 1 and
``None`` for unknown (X); unknowns propagate unless the known inputs
already determine the output (e.g. ``0 AND X == 0``).

Three evaluator tiers exist, fastest first:

- **LUT** (``<= LUT_MAX_INPUTS`` inputs): the whole 3-valued truth
  table is precomputed into one flat tuple indexed by the base-3
  encoding of the inputs (0, 1, X -> 0, 1, 2); evaluation is a handful
  of dict lookups plus one table index, generated via ``compile()``.
- **codegen**: a ``compile()``-generated closure that loads each pin
  into a positional local once and combines them with short-circuit
  3-valued logic (``0 AND anything == 0`` without touching the rest).
- **AST walk** (:func:`evaluate` / :func:`reference_function`): the
  original recursive interpreter, kept as the reference oracle the
  compiled tiers are property-tested against.

:func:`compile_function` picks LUT or codegen and memoizes by source
text, so the thousands of instances sharing a cell function share one
compiled evaluator.  :func:`compile_function_indexed` builds the same
two tiers over an *encoded slot list* instead of a dict -- the
representation the simulator's incremental kernel keeps per cell --
replacing every dict lookup with a C-level list index.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from ..obs import metrics

Value = Optional[int]

#: functions with at most this many inputs are compiled to a truth table
LUT_MAX_INPUTS = 8


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Not:
    arg: "Expr"


@dataclass(frozen=True)
class Op:
    kind: str  # "and" | "or" | "xor"
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class Const:
    value: int


Expr = Union[Var, Not, Op, Const]


class FunctionParseError(Exception):
    """Raised for malformed liberty function expressions."""


_FN_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\[\]]*|[()!*+^']|0|1")


def _tokenize(text: str) -> List[str]:
    tokens = _FN_TOKEN_RE.findall(text)
    joined = "".join(tokens).replace(" ", "")
    stripped = re.sub(r"\s+", "", text)
    if joined != stripped:
        raise FunctionParseError(f"cannot tokenize function {text!r}")
    return tokens


class _Parser:
    """Recursive descent with precedence: ! ' > * (implicit) > ^ > +."""

    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos >= len(self._tokens):
            return None
        return self._tokens[self._pos]

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise FunctionParseError("unexpected end of expression")
        self._pos += 1
        return tok

    def parse(self) -> Expr:
        expr = self._or()
        if self.peek() is not None:
            raise FunctionParseError(f"trailing tokens near {self.peek()!r}")
        return expr

    def _or(self) -> Expr:
        args = [self._xor()]
        while self.peek() == "+":
            self.next()
            args.append(self._xor())
        if len(args) == 1:
            return args[0]
        return Op("or", tuple(args))

    def _xor(self) -> Expr:
        args = [self._and()]
        while self.peek() == "^":
            self.next()
            args.append(self._and())
        if len(args) == 1:
            return args[0]
        return Op("xor", tuple(args))

    def _and(self) -> Expr:
        args = [self._unary()]
        while True:
            tok = self.peek()
            if tok == "*":
                self.next()
                args.append(self._unary())
            elif tok is not None and (tok == "(" or tok == "!" or _is_name(tok)):
                args.append(self._unary())  # implicit AND by juxtaposition
            else:
                break
        if len(args) == 1:
            return args[0]
        return Op("and", tuple(args))

    def _unary(self) -> Expr:
        tok = self.next()
        if tok == "!":
            return _negate(self._unary())
        if tok == "(":
            inner = self._or()
            if self.next() != ")":
                raise FunctionParseError("missing closing parenthesis")
            return self._postfix(inner)
        if tok in ("0", "1"):
            return self._postfix(Const(int(tok)))
        if _is_name(tok):
            return self._postfix(Var(tok))
        raise FunctionParseError(f"unexpected token {tok!r}")

    def _postfix(self, expr: Expr) -> Expr:
        while self.peek() == "'":
            self.next()
            expr = _negate(expr)
        return expr


def _is_name(token: str) -> bool:
    return bool(re.match(r"^[A-Za-z_]", token))


def _negate(expr: Expr) -> Expr:
    if isinstance(expr, Not):
        return expr.arg
    return Not(expr)


def parse_function(text: str) -> Expr:
    """Parse a liberty function string to an expression AST."""
    return _Parser(_tokenize(text)).parse()


def expr_inputs(expr: Expr) -> FrozenSet[str]:
    """The set of pin names an expression reads."""
    if isinstance(expr, Var):
        return frozenset([expr.name])
    if isinstance(expr, Not):
        return expr_inputs(expr.arg)
    if isinstance(expr, Op):
        out: FrozenSet[str] = frozenset()
        for arg in expr.args:
            out |= expr_inputs(arg)
        return out
    return frozenset()


def evaluate(expr: Expr, values: Dict[str, Value]) -> Value:
    """Evaluate with 3-valued logic (None = unknown)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return values.get(expr.name)
    if isinstance(expr, Not):
        inner = evaluate(expr.arg, values)
        if inner is None:
            return None
        return 1 - inner
    if expr.kind == "and":
        result: Value = 1
        for arg in expr.args:
            val = evaluate(arg, values)
            if val == 0:
                return 0
            if val is None:
                result = None
        return result
    if expr.kind == "or":
        result = 0
        for arg in expr.args:
            val = evaluate(arg, values)
            if val == 1:
                return 1
            if val is None:
                result = None
        return result
    # xor
    acc = 0
    for arg in expr.args:
        val = evaluate(arg, values)
        if val is None:
            return None
        acc ^= val
    return acc


# ----------------------------------------------------------------------
# compiled evaluators
# ----------------------------------------------------------------------

#: base-3 digit of a 3-valued input (None/X encodes as 2)
_ENCODE = "(2 if {v} is None else {v})"


def _load_inputs(names: Tuple[str, ...]) -> List[str]:
    """Source lines binding each pin value to a positional local once."""
    lines = ["    _g = values.get"]
    for index, name in enumerate(names):
        lines.append(f"    v{index} = _g({name!r})")
    return lines


def _compile_source(
    source: str, name: str, namespace: Dict[str, object]
) -> Callable[[Dict[str, Value]], Value]:
    code = compile(source, f"<liberty:{name}>", "exec")
    exec(code, namespace)
    return namespace["_fn"]  # type: ignore[return-value]


def _compile_lut(expr: Expr) -> Callable[[Dict[str, Value]], Value]:
    """Truth-table evaluator: one flat tuple indexed base-3 by inputs.

    The table is filled by the AST oracle over every 3-valued input
    combination, so the LUT is correct by construction wherever
    :func:`evaluate` is.
    """
    names = tuple(sorted(expr_inputs(expr)))
    arity = len(names)
    table: List[Value] = []
    for combo in itertools.product((0, 1, None), repeat=arity):
        table.append(evaluate(expr, dict(zip(names, combo))))
    if arity == 0:
        constant = table[0]
        source = "def _fn(values):\n    return _c\n"
        return _compile_source(source, "const", {"_c": constant})
    terms = []
    for index in range(arity):
        digit = _ENCODE.format(v=f"v{index}")
        stride = 3 ** (arity - 1 - index)
        terms.append(digit if stride == 1 else f"{digit} * {stride}")
    lines = ["def _fn(values):"]
    lines.extend(_load_inputs(names))
    lines.append("    return _table[" + " + ".join(terms) + "]")
    return _compile_source(
        "\n".join(lines) + "\n", "lut", {"_table": tuple(table)}
    )


class _CodegenEmitter:
    """Emit statements computing an expression over the ``v<i>`` locals."""

    def __init__(self, names: Tuple[str, ...]):
        self._index = {name: i for i, name in enumerate(names)}
        self.lines: List[str] = []
        self._temp = 0

    def emit(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return str(expr.value)
        if isinstance(expr, Var):
            return f"v{self._index[expr.name]}"
        if isinstance(expr, Not):
            arg = self.emit(expr.arg)
            if arg in ("0", "1"):
                return str(1 - int(arg))
            return self._assign(f"None if {arg} is None else 1 - {arg}")
        # literal args fold away; only dynamic terms need unknown checks
        args = [self.emit(arg) for arg in expr.args]
        literals = [a for a in args if a in ("0", "1")]
        dynamic = [a for a in args if a not in ("0", "1")]
        unknown = " or ".join(f"{a} is None" for a in dynamic)
        if expr.kind == "and":
            if "0" in literals:
                return "0"
            if not dynamic:
                return "1"
            if len(dynamic) == 1:
                return dynamic[0]
            controlled = " or ".join(f"{a} == 0" for a in dynamic)
            body = f"0 if {controlled} else None if {unknown} else 1"
        elif expr.kind == "or":
            if "1" in literals:
                return "1"
            if not dynamic:
                return "0"
            if len(dynamic) == 1:
                return dynamic[0]
            controlled = " or ".join(f"{a} == 1" for a in dynamic)
            body = f"1 if {controlled} else None if {unknown} else 0"
        else:  # xor: any unknown poisons the result
            parity = sum(int(a) for a in literals) & 1
            if not dynamic:
                return str(parity)
            terms = " ^ ".join(dynamic + (["1"] if parity else []))
            body = f"None if {unknown} else {terms}"
        return self._assign(body)

    def _assign(self, rhs: str) -> str:
        name = f"t{self._temp}"
        self._temp += 1
        self.lines.append(f"    {name} = {rhs}")
        return name


def _compile_codegen(expr: Expr) -> Callable[[Dict[str, Value]], Value]:
    """Short-circuit 3-valued evaluator generated via ``compile()``.

    Sub-terms land in temporaries bottom-up; each connective
    short-circuits through Python's ``or`` chains (a 0 on any AND leg
    decides the node before the unknown checks run).
    """
    names = tuple(sorted(expr_inputs(expr)))
    emitter = _CodegenEmitter(names)
    result = emitter.emit(expr)
    lines = ["def _fn(values):"]
    lines.extend(_load_inputs(names))
    lines.extend(emitter.lines)
    lines.append(f"    return {result}")
    return _compile_source("\n".join(lines) + "\n", "codegen", {})


def compile_expr(expr: Expr) -> Callable[[Dict[str, Value]], Value]:
    """Compile an expression AST to the fastest applicable evaluator."""
    inputs = expr_inputs(expr)
    if len(inputs) <= LUT_MAX_INPUTS:
        fn = _compile_lut(expr)
        metrics.counter("liberty.fn.compiled_lut").inc()
        fn.kind = "lut"  # type: ignore[attr-defined]
    else:
        fn = _compile_codegen(expr)
        metrics.counter("liberty.fn.compiled_codegen").inc()
        fn.kind = "codegen"  # type: ignore[attr-defined]
    fn.expr = expr  # type: ignore[attr-defined]
    fn.inputs = inputs  # type: ignore[attr-defined]
    return fn


@lru_cache(maxsize=None)
def compile_function(text: str) -> Callable[[Dict[str, Value]], Value]:
    """Parse and compile a function to its fastest evaluator.

    Memoized by source text: every instance of a cell (and every
    simulator over the same library) shares one compiled closure.
    """
    return compile_expr(parse_function(text))


# ----------------------------------------------------------------------
# slot-indexed evaluators (the simulator's incremental-kernel tier)
# ----------------------------------------------------------------------
#
# The incremental simulator keeps one persistent *list* per cell
# instance holding the base-3 encoding of every pin value (0, 1,
# X -> 0, 1, 2) at a fixed slot per pin.  Indexed evaluators read
# ``v[slot]`` -- a C-level list index instead of a dict lookup -- and
# return decoded 0/1/None.  The slot assignment is per *cell type*
# (sorted pin names), so the compiled closures are still shared by
# every instance of a cell via the memoization cache.

#: decode table: encoded 0/1/2 -> 0/1/None
DECODE = (0, 1, None)


def encode_value(value: Value) -> int:
    """Base-3 encoding of a 3-valued signal (None/X encodes as 2)."""
    return 2 if value is None else value


def _load_slots(
    names: Tuple[str, ...], index: Dict[str, int]
) -> List[str]:
    """Source lines binding each used slot to a local once.

    A name without a slot is an unconnected pin: permanently X.
    """
    lines = []
    for i, name in enumerate(names):
        slot = index.get(name)
        lines.append(f"    x{i} = v[{slot}]" if slot is not None else f"    x{i} = 2")
    return lines


def _compile_lut_indexed(
    expr: Expr, slots: Tuple[str, ...]
) -> Callable[[List[int]], Value]:
    """Truth-table evaluator over an encoded slot list."""
    names = tuple(sorted(expr_inputs(expr)))
    arity = len(names)
    table: List[Value] = []
    for combo in itertools.product((0, 1, None), repeat=arity):
        table.append(evaluate(expr, dict(zip(names, combo))))
    if arity == 0:
        fn = _compile_source(
            "def _fn(v):\n    return _c\n", "lut", {"_c": table[0]}
        )
        fn.lut_slots = ()  # type: ignore[attr-defined]
        fn.table = tuple(table)  # type: ignore[attr-defined]
        return fn
    index = {name: i for i, name in enumerate(slots)}
    terms = []
    lut_slots = []
    for pos, name in enumerate(names):
        stride = 3 ** (arity - 1 - pos)
        slot = index.get(name)
        lut_slots.append(slot)
        term = f"v[{slot}]" if slot is not None else "2"
        terms.append(term if stride == 1 else f"{term} * {stride}")
    source = "def _fn(v):\n    return _table[" + " + ".join(terms) + "]\n"
    fn = _compile_source(source, "lut", {"_table": tuple(table)})
    #: msb-first slot indices (None for unconnected) + the flat table,
    #: exposed so the simulator can inline 1-2 input lookups entirely
    fn.lut_slots = tuple(lut_slots)  # type: ignore[attr-defined]
    fn.table = tuple(table)  # type: ignore[attr-defined]
    return fn


class _IndexedEmitter:
    """Emit statements combining encoded ``x<i>`` locals (0/1/2)."""

    _NOT_FOLD = {"0": "1", "1": "0", "2": "2"}

    def __init__(self, names: Tuple[str, ...]):
        self._index = {name: i for i, name in enumerate(names)}
        self.lines: List[str] = []
        self._temp = 0

    def emit(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return str(expr.value)
        if isinstance(expr, Var):
            return f"x{self._index[expr.name]}"
        if isinstance(expr, Not):
            arg = self.emit(expr.arg)
            if arg in self._NOT_FOLD:
                return self._NOT_FOLD[arg]
            return self._assign(f"2 if {arg} == 2 else {arg} ^ 1")
        args = [self.emit(arg) for arg in expr.args]
        literals = [a for a in args if a in ("0", "1", "2")]
        dynamic = [a for a in args if a not in ("0", "1", "2")]
        has_x = "2" in literals
        unknown = " or ".join(f"{a} == 2" for a in dynamic)
        if expr.kind == "and":
            if "0" in literals:
                return "0"
            if not dynamic:
                return "2" if has_x else "1"
            if len(dynamic) == 1 and not has_x:
                return dynamic[0]
            controlled = " or ".join(f"{a} == 0" for a in dynamic)
            tail = "2" if has_x else f"2 if {unknown} else 1"
            body = f"0 if {controlled} else {tail}"
        elif expr.kind == "or":
            if "1" in literals:
                return "1"
            if not dynamic:
                return "2" if has_x else "0"
            if len(dynamic) == 1 and not has_x:
                return dynamic[0]
            controlled = " or ".join(f"{a} == 1" for a in dynamic)
            tail = "2" if has_x else f"2 if {unknown} else 0"
            body = f"1 if {controlled} else {tail}"
        else:  # xor: any unknown poisons the result
            if has_x:
                return "2"
            parity = sum(int(a) for a in literals) & 1
            if not dynamic:
                return str(parity)
            terms = " ^ ".join(dynamic + (["1"] if parity else []))
            body = f"2 if {unknown} else {terms}"
        return self._assign(body)

    def _assign(self, rhs: str) -> str:
        name = f"t{self._temp}"
        self._temp += 1
        self.lines.append(f"    {name} = {rhs}")
        return name


def _compile_codegen_indexed(
    expr: Expr, slots: Tuple[str, ...]
) -> Callable[[List[int]], Value]:
    """Short-circuit evaluator over an encoded slot list."""
    names = tuple(sorted(expr_inputs(expr)))
    index = {name: i for i, name in enumerate(slots)}
    emitter = _IndexedEmitter(names)
    result = emitter.emit(expr)
    lines = ["def _fn(v):"]
    lines.extend(_load_slots(names, index))
    lines.extend(emitter.lines)
    lines.append(f"    return _d[{result}]")
    return _compile_source("\n".join(lines) + "\n", "codegen", {"_d": DECODE})


@lru_cache(maxsize=None)
def compile_function_indexed(
    text: str, slots: Tuple[str, ...]
) -> Callable[[List[int]], Value]:
    """Compile a function over an encoded slot list (see module docs).

    ``slots`` assigns each pin name a fixed position in the value list;
    memoized by (text, slots) so instances of a cell share evaluators.
    """
    expr = parse_function(text)
    inputs = expr_inputs(expr)
    if len(inputs) <= LUT_MAX_INPUTS:
        fn = _compile_lut_indexed(expr, slots)
        metrics.counter("liberty.fn.compiled_lut").inc()
        fn.kind = "lut"  # type: ignore[attr-defined]
    else:
        fn = _compile_codegen_indexed(expr, slots)
        metrics.counter("liberty.fn.compiled_codegen").inc()
        fn.kind = "codegen"  # type: ignore[attr-defined]
    fn.expr = expr  # type: ignore[attr-defined]
    fn.inputs = inputs  # type: ignore[attr-defined]
    fn.slots = slots  # type: ignore[attr-defined]
    return fn


# ----------------------------------------------------------------------
# lane-plane evaluators (the batch simulator's bit-parallel tier)
# ----------------------------------------------------------------------
#
# The batch simulator (:mod:`repro.sim.batch`) packs one Monte-Carlo
# chip per bit lane of arbitrary-width Python ints.  Every 3-valued
# signal becomes *two planes*: a value plane and an x plane, one bit
# per lane -- a lane is unknown when its x bit is set, and its value
# bit is then kept 0 (the normalization invariant ``v & x == 0`` every
# generated evaluator preserves).  One pass of mask arithmetic then
# evaluates a cell function for all lanes at once::
#
#     NOT: v' = M & ~(v | x)            x' = x
#     AND: v' = v1 & v2                 x' = (x1|x2) & (v1|x1) & (v2|x2)
#     OR : v' = v1 | v2                 x' = (x1|x2) & ~(v1|v2)
#     XOR: x' = x1 | x2                 v' = (v1 ^ v2) & ~x'
#
# where ``M`` is the full lane mask.  The AND/OR x-plane terms encode
# the same dominance rules :func:`evaluate` applies per scalar: a
# definite 0 kills an AND's unknowns, a definite 1 an OR's.

#: sentinel plane pair for a pin the caller never bound: every lane X
_LANES_UNKNOWN = (0, -1)


def pack_lanes(values: Sequence[Value]) -> Tuple[int, int]:
    """Pack per-lane 3-valued scalars into a ``(value, x)`` plane pair."""
    value_plane = 0
    x_plane = 0
    for lane, value in enumerate(values):
        if value is None:
            x_plane |= 1 << lane
        elif value:
            value_plane |= 1 << lane
    return value_plane, x_plane


def unpack_lane(planes: Tuple[int, int], lane: int) -> Value:
    """The 3-valued scalar one lane of a plane pair holds."""
    bit = 1 << lane
    if planes[1] & bit:
        return None
    return 1 if planes[0] & bit else 0


def unpack_lanes(planes: Tuple[int, int], lanes: int) -> List[Value]:
    """Per-lane 3-valued scalars of a plane pair (LSB lane first)."""
    value_plane, x_plane = planes
    out: List[Value] = []
    for lane in range(lanes):
        bit = 1 << lane
        if x_plane & bit:
            out.append(None)
        elif value_plane & bit:
            out.append(1)
        else:
            out.append(0)
    return out


class _LaneEmitter:
    """Emit statements combining ``(value, x)`` plane locals bitwise."""

    def __init__(self):
        self.lines: List[str] = []
        self._temp = 0

    def emit(
        self, expr: Expr, loads: Dict[str, Tuple[str, str]]
    ) -> Tuple[str, str]:
        if isinstance(expr, Const):
            return ("M", "0") if expr.value else ("0", "0")
        if isinstance(expr, Var):
            return loads[expr.name]
        if isinstance(expr, Not):
            value, unknown = self.emit(expr.arg, loads)
            return (self._assign(f"M & ~({value} | {unknown})"), unknown)
        pairs = [self.emit(arg, loads) for arg in expr.args]
        values = [pair[0] for pair in pairs]
        unknowns = [pair[1] for pair in pairs]
        if expr.kind == "and":
            value = self._assign(" & ".join(values))
            not_zero = " & ".join(f"({v} | {x})" for v, x in pairs)
            unknown = self._assign(f"({' | '.join(unknowns)}) & {not_zero}")
        elif expr.kind == "or":
            value = self._assign(" | ".join(values))
            unknown = self._assign(f"({' | '.join(unknowns)}) & ~{value}")
        else:  # xor: any unknown lane poisons that lane
            unknown = self._assign(" | ".join(unknowns))
            value = self._assign(f"({' ^ '.join(values)}) & ~{unknown}")
        return (value, unknown)

    def _assign(self, rhs: str) -> str:
        name = f"t{self._temp}"
        self._temp += 1
        self.lines.append(f"    {name} = {rhs}")
        return name


def _finish_lanes(
    expr: Expr,
    lines: List[str],
    loads: Dict[str, Tuple[str, str]],
    namespace: Dict[str, object],
) -> Callable:
    emitter = _LaneEmitter()
    value, unknown = emitter.emit(expr, loads)
    lines.extend(emitter.lines)
    lines.append(f"    return ({value}, {unknown})")
    fn = _compile_source("\n".join(lines) + "\n", "lanes", namespace)
    metrics.counter("liberty.fn.compiled_lanes").inc()
    fn.kind = "lanes"  # type: ignore[attr-defined]
    fn.expr = expr  # type: ignore[attr-defined]
    fn.inputs = expr_inputs(expr)  # type: ignore[attr-defined]
    return fn


@lru_cache(maxsize=None)
def compile_function_lanes(
    text: str,
) -> Callable[[Dict[str, Tuple[int, int]], int], Tuple[int, int]]:
    """Compile a function to a lane-parallel two-plane evaluator.

    The returned ``fn(planes, mask)`` reads a pin-name -> ``(value, x)``
    plane-pair dict and evaluates every lane of the batch in one pass
    of bitwise ops, returning the output plane pair.  Missing pins read
    as all-lanes-X, and input planes are renormalized on load (masked
    to ``mask`` with ``v & x == 0``) so arbitrary ints are safe to pass.
    Memoized by source text like :func:`compile_function`.
    """
    expr = parse_function(text)
    names = tuple(sorted(expr_inputs(expr)))
    lines = ["def _fn(planes, M):"]
    if names:
        lines.append("    _g = planes.get")
    loads: Dict[str, Tuple[str, str]] = {}
    for i, name in enumerate(names):
        lines.append(f"    _p = _g({name!r}, _XU)")
        lines.append(f"    x{i} = _p[1] & M")
        lines.append(f"    v{i} = _p[0] & M & ~x{i}")
        loads[name] = (f"v{i}", f"x{i}")
    return _finish_lanes(expr, lines, loads, {"_XU": _LANES_UNKNOWN})


@lru_cache(maxsize=None)
def compile_function_lanes_indexed(
    text: str, slots: Tuple[str, ...]
) -> Callable[[List[int], int], Tuple[int, int]]:
    """Lane-plane evaluator over a flat slot list (the batch kernel tier).

    The batch simulator keeps one flat list per cell instance holding
    the plane pair of every pin at a fixed position: slot ``k``'s value
    plane at ``2k``, its x plane at ``2k + 1``.  The generated
    ``fn(env, mask)`` reads those C-level list indexes directly; the
    kernel maintains the ``v & x == 0`` invariant, so no renormalizing
    loads are emitted.  Pins without a slot read as all-lanes-X.
    Memoized by ``(text, slots)`` so instances of a cell share one
    evaluator, exactly like :func:`compile_function_indexed`.
    """
    expr = parse_function(text)
    names = tuple(sorted(expr_inputs(expr)))
    index = {name: i for i, name in enumerate(slots)}
    lines = ["def _fn(e, M):"]
    loads: Dict[str, Tuple[str, str]] = {}
    for i, name in enumerate(names):
        slot = index.get(name)
        if slot is None:
            lines.append(f"    v{i} = 0")
            lines.append(f"    x{i} = M")
        else:
            lines.append(f"    v{i} = e[{2 * slot}]")
            lines.append(f"    x{i} = e[{2 * slot + 1}]")
        loads[name] = (f"v{i}", f"x{i}")
    fn = _finish_lanes(expr, lines, loads, {})
    fn.slots = slots  # type: ignore[attr-defined]
    return fn


@lru_cache(maxsize=None)
def reference_function(text: str) -> Callable[[Dict[str, Value]], Value]:
    """The pre-compilation evaluator: a recursive AST walk per call.

    Kept as the reference oracle for the compiled tiers and as the
    ``kernel="reference"`` baseline of the simulator benchmarks.
    """
    expr = parse_function(text)

    def _eval(values: Dict[str, Value]) -> Value:
        return evaluate(expr, values)

    _eval.kind = "ast"  # type: ignore[attr-defined]
    _eval.expr = expr  # type: ignore[attr-defined]
    _eval.inputs = expr_inputs(expr)  # type: ignore[attr-defined]
    return _eval


def expr_to_text(expr: Expr) -> str:
    """Render an AST back to liberty syntax (canonical, parenthesised)."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Not):
        return f"!{_wrap(expr.arg)}"
    joiner = {"and": " * ", "or": " + ", "xor": " ^ "}[expr.kind]
    return joiner.join(_wrap(arg) for arg in expr.args)


def _wrap(expr: Expr) -> str:
    if isinstance(expr, (Var, Const, Not)):
        return expr_to_text(expr)
    return f"({expr_to_text(expr)})"


def literal_count(expr: Expr) -> int:
    """Number of literals -- a proxy for complex-gate area."""
    if isinstance(expr, Var):
        return 1
    if isinstance(expr, Const):
        return 0
    if isinstance(expr, Not):
        return literal_count(expr.arg)
    return sum(literal_count(arg) for arg in expr.args)
