"""Liberty boolean function expressions.

Liberty cell functions use a small expression language::

    function : "(A * B) + !C";     and/or/not as * + !
    function : "(A B)";            juxtaposition is AND
    function : "A ^ B";            xor

This module parses such expressions to an AST and compiles them to fast
evaluators over pin-value dicts.  Values follow 3-valued logic: 0, 1 and
``None`` for unknown (X); unknowns propagate unless the known inputs
already determine the output (e.g. ``0 AND X == 0``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

Value = Optional[int]


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Not:
    arg: "Expr"


@dataclass(frozen=True)
class Op:
    kind: str  # "and" | "or" | "xor"
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class Const:
    value: int


Expr = Union[Var, Not, Op, Const]


class FunctionParseError(Exception):
    """Raised for malformed liberty function expressions."""


_FN_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\[\]]*|[()!*+^']|0|1")


def _tokenize(text: str) -> List[str]:
    tokens = _FN_TOKEN_RE.findall(text)
    joined = "".join(tokens).replace(" ", "")
    stripped = re.sub(r"\s+", "", text)
    if joined != stripped:
        raise FunctionParseError(f"cannot tokenize function {text!r}")
    return tokens


class _Parser:
    """Recursive descent with precedence: ! ' > * (implicit) > ^ > +."""

    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos >= len(self._tokens):
            return None
        return self._tokens[self._pos]

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise FunctionParseError("unexpected end of expression")
        self._pos += 1
        return tok

    def parse(self) -> Expr:
        expr = self._or()
        if self.peek() is not None:
            raise FunctionParseError(f"trailing tokens near {self.peek()!r}")
        return expr

    def _or(self) -> Expr:
        args = [self._xor()]
        while self.peek() == "+":
            self.next()
            args.append(self._xor())
        if len(args) == 1:
            return args[0]
        return Op("or", tuple(args))

    def _xor(self) -> Expr:
        args = [self._and()]
        while self.peek() == "^":
            self.next()
            args.append(self._and())
        if len(args) == 1:
            return args[0]
        return Op("xor", tuple(args))

    def _and(self) -> Expr:
        args = [self._unary()]
        while True:
            tok = self.peek()
            if tok == "*":
                self.next()
                args.append(self._unary())
            elif tok is not None and (tok == "(" or tok == "!" or _is_name(tok)):
                args.append(self._unary())  # implicit AND by juxtaposition
            else:
                break
        if len(args) == 1:
            return args[0]
        return Op("and", tuple(args))

    def _unary(self) -> Expr:
        tok = self.next()
        if tok == "!":
            return _negate(self._unary())
        if tok == "(":
            inner = self._or()
            if self.next() != ")":
                raise FunctionParseError("missing closing parenthesis")
            return self._postfix(inner)
        if tok in ("0", "1"):
            return self._postfix(Const(int(tok)))
        if _is_name(tok):
            return self._postfix(Var(tok))
        raise FunctionParseError(f"unexpected token {tok!r}")

    def _postfix(self, expr: Expr) -> Expr:
        while self.peek() == "'":
            self.next()
            expr = _negate(expr)
        return expr


def _is_name(token: str) -> bool:
    return bool(re.match(r"^[A-Za-z_]", token))


def _negate(expr: Expr) -> Expr:
    if isinstance(expr, Not):
        return expr.arg
    return Not(expr)


def parse_function(text: str) -> Expr:
    """Parse a liberty function string to an expression AST."""
    return _Parser(_tokenize(text)).parse()


def expr_inputs(expr: Expr) -> FrozenSet[str]:
    """The set of pin names an expression reads."""
    if isinstance(expr, Var):
        return frozenset([expr.name])
    if isinstance(expr, Not):
        return expr_inputs(expr.arg)
    if isinstance(expr, Op):
        out: FrozenSet[str] = frozenset()
        for arg in expr.args:
            out |= expr_inputs(arg)
        return out
    return frozenset()


def evaluate(expr: Expr, values: Dict[str, Value]) -> Value:
    """Evaluate with 3-valued logic (None = unknown)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return values.get(expr.name)
    if isinstance(expr, Not):
        inner = evaluate(expr.arg, values)
        if inner is None:
            return None
        return 1 - inner
    if expr.kind == "and":
        result: Value = 1
        for arg in expr.args:
            val = evaluate(arg, values)
            if val == 0:
                return 0
            if val is None:
                result = None
        return result
    if expr.kind == "or":
        result = 0
        for arg in expr.args:
            val = evaluate(arg, values)
            if val == 1:
                return 1
            if val is None:
                result = None
        return result
    # xor
    acc = 0
    for arg in expr.args:
        val = evaluate(arg, values)
        if val is None:
            return None
        acc ^= val
    return acc


def compile_function(text: str) -> Callable[[Dict[str, Value]], Value]:
    """Parse and return a closure evaluating the function."""
    expr = parse_function(text)

    def _eval(values: Dict[str, Value]) -> Value:
        return evaluate(expr, values)

    _eval.expr = expr  # type: ignore[attr-defined]
    _eval.inputs = expr_inputs(expr)  # type: ignore[attr-defined]
    return _eval


def expr_to_text(expr: Expr) -> str:
    """Render an AST back to liberty syntax (canonical, parenthesised)."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Not):
        return f"!{_wrap(expr.arg)}"
    joiner = {"and": " * ", "or": " + ", "xor": " ^ "}[expr.kind]
    return joiner.join(_wrap(arg) for arg in expr.args)


def _wrap(expr: Expr) -> str:
    if isinstance(expr, (Var, Const, Not)):
        return expr_to_text(expr)
    return f"({expr_to_text(expr)})"


def literal_count(expr: Expr) -> int:
    """Number of literals -- a proxy for complex-gate area."""
    if isinstance(expr, Var):
        return 1
    if isinstance(expr, Const):
        return 0
    if isinstance(expr, Not):
        return literal_count(expr.arg)
    return sum(literal_count(arg) for arg in expr.args)
