"""Emit a :class:`~repro.liberty.model.Library` as Liberty (.lib) text.

The flow writes the synthetic libraries to disk and then re-imports them
through :mod:`repro.liberty.parser`, exercising the same path the paper's
gatefile-generation script takes over the ST .lib file.
"""

from __future__ import annotations

from typing import List

from ..netlist.core import PortDirection
from .model import Library, LibraryCell, SequentialInfo, TimingArc


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _emit_arc(arc: TimingArc, out: List[str], indent: str) -> None:
    out.append(f"{indent}timing () {{")
    out.append(f'{indent}  related_pin : "{arc.related_pin}";')
    out.append(f"{indent}  timing_type : {arc.timing_type};")
    out.append(f"{indent}  intrinsic_rise : {_fmt(arc.intrinsic_rise)};")
    out.append(f"{indent}  intrinsic_fall : {_fmt(arc.intrinsic_fall)};")
    out.append(f"{indent}  rise_resistance : {_fmt(arc.rise_resistance)};")
    out.append(f"{indent}  fall_resistance : {_fmt(arc.fall_resistance)};")
    out.append(f"{indent}}}")


def _emit_sequential(seq: SequentialInfo, out: List[str]) -> None:
    group = "ff" if seq.kind.value == "flip_flop" else "latch"
    out.append(f"    {group} ({seq.state_pin}, {seq.state_pin}N) {{")
    if group == "ff":
        out.append(f'      next_state : "{seq.next_state}";')
        out.append(f'      clocked_on : "{seq.clocked_on}";')
    else:
        out.append(f'      data_in : "{seq.next_state}";')
        out.append(f'      enable : "{seq.clocked_on}";')
    if seq.clear:
        out.append(f'      clear : "{seq.clear}";')
    if seq.preset:
        out.append(f'      preset : "{seq.preset}";')
    out.append("    }")


def _emit_cell(cell: LibraryCell, out: List[str]) -> None:
    out.append(f"  cell ({cell.name}) {{")
    out.append(f"    area : {_fmt(cell.area)};")
    out.append(f"    cell_leakage_power : {_fmt(cell.leakage)};")
    out.append(f"    internal_energy : {_fmt(cell.switch_energy)};")
    if cell.dont_touch:
        out.append("    dont_touch : true;")
    if cell.sequential is not None:
        _emit_sequential(cell.sequential, out)
    for pin in cell.pins.values():
        out.append(f"    pin ({pin.name}) {{")
        out.append(f"      direction : {pin.direction.value};")
        if pin.direction == PortDirection.INPUT:
            out.append(f"      capacitance : {_fmt(pin.capacitance)};")
            if pin.is_clock:
                out.append("      clock : true;")
        else:
            if pin.function is not None:
                out.append(f'      function : "{pin.function}";')
            if pin.max_capacitance is not None:
                out.append(
                    f"      max_capacitance : {_fmt(pin.max_capacitance)};"
                )
        # delay arcs live on their target pin, constraint arcs on the
        # constrained (input) pin -- both are "arcs to" that pin
        for arc in cell.arcs_to(pin.name):
            _emit_arc(arc, out, "      ")
        out.append("    }")
    out.append("  }")


def write_liberty(library: Library) -> str:
    out: List[str] = [f"library ({library.name}) {{"]
    out.append('  delay_model : "generic_cmos";')
    out.append(f"  default_wire_cap : {_fmt(library.default_wire_cap)};")
    for corner in library.corners.values():
        out.append(f"  operating_conditions ({corner.name}) {{")
        out.append(f"    voltage : {_fmt(corner.voltage)};")
        out.append(f"    temperature : {_fmt(corner.temperature)};")
        out.append(f"    derate : {_fmt(corner.derate)};")
        out.append("  }")
    for cell in library.cells.values():
        _emit_cell(cell, out)
    out.append("}")
    return "\n".join(out) + "\n"


def save_liberty(library: Library, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(write_liberty(library))
