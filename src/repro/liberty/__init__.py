"""Technology library support: Liberty I/O, gatefile, synthetic CORE9."""

from .functions import (
    FunctionParseError,
    compile_function,
    evaluate,
    expr_inputs,
    expr_to_text,
    literal_count,
    parse_function,
)
from .model import (
    CellKind,
    Library,
    LibraryCell,
    LibraryPin,
    OperatingCorner,
    SequentialInfo,
    TimingArc,
    is_scan_cell,
)
from .parser import LibertyParseError, parse_liberty, read_liberty
from .writer import save_liberty, write_liberty
from .gatefile import (
    Gatefile,
    GatefileError,
    GateInfo,
    GatePin,
    ReplacementRule,
    build_gatefile,
)
from .techmap import ExpressionMapper, GateChooser, TechmapError
from .core9 import AREA_UNIT, core9_hs, core9_ll

__all__ = [
    "AREA_UNIT",
    "CellKind",
    "ExpressionMapper",
    "FunctionParseError",
    "GateChooser",
    "Gatefile",
    "GatefileError",
    "GateInfo",
    "GatePin",
    "Library",
    "LibraryCell",
    "LibraryPin",
    "LibertyParseError",
    "OperatingCorner",
    "ReplacementRule",
    "SequentialInfo",
    "TechmapError",
    "TimingArc",
    "build_gatefile",
    "compile_function",
    "core9_hs",
    "core9_ll",
    "evaluate",
    "expr_inputs",
    "expr_to_text",
    "is_scan_cell",
    "literal_count",
    "parse_function",
    "parse_liberty",
    "read_liberty",
    "save_liberty",
    "write_liberty",
]
