"""Process-pool fan-out for CPU-bound, order-preserving map work.

The :class:`~repro.engine.executor.FlowEngine` parallelises *stages* on
a thread pool, which is the right shape for I/O-ish orchestration but
not for thousands of identical CPU-bound work items (Monte-Carlo chip
sampling, per-chip simulations): the GIL serialises them.
:func:`parallel_map` fans such items out over a
``concurrent.futures.ProcessPoolExecutor`` instead.

Guarantees:

- **order-preserving** -- results come back in item order, so callers
  that derive per-item determinism from the item itself (e.g. per-chip
  seeds) get bit-identical output with any worker count, including the
  serial fallback;
- **graceful degradation** -- ``jobs <= 1``, tiny workloads, platforms
  without ``fork``, or a pool failure (unpicklable payloads, broken
  workers) all fall back to a plain serial loop in the calling process;
- **attributable failures** -- an exception raised by ``fn`` surfaces
  as a :class:`PoolItemError` naming the originating item index (with
  the original exception chained and on ``.original``), identically on
  the serial and the pool path;
- **bounded memory** -- ``max_pending`` caps how many items are in
  flight at once, so a producer feeding a huge iterable through the
  pool (the service queue's backpressure case) never materialises every
  pending future at the same time.

``fn`` must be a module-level function (it crosses the process
boundary by pickle).
"""

from __future__ import annotations

import collections
import concurrent.futures
import multiprocessing
import pickle
from concurrent.futures.process import BrokenProcessPool
import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..obs import metrics

T = TypeVar("T")
R = TypeVar("R")

#: below this many items the pool start-up cost outweighs the fan-out
_MIN_POOL_ITEMS = 4


class PoolItemError(RuntimeError):
    """An item's ``fn`` call failed; names the originating index."""

    def __init__(self, index: int, original: BaseException):
        super().__init__(
            f"parallel_map item {index} failed: "
            f"{type(original).__name__}: {original}"
        )
        self.index = index
        self.original = original


def default_jobs() -> int:
    """Worker count used when ``jobs`` is ``None`` (the CPU count)."""
    return os.cpu_count() or 1


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    results: List[R] = []
    for index, item in enumerate(items):
        try:
            results.append(fn(item))
        except Exception as exc:
            raise PoolItemError(index, exc) from exc
    return results


def _call_indexed(task: Tuple[Callable[[T], R], int, T]):
    """Worker shim: run one item, report failure as a value.

    Exceptions come back as ``(False, (index, exc))`` instead of
    propagating, so the parent can raise a :class:`PoolItemError` that
    names the item -- and so one bad item cannot be confused with a
    pool infrastructure failure.
    """
    fn, index, item = task
    try:
        return True, fn(item)
    except Exception as exc:
        return False, (index, exc)


def _raise_item_error(index: int, exc: BaseException) -> None:
    raise PoolItemError(index, exc) from exc


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    max_pending: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` on a process pool, preserving order.

    ``jobs=None`` uses every CPU; ``jobs<=1`` runs serially in-process.
    ``max_pending`` bounds the number of in-flight items (backpressure);
    ``None`` submits everything up front via ``pool.map``.  The serial
    path and both pool paths produce identical result lists, and a
    failing item raises the same :class:`PoolItemError` on all of them.
    """
    work = list(items)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(work) < _MIN_POOL_ITEMS:
        return _serial_map(fn, work)
    try:
        # fork keeps start-up cheap and inherits loaded modules; on
        # platforms without it (Windows) stay serial rather than pay
        # spawn's re-import cost for every worker
        context = multiprocessing.get_context("fork")
    except ValueError:
        return _serial_map(fn, work)
    workers = min(jobs, len(work))
    tasks = [(fn, index, item) for index, item in enumerate(work)]
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            if max_pending is None:
                if chunksize is None:
                    chunksize = max(1, len(work) // (workers * 4))
                outcomes = list(
                    pool.map(_call_indexed, tasks, chunksize=chunksize)
                )
            else:
                outcomes = _windowed_map(
                    pool, tasks, max(workers, int(max_pending))
                )
        results: List[R] = []
        for ok, payload in outcomes:
            if not ok:
                _raise_item_error(*payload)
            results.append(payload)
        metrics.counter("engine.pool.items").inc(len(work))
        metrics.counter("engine.pool.runs").inc()
        return results
    except PoolItemError:
        raise
    except (
        BrokenProcessPool,
        pickle.PicklingError,
        OSError,
        TypeError,
        AttributeError,
    ):
        # pool could not be created or the payload could not cross the
        # process boundary: degrade to the serial loop (same results)
        metrics.counter("engine.pool.fallbacks").inc()
        return _serial_map(fn, work)


def _windowed_map(pool, tasks, window: int):
    """Submit at most ``window`` tasks at a time, collecting in order."""
    outcomes = []
    pending: "collections.deque" = collections.deque()
    for task in tasks:
        if len(pending) >= window:
            outcomes.append(pending.popleft().result())
        pending.append(pool.submit(_call_indexed, task))
    while pending:
        outcomes.append(pending.popleft().result())
    return outcomes
