"""Process-pool fan-out for CPU-bound, order-preserving map work.

The :class:`~repro.engine.executor.FlowEngine` parallelises *stages* on
a thread pool, which is the right shape for I/O-ish orchestration but
not for thousands of identical CPU-bound work items (Monte-Carlo chip
sampling, per-chip simulations): the GIL serialises them.
:func:`parallel_map` fans such items out over a
``concurrent.futures.ProcessPoolExecutor`` instead.

Guarantees:

- **order-preserving** -- results come back in item order, so callers
  that derive per-item determinism from the item itself (e.g. per-chip
  seeds) get bit-identical output with any worker count, including the
  serial fallback;
- **graceful degradation** -- ``jobs <= 1``, tiny workloads, platforms
  without ``fork``, or a pool failure (unpicklable payloads, broken
  workers) all fall back to a plain serial loop in the calling process.

``fn`` must be a module-level function (it crosses the process
boundary by pickle).  Worker exceptions propagate to the caller.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
from concurrent.futures.process import BrokenProcessPool
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from ..obs import metrics

T = TypeVar("T")
R = TypeVar("R")

#: below this many items the pool start-up cost outweighs the fan-out
_MIN_POOL_ITEMS = 4


def default_jobs() -> int:
    """Worker count used when ``jobs`` is ``None`` (the CPU count)."""
    return os.cpu_count() or 1


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` on a process pool, preserving order.

    ``jobs=None`` uses every CPU; ``jobs<=1`` runs serially in-process.
    The serial path and the pool path produce identical result lists.
    """
    work = list(items)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(work) < _MIN_POOL_ITEMS:
        return _serial_map(fn, work)
    try:
        # fork keeps start-up cheap and inherits loaded modules; on
        # platforms without it (Windows) stay serial rather than pay
        # spawn's re-import cost for every worker
        context = multiprocessing.get_context("fork")
    except ValueError:
        return _serial_map(fn, work)
    workers = min(jobs, len(work))
    if chunksize is None:
        chunksize = max(1, len(work) // (workers * 4))
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            results = list(pool.map(fn, work, chunksize=chunksize))
        metrics.counter("engine.pool.items").inc(len(work))
        metrics.counter("engine.pool.runs").inc()
        return results
    except (
        BrokenProcessPool,
        pickle.PicklingError,
        OSError,
        TypeError,
        AttributeError,
    ):
        # pool could not be created or the payload could not cross the
        # process boundary: degrade to the serial loop (same results)
        metrics.counter("engine.pool.fallbacks").inc()
        return _serial_map(fn, work)
