"""repro.engine -- cached, parallel, observable flow orchestration.

The engine models an implementation flow as a DAG of pure-ish stages
exchanging named artifacts, and executes it with content-addressed
caching, optional thread-pool parallelism, a structured JSONL run
journal and per-stage robustness (timeout, retry, graceful
degradation).  ``Drdesync``, the ``repro.flow`` implementation flows,
the CLI and the benchmark harness all run on it.

Typical use::

    from repro.engine import ArtifactCache, FlowEngine, RunJournal

    engine = FlowEngine(
        cache=ArtifactCache(".repro_cache"),
        journal=RunJournal("run.jsonl"),
        jobs=4,
    )
    tool = Drdesync(library, engine=engine)
    result = tool.run(module)          # warm reruns resume from cache
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    HashError,
    LazyArtifact,
    stable_hash,
)
from .executor import (
    ArtifactMap,
    FlowEngine,
    FlowError,
    FlowResult,
    SerialExecutor,
    StageRecord,
    StageStatus,
    ThreadExecutor,
)
from .graph import FlowGraph, FlowGraphError, Stage
from .journal import RunJournal, read_journal
from .pool import PoolItemError, default_jobs, parallel_map
from .report import engine_stats, render_report, write_engine_stats
from .stages import (
    DESYNC_ARTIFACTS,
    desync_stages,
    generation_stage,
    library_fingerprint,
)

__all__ = [
    "ArtifactCache",
    "ArtifactMap",
    "CacheStats",
    "LazyArtifact",
    "DESYNC_ARTIFACTS",
    "FlowEngine",
    "FlowError",
    "FlowGraph",
    "FlowGraphError",
    "FlowResult",
    "HashError",
    "PoolItemError",
    "RunJournal",
    "SerialExecutor",
    "Stage",
    "StageRecord",
    "StageStatus",
    "ThreadExecutor",
    "default_jobs",
    "desync_stages",
    "engine_stats",
    "generation_stage",
    "parallel_map",
    "library_fingerprint",
    "read_journal",
    "render_report",
    "stable_hash",
    "write_engine_stats",
]
