"""Structured run journal: one JSON object per line (JSONL).

The journal is the engine's observability backbone: every run start,
stage completion (with status, wall time, cache disposition and netlist
metrics) and run end is recorded as one line.  Events are kept in
memory as well, so in-process callers (tests, benchmarks, reports) can
inspect a run without re-reading the file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional


class RunJournal:
    """Append-only event log, optionally persisted to a JSONL file.

    ``trace_id`` stamps every recorded event with the identity of the
    work the journal belongs to (the service daemon passes the job's
    trace ID), so journal lines, exported trace events and HTTP
    tickets correlate on one key.  Records are serialised under the
    journal lock and written as one ``write`` call per line, so
    concurrent writers -- a per-job tracer mirroring spans from
    several engine pool threads -- can never interleave partial lines.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        append: bool = False,
        trace_id: Optional[str] = None,
    ):
        self.path = path
        self.trace_id = trace_id
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._handle = None
        if path:
            # per-job journals live under a run directory that may not
            # exist yet (daemon first record); create it rather than
            # erroring
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(path, "a" if append else "w")

    def record(
        self, event: str, _flush: bool = True, **fields: Any
    ) -> Dict[str, Any]:
        """Record one event; returns the stamped entry.

        Recording after :meth:`close` keeps accepting events in memory
        -- late writers (a timed-out stage's abandoned worker thread,
        an exporter flushing after the run) must not crash on the
        closed file handle.

        ``_flush=False`` skips the per-line flush for high-rate,
        loss-tolerant events (span mirroring); buffered lines still
        land on :meth:`close` or at the next flushed record.
        """
        entry: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        if self.trace_id is not None:
            entry["trace_id"] = self.trace_id
        entry.update(fields)
        with self._lock:
            self.events.append(entry)
            if self._handle is not None and not self._handle.closed:
                self._handle.write(json.dumps(entry, default=str) + "\n")
                if _flush:
                    self._handle.flush()
        return entry

    def select(self, event: Optional[str] = None, **filters: Any):
        """Events matching ``event`` name and every ``field=value`` filter."""
        out = []
        with self._lock:
            snapshot = list(self.events)
        for entry in snapshot:
            if event is not None and entry.get("event") != event:
                continue
            if all(entry.get(k) == v for k, v in filters.items()):
                out.append(entry)
        return out

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL journal file back into a list of event dicts.

    A crash-interrupted run leaves a truncated final line; the valid
    prefix is returned and the partial tail is skipped instead of
    raising ``json.JSONDecodeError``.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return events
