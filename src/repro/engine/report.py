"""Human-readable run reports and machine-readable engine statistics.

``render_report`` turns one :class:`~repro.engine.executor.FlowResult`
into the text table an operator reads after a run; ``engine_stats``
aggregates any number of results (plus the cache counters) into the
JSON document benchmarks persist as ``engine-stats.json`` so the
performance trajectory -- stage timings, cache hit rate -- is tracked
across PRs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..obs.export import aggregate_spans
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .cache import ArtifactCache
from .executor import FlowResult, StageStatus


def render_report(result: FlowResult) -> str:
    """One run as a fixed-width status table."""
    lines = [
        f"== flow {result.name!r}: {len(result.records)} stages, "
        f"{result.wall_time:.3f}s wall ==",
        f"{'stage':28s} {'status':8s} {'time (s)':>9s} {'cache':>6s} "
        f"{'tries':>6s}  detail",
    ]
    for record in result.records.values():
        detail = ""
        if record.metrics:
            parts = [
                f"{key}: {value['cells']} cells"
                for key, value in record.metrics.items()
                if isinstance(value, dict) and "cells" in value
            ]
            detail = ", ".join(parts)
        if record.error_text:
            detail = record.error_text
        lines.append(
            f"{record.name:28s} {record.status.value:8s} "
            f"{record.duration:>9.3f} {record.cache:>6s} "
            f"{record.attempts:>6d}  {detail}"
        )
    counts = result.summary()
    cached = counts.get("cached", 0)
    failed = counts.get("failed", 0) + counts.get("timeout", 0)
    lines.append(
        f"-- {cached} cached, {failed} failed, "
        f"{counts.get('skipped', 0)} skipped --"
    )
    return "\n".join(lines)


def engine_stats(
    results: Iterable[FlowResult],
    cache: Optional[ArtifactCache] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Aggregate per-stage timings and cache accounting across runs.

    With a :class:`~repro.obs.trace.Tracer` and/or
    :class:`~repro.obs.metrics.MetricsRegistry` attached, the document
    also carries the aggregated span tree (``"trace"``) and the metric
    snapshot (``"metrics"``), so ``engine-stats.json`` tracks the
    fine-grained observability data alongside the stage timings.
    """
    stages: Dict[str, Dict[str, Any]] = {}
    runs = 0
    wall = 0.0
    for result in results:
        runs += 1
        wall += result.wall_time
        for record in result.records.values():
            entry = stages.setdefault(
                record.name,
                {"runs": 0, "cached": 0, "failed": 0, "total_s": 0.0},
            )
            entry["runs"] += 1
            entry["total_s"] += record.duration
            if record.status is StageStatus.CACHED:
                entry["cached"] += 1
            elif record.status in (StageStatus.FAILED, StageStatus.TIMEOUT):
                entry["failed"] += 1
    for entry in stages.values():
        executed = entry["runs"] - entry["cached"]
        entry["total_s"] = round(entry["total_s"], 6)
        entry["mean_s"] = round(
            entry["total_s"] / executed if executed else 0.0, 6
        )
    stats: Dict[str, Any] = {
        "runs": runs,
        "wall_s": round(wall, 6),
        "stages": {name: stages[name] for name in sorted(stages)},
    }
    if cache is not None:
        stats["cache"] = cache.stats.as_dict()
    if tracer is not None:
        stats["trace"] = aggregate_spans(tracer)
    if registry is not None:
        stats["metrics"] = registry.snapshot()
    return stats


def write_engine_stats(
    path: str,
    results: Iterable[FlowResult],
    cache: Optional[ArtifactCache] = None,
    extra: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Persist :func:`engine_stats` (plus ``extra`` fields) as JSON."""
    stats = engine_stats(results, cache, tracer=tracer, registry=registry)
    if extra:
        stats.update(extra)
    with open(path, "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return stats
