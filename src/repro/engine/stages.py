"""Prebuilt stages: the ``drdesync`` conversion as an engine DAG.

The desynchronization tool of section 3.2 decomposes into the stage
graph

    import -> group -> ffsub -> ddg -> network -> constraints
                            \\-> (delays) --^

where ``delays`` (the STA characterisation of the delay-element ladder,
section 3.2.5) depends only on the library and therefore runs in
parallel with -- and caches independently of -- the netlist stages.
Each stage's ``params`` carry exactly the option fields and the library
fingerprint its result depends on, so editing one ``DesyncOptions``
field invalidates only the stages downstream of that option.

Stage functions mutate the threaded ``module.*`` artifact in place on
the cold path (the tool's in-place contract) and each one re-publishes
the module under its own artifact key; the cache snapshots the module
at every stage boundary, so a warm run can resume from any prefix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..desync.constraints import generate_constraints
from ..desync.ddg import build_ddg
from ..desync.delays import DelayLadder, characterize_ladder
from ..desync.domains import analyze_clock_domains, select_domain
from ..desync.ffsub import substitute_flip_flops
from ..desync.network import insert_control_network
from ..desync.regions import (
    group_regions,
    manual_regions,
    single_region,
    validate_independence,
)
from ..netlist.cleanup import clean_logic, resolve_assigns, simplify_names
from ..netlist.core import Module
from .cache import library_fingerprint, stable_hash
from .graph import Stage

#: canonical artifact keys of the desynchronization stage chain
DESYNC_ARTIFACTS = (
    "module.imported",
    "clock_period",
    "import_stats",
    "module.grouped",
    "region_map",
    "foreign",
    "clean_stats",
    "module.ffsub",
    "region_map.ffsub",
    "substitution",
    "ddg",
    "ladder",
    "module.network",
    "network",
    "sdc",
)

def generation_stage(
    name: str,
    builder: Callable[[], Module],
    params: Dict[str, Any],
    output: str = "module",
) -> Stage:
    """A netlist-generation stage (the flow's synthesis front-end).

    ``params`` must identify the generated design completely (generator
    name, size knobs, library fingerprint): they are the whole cache
    key, since the stage has no inputs.
    """
    return Stage(
        name=name,
        func=lambda _inputs: {output: builder()},
        inputs=(),
        outputs=(output,),
        params=params,
    )


def desync_stages(
    library,
    gatefile,
    chooser,
    options,
    corner: str = "worst",
    max_delay_levels: int = 240,
    ladder: Optional[DelayLadder] = None,
    prefix: str = "",
    module_input: str = "module.input",
) -> List[Stage]:
    """The section 3.2 pipeline as engine stages.

    ``prefix`` namespaces stage names and artifact keys so several
    conversions can share one graph; ``module_input`` is the initial
    artifact key holding the synchronous netlist.
    """
    libfp = library_fingerprint(library)
    p = prefix

    def key(artifact: str) -> str:
        return p + artifact

    # -- 3.2.1 design import hygiene + clock-period derivation ---------
    def s_import(a: Dict[str, Any]) -> Dict[str, Any]:
        module = a[module_input]
        stats = {
            "assigns_resolved": resolve_assigns(module),
            "names_simplified": simplify_names(module),
        }
        clock_period = options.clock_period
        if clock_period is None:
            from ..sta.analysis import min_clock_period

            clock_period = min_clock_period(module, library, options.corner)
        return {
            key("module.imported"): module,
            key("clock_period"): clock_period,
            key("import_stats"): stats,
        }

    # -- 3.2.2 logic cleaning + region creation + domain selection -----
    def s_group(a: Dict[str, Any]) -> Dict[str, Any]:
        module = a[key("module.imported")]
        clean_stats: Dict[str, int] = {}
        if options.clean and options.grouping == "auto":
            clean_stats = clean_logic(
                module, gatefile, options.false_path_nets
            )
        if options.grouping == "auto":
            region_map = group_regions(
                module, gatefile, options.false_path_nets
            )
        elif options.grouping == "single":
            region_map = single_region(module)
        elif options.grouping == "manual":
            region_map = manual_regions(module, options.manual_assignment)
        else:
            raise ValueError(f"unknown grouping mode {options.grouping!r}")

        problems = validate_independence(
            module, gatefile, region_map, options.false_path_nets
        )
        if problems:
            raise ValueError(
                "regions are not combinationally independent: "
                + "; ".join(problems[:5])
            )

        domains = analyze_clock_domains(module, gatefile)
        selected = select_domain(domains, options.clock_domain)
        foreign: set = set()
        if selected is not None:
            for root, members in domains.domains.items():
                foreign.update(members - selected)
            for name in foreign:
                region = region_map.instance_region.pop(name, None)
                if region is not None and region in region_map.regions:
                    region_map.regions[region].instances.discard(name)
        return {
            key("module.grouped"): module,
            key("region_map"): region_map,
            key("foreign"): foreign,
            key("clean_stats"): clean_stats,
        }

    # -- 3.2.3 flip-flop substitution ----------------------------------
    def s_ffsub(a: Dict[str, Any]) -> Dict[str, Any]:
        module = a[key("module.grouped")]
        region_map = a[key("region_map")]
        substitution = substitute_flip_flops(
            module,
            gatefile,
            library,
            region_map,
            chooser,
            exclude=a[key("foreign")],
        )
        # substitution renames the sequential instances inside the
        # region map, so the updated map is re-published under its own
        # key -- cache replays of this stage must restore it too
        return {
            key("module.ffsub"): module,
            key("region_map.ffsub"): region_map,
            key("substitution"): substitution,
        }

    # -- 3.2.4 data-dependency graph -----------------------------------
    def s_ddg(a: Dict[str, Any]) -> Dict[str, Any]:
        return build_ddg(
            a[key("module.ffsub")],
            gatefile,
            a[key("region_map.ffsub")],
            options.false_path_nets,
            env_instances=a[key("foreign")],
        )

    # -- 3.2.5 delay-element ladder (STA characterisation) -------------
    def s_delays(_a: Dict[str, Any]) -> DelayLadder:
        if ladder is not None:
            return ladder
        return characterize_ladder(library, corner, max_length=max_delay_levels)

    # -- 3.2.5/3.2.6 delay elements + control network ------------------
    def s_network(a: Dict[str, Any]) -> Dict[str, Any]:
        module = a[key("module.ffsub")]
        network = insert_control_network(
            module,
            library,
            gatefile,
            a[key("region_map.ffsub")],
            a[key("ddg")],
            a[key("ladder")],
            chooser=chooser,
            delay_margin=options.delay_margin,
            mux_taps=options.delay_mux_taps,
            mux_headroom=options.delay_mux_headroom,
            reset_port=options.reset_port,
            corner=options.corner,
        )
        return {key("module.network"): module, key("network"): network}

    # -- 3.2.7 physical timing constraints -----------------------------
    def s_constraints(a: Dict[str, Any]) -> Dict[str, Any]:
        return generate_constraints(
            a[key("module.network")],
            a[key("network")],
            a[key("clock_period")],
            options.delay_margin,
        )

    return [
        Stage(
            name=p + "import",
            func=s_import,
            inputs=(module_input,),
            outputs=(
                key("module.imported"),
                key("clock_period"),
                key("import_stats"),
            ),
            params={
                "library": libfp,
                "corner": options.corner,
                "clock_period": options.clock_period,
            },
        ),
        Stage(
            name=p + "group",
            func=s_group,
            inputs=(key("module.imported"),),
            outputs=(
                key("module.grouped"),
                key("region_map"),
                key("foreign"),
                key("clean_stats"),
            ),
            params={
                "library": libfp,
                "grouping": options.grouping,
                "manual_assignment": options.manual_assignment,
                "false_path_nets": options.false_path_nets,
                "clean": options.clean,
                "clock_domain": options.clock_domain,
            },
        ),
        Stage(
            name=p + "ffsub",
            func=s_ffsub,
            inputs=(
                key("module.grouped"),
                key("region_map"),
                key("foreign"),
            ),
            outputs=(
                key("module.ffsub"),
                key("region_map.ffsub"),
                key("substitution"),
            ),
            params={"library": libfp},
            version="2",  # v2: re-publishes the renamed region map
        ),
        Stage(
            name=p + "ddg",
            func=s_ddg,
            inputs=(
                key("module.ffsub"),
                key("region_map.ffsub"),
                key("foreign"),
            ),
            outputs=(key("ddg"),),
            params={
                "library": libfp,
                "false_path_nets": options.false_path_nets,
            },
        ),
        Stage(
            name=p + "delays",
            func=s_delays,
            inputs=(),
            outputs=(key("ladder"),),
            params={
                "library": libfp,
                "corner": corner,
                "max_length": max_delay_levels,
                "provided": stable_hash(ladder) if ladder is not None else None,
            },
        ),
        Stage(
            name=p + "network",
            func=s_network,
            inputs=(
                key("module.ffsub"),
                key("region_map.ffsub"),
                key("ddg"),
                key("ladder"),
            ),
            # ddg already reads module.ffsub, so the artifact chain
            # orders this mutation after every other reader
            outputs=(key("module.network"), key("network")),
            params={
                "library": libfp,
                "delay_margin": options.delay_margin,
                "mux_taps": options.delay_mux_taps,
                "mux_headroom": options.delay_mux_headroom,
                "reset_port": options.reset_port,
                "corner": options.corner,
            },
        ),
        Stage(
            name=p + "constraints",
            func=s_constraints,
            inputs=(
                key("module.network"),
                key("network"),
                key("clock_period"),
            ),
            outputs=(key("sdc"),),
            params={"library": libfp, "delay_margin": options.delay_margin},
        ),
    ]
