"""Flow execution: serial and thread-pool executors plus the engine.

The :class:`FlowEngine` schedules a :class:`~repro.engine.graph.FlowGraph`:

- **keys** -- each stage gets a content-addressed key chaining the
  graph name, stage name/version, its params and the fingerprints of
  its inputs (root inputs content-hashed, derived inputs identified by
  the producing stage's key, Merkle style);
- **cache** -- with an :class:`~repro.engine.cache.ArtifactCache`
  attached, a key match loads the stage's artifacts from disk instead
  of running it (status ``cached``);
- **parallelism** -- ``jobs > 1`` runs independent stages on a
  ``concurrent.futures`` thread pool; ``jobs == 1`` is the
  deterministic serial fallback executing stages in topological
  insertion order on the calling thread;
- **robustness** -- per-stage timeout and retry policy, and graceful
  degradation: a failed stage is recorded (journal + result) and its
  dependents are skipped, but every artifact produced by the healthy
  part of the graph is still returned.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..netlist.core import Module
from ..obs import metrics, prof, trace
from .cache import ArtifactCache, LazyArtifact, stable_hash
from .graph import FlowGraph, Stage
from .journal import RunJournal


class ArtifactMap(dict):
    """Artifact store that materialises lazy cache loads on access.

    Cache hits park :class:`~repro.engine.cache.LazyArtifact` handles
    here; the first ``[]``/``get`` for such a key unpickles the sidecar
    and replaces the handle, so artifacts nothing reads are never
    deserialised.  ``items()``/``values()`` expose raw handles -- use
    keyed access.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lazy_lock = threading.Lock()

    def __getitem__(self, key):
        value = super().__getitem__(key)
        if isinstance(value, LazyArtifact):
            with self._lazy_lock:
                value = super().__getitem__(key)
                if isinstance(value, LazyArtifact):
                    value = value.load()
                    super().__setitem__(key, value)
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default


class StageStatus(Enum):
    OK = "ok"
    CACHED = "cached"
    FAILED = "failed"
    TIMEOUT = "timeout"
    SKIPPED = "skipped"


class FlowError(RuntimeError):
    """Raised when a flow run is asked to surface a stage failure."""


@dataclass
class StageRecord:
    """What happened to one stage during one run."""

    name: str
    status: StageStatus
    duration: float = 0.0
    attempts: int = 0
    key: Optional[str] = None
    cache: str = "off"  # "hit" | "miss" | "off"
    error: Optional[BaseException] = None
    error_text: Optional[str] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in (StageStatus.OK, StageStatus.CACHED)


@dataclass
class FlowResult:
    """Artifacts plus per-stage records for one engine run."""

    name: str
    artifacts: Dict[str, Any] = field(default_factory=dict)
    records: Dict[str, StageRecord] = field(default_factory=dict)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records.values())

    def failed_stages(self) -> List[StageRecord]:
        return [
            r
            for r in self.records.values()
            if r.status in (StageStatus.FAILED, StageStatus.TIMEOUT)
        ]

    def cached_stages(self) -> List[str]:
        return [
            name
            for name, r in self.records.items()
            if r.status is StageStatus.CACHED
        ]

    def raise_first_failure(self, allow: Iterable[str] = ()) -> None:
        """Re-raise the first stage failure not listed in ``allow``.

        Skipped stages downstream of an allowed failure are tolerated
        too -- that is the graceful-degradation contract.
        """
        allowed = set(allow)
        for record in self.records.values():
            if record.status is StageStatus.SKIPPED:
                continue
            if record.ok or record.name in allowed:
                continue
            if record.error is not None:
                raise record.error
            raise FlowError(
                f"stage {record.name!r} {record.status.value}: "
                f"{record.error_text or 'no detail'}"
            )

    def summary(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for record in self.records.values():
            counts[record.status.value] = counts.get(record.status.value, 0) + 1
        return {
            "flow": self.name,
            "stages": len(self.records),
            "wall_time": round(self.wall_time, 6),
            **counts,
        }


def _module_metrics(outputs: Dict[str, Any]) -> Dict[str, Any]:
    """Cell/net counts for every netlist artifact a stage produced."""
    metrics: Dict[str, Any] = {}
    for key, value in outputs.items():
        if isinstance(value, Module):
            metrics[key] = {
                "cells": len(value.instances),
                "nets": len(value.nets),
            }
    return metrics


class SerialExecutor:
    """Deterministic in-thread execution in topological order.

    Timeouts cannot interrupt a running stage without threads; the
    serial executor enforces them *post hoc* -- a stage that overran
    its budget is recorded as timed out and its result discarded.
    """

    jobs = 1

    def run(self, engine: "FlowEngine", state: "_RunState") -> None:
        for stage in state.order:
            state.process_stage_inline(stage)


class ThreadExecutor:
    """``concurrent.futures`` thread pool over the ready frontier."""

    def __init__(self, jobs: int):
        self.jobs = max(2, int(jobs))

    def run(self, engine: "FlowEngine", state: "_RunState") -> None:
        pending: Dict[concurrent.futures.Future, Tuple[Stage, float, Optional[float]]] = {}
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.jobs
        ) as pool:
            while True:
                # launch everything ready; cache hits resolve inline and
                # may unlock more stages, hence the inner loop
                launched = True
                while launched:
                    launched = False
                    for stage in state.take_ready():
                        disposition = state.begin_stage(stage)
                        if disposition == "run":
                            start = time.perf_counter()
                            deadline = (
                                start + stage.timeout
                                if stage.timeout is not None
                                else None
                            )
                            future = pool.submit(
                                state.attempt_stage, stage
                            )
                            pending[future] = (stage, start, deadline)
                        launched = True
                if not pending:
                    break
                timeout = None
                now = time.perf_counter()
                deadlines = [d for (_s, _t, d) in pending.values() if d]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - now)
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                now = time.perf_counter()
                for future in done:
                    stage, start, _deadline = pending.pop(future)
                    state.finish_stage(stage, future, now - start)
                for future, (stage, start, deadline) in list(pending.items()):
                    if deadline is not None and now >= deadline:
                        # the worker thread cannot be killed; abandon it
                        pending.pop(future)
                        future.cancel()
                        state.record_timeout(stage, now - start)


class _RunState:
    """Mutable bookkeeping shared between engine and executor."""

    def __init__(
        self,
        engine: "FlowEngine",
        graph: FlowGraph,
        initial: Dict[str, Any],
        label: str,
    ):
        self.engine = engine
        self.graph = graph
        self.label = label
        # the effective tracer/profiler at run entry (a service job's
        # scoped per-job instances, or the process singletons); pool
        # threads re-activate the scope so parallel stages trace and
        # profile into the right job
        self.tracer = trace.get_tracer()
        self.profiler = prof.get_profiler()
        self.order = graph.topological_order()
        self.artifacts: ArtifactMap = ArtifactMap(initial)
        self.records: Dict[str, StageRecord] = {}
        self.fingerprints: Dict[str, str] = {}
        self.lock = threading.Lock()
        self._scheduled: Set[str] = set()
        self._pending_key: Dict[str, Optional[str]] = {}
        use_cache = engine.cache is not None and engine.cache.enabled
        for name, value in initial.items():
            self.fingerprints[name] = (
                stable_hash(value) if use_cache else f"raw:{name}"
            )

    # -- scheduling ----------------------------------------------------
    def take_ready(self) -> List[Stage]:
        """Stages whose dependencies are all settled, in topo order."""
        ready: List[Stage] = []
        with self.lock:
            for stage in self.order:
                if stage.name in self._scheduled:
                    continue
                deps = self.graph.dependencies(stage)
                if all(d in self.records for d in deps):
                    self._scheduled.add(stage.name)
                    ready.append(stage)
        return ready

    def _deps_failed(self, stage: Stage) -> Optional[str]:
        for dep in sorted(self.graph.dependencies(stage)):
            record = self.records.get(dep)
            if record is not None and not record.ok:
                return dep
        return None

    def stage_key(self, stage: Stage) -> str:
        hasher = hashlib.sha256()
        hasher.update(f"{self.graph.name}|{stage.name}|{stage.version}".encode())
        hasher.update(stable_hash(stage.params).encode())
        for artifact in sorted(stage.inputs):
            hasher.update(artifact.encode())
            hasher.update(self.fingerprints[artifact].encode())
        return hasher.hexdigest()

    # -- lifecycle -----------------------------------------------------
    def begin_stage(self, stage: Stage) -> str:
        """Resolve skip/cache-hit inline; return "run" to execute."""
        blocker = self._deps_failed(stage)
        if blocker is not None:
            self._settle(
                stage,
                StageRecord(
                    stage.name,
                    StageStatus.SKIPPED,
                    error_text=f"dependency {blocker!r} did not complete",
                ),
                outputs=None,
            )
            return "done"

        cache = self.engine.cache
        use_cache = cache is not None and cache.enabled and stage.cacheable
        key = self.stage_key(stage) if use_cache else None
        self._register_outputs(stage, key)
        if use_cache:
            with trace.span(
                "cache:" + stage.name, stage=stage.name, graph=self.graph.name
            ) as cache_span:
                cached = cache.get_lazy(key)
                cache_span.set("hit", cached is not None)
            if cached is not None:
                metrics.counter("engine.cache.hits").inc()
                # deferred sidecars stay unloaded unless consumed, so
                # module metrics only cover the inline artifacts here
                record = StageRecord(
                    stage.name,
                    StageStatus.CACHED,
                    key=key,
                    cache="hit",
                    attempts=0,
                    metrics=_module_metrics(cached),
                )
                self._settle(stage, record, outputs=cached)
                return "done"
        self._pending_key[stage.name] = key
        return "run"

    def _register_outputs(self, stage: Stage, key: Optional[str]) -> None:
        fingerprint_base = key or f"raw:{self.graph.name}:{stage.name}"
        with self.lock:
            for artifact in stage.outputs:
                self.fingerprints[artifact] = f"{fingerprint_base}#{artifact}"

    def attempt_stage(self, stage: Stage) -> Tuple[Dict[str, Any], int]:
        """Run the stage with its retry policy; returns (outputs, tries)."""
        attempts = 0
        retries = max(stage.retries, self.engine.default_retries)
        profiler = self.profiler
        with trace.scoped(self.tracer):
            while True:
                attempts += 1
                try:
                    with self.lock:
                        inputs = {k: self.artifacts[k] for k in stage.inputs}
                    # the stage span roots the trace subtree for everything
                    # the stage function does: in-stage instrumentation
                    # (grouping, DDG, STA, ...) nests under it, so engine
                    # timings and fine-grained spans share one trace tree
                    with trace.span(
                        "stage:" + stage.name,
                        stage=stage.name,
                        graph=self.graph.name,
                        attempt=attempts,
                    ):
                        if profiler.enabled:
                            # scoped so kernel counter hooks on this
                            # thread attribute to this stage's profile
                            with prof.scoped(profiler), profiler.stage(
                                stage.name,
                                self.graph.name,
                                attempt=attempts,
                            ):
                                outputs = stage.call(inputs)
                        else:
                            outputs = stage.call(inputs)
                    return outputs, attempts
                except Exception as exc:
                    metrics.counter("engine.stage.errors").inc()
                    if attempts > retries:
                        exc.__engine_attempts__ = attempts  # type: ignore[attr-defined]
                        raise

    def process_stage_inline(self, stage: Stage) -> None:
        """Serial path: begin, run on the calling thread, settle."""
        if self.begin_stage(stage) != "run":
            return
        start = time.perf_counter()
        try:
            outputs, attempts = self.attempt_stage(stage)
        except Exception as exc:
            self._record_failure(stage, exc, time.perf_counter() - start)
            return
        duration = time.perf_counter() - start
        if stage.timeout is not None and duration > stage.timeout:
            self.record_timeout(stage, duration)
            return
        self._record_success(stage, outputs, attempts, duration)

    def finish_stage(
        self,
        stage: Stage,
        future: "concurrent.futures.Future",
        duration: float,
    ) -> None:
        """Thread path: settle a completed future."""
        exc = future.exception()
        if exc is not None:
            self._record_failure(stage, exc, duration)
            return
        outputs, attempts = future.result()
        self._record_success(stage, outputs, attempts, duration)

    # -- terminal states -----------------------------------------------
    def _record_success(
        self,
        stage: Stage,
        outputs: Dict[str, Any],
        attempts: int,
        duration: float,
    ) -> None:
        key = self._pending_key.get(stage.name)
        cache = self.engine.cache
        use_cache = cache is not None and cache.enabled and stage.cacheable
        if use_cache and key is not None:
            metrics.counter("engine.cache.misses").inc()
            cache.put(key, outputs)
        record = StageRecord(
            stage.name,
            StageStatus.OK,
            duration=duration,
            attempts=attempts,
            key=key,
            cache="miss" if use_cache else "off",
            metrics=_module_metrics(outputs),
        )
        self._settle(stage, record, outputs=outputs)

    def _record_failure(
        self, stage: Stage, exc: BaseException, duration: float
    ) -> None:
        attempts = getattr(exc, "__engine_attempts__", 1)
        record = StageRecord(
            stage.name,
            StageStatus.FAILED,
            duration=duration,
            attempts=attempts,
            key=self._pending_key.get(stage.name),
            cache="off" if self.engine.cache is None else "miss",
            error=exc,
            error_text=f"{type(exc).__name__}: {exc}",
        )
        self._settle(stage, record, outputs=None)

    def record_timeout(self, stage: Stage, duration: float) -> None:
        record = StageRecord(
            stage.name,
            StageStatus.TIMEOUT,
            duration=duration,
            attempts=1,
            key=self._pending_key.get(stage.name),
            error_text=(
                f"stage exceeded its {stage.timeout:.3f}s timeout "
                f"after {duration:.3f}s"
            ),
        )
        self._settle(stage, record, outputs=None)

    def _settle(
        self,
        stage: Stage,
        record: StageRecord,
        outputs: Optional[Dict[str, Any]],
    ) -> None:
        with self.lock:
            if outputs:
                self.artifacts.update(outputs)
            self.records[stage.name] = record
        journal = self.engine.journal
        if journal is not None:
            journal.record(
                "stage_end",
                run=self.label,
                stage=stage.name,
                status=record.status.value,
                duration=round(record.duration, 6),
                attempts=record.attempts,
                cache=record.cache,
                key=record.key[:12] if record.key else None,
                error=record.error_text,
                metrics=record.metrics or None,
            )


class FlowEngine:
    """The orchestrator binding cache, journal and an executor."""

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        journal: Optional[RunJournal] = None,
        jobs: int = 1,
        default_retries: int = 0,
    ):
        self.cache = cache
        self.journal = journal
        self.jobs = max(1, int(jobs))
        self.default_retries = max(0, int(default_retries))
        self.results: List[FlowResult] = []

    def _executor(self):
        if self.jobs <= 1:
            return SerialExecutor()
        return ThreadExecutor(self.jobs)

    def run(
        self,
        graph: FlowGraph,
        initial: Optional[Dict[str, Any]] = None,
        label: Optional[str] = None,
    ) -> FlowResult:
        initial = initial or {}
        label = label or graph.name
        graph.validate(initial)
        if self.journal is not None:
            self.journal.record(
                "run_start",
                run=label,
                graph=graph.name,
                stages=len(graph),
                jobs=self.jobs,
                cache="on"
                if (self.cache is not None and self.cache.enabled)
                else "off",
            )
        start = time.perf_counter()
        state = _RunState(self, graph, initial, label)
        with trace.span(
            "run:" + label, graph=graph.name, jobs=self.jobs
        ) as run_span:
            self._executor().run(self, state)
        wall = time.perf_counter() - start
        run_span.set("stages", len(state.records))
        metrics.counter("engine.runs").inc()
        result = FlowResult(
            name=label,
            artifacts=state.artifacts,
            records=state.records,
            wall_time=wall,
        )
        if self.journal is not None:
            cached = len(result.cached_stages())
            failed = len(result.failed_stages())
            self.journal.record(
                "run_end",
                run=label,
                duration=round(wall, 6),
                stages=len(result.records),
                cached=cached,
                failed=failed,
                cache_stats=self.cache.stats.as_dict()
                if self.cache is not None
                else None,
            )
        self.results.append(result)
        return result

    def run_many(
        self,
        runs: Sequence[Tuple[FlowGraph, Dict[str, Any]]],
        labels: Optional[Sequence[str]] = None,
    ) -> List[FlowResult]:
        """Execute several independent graphs as one batch.

        With ``jobs > 1`` the batch fans out across a pool (each graph
        still schedules its own stages with the engine's settings);
        serial engines fall back to deterministic sequential order.
        """
        labels = list(labels) if labels is not None else [g.name for g, _ in runs]
        if self.jobs <= 1 or len(runs) <= 1:
            return [
                self.run(graph, initial, label)
                for (graph, initial), label in zip(runs, labels)
            ]
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.jobs, len(runs))
        ) as pool:
            futures = [
                pool.submit(self.run, graph, initial, label)
                for (graph, initial), label in zip(runs, labels)
            ]
            return [future.result() for future in futures]
