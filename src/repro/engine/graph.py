"""Stage graph: the flow as a DAG of artifact-producing stages.

A :class:`Stage` declares the artifact keys it consumes and produces
plus the parameters that determine its result; a :class:`FlowGraph`
collects stages and derives the execution DAG from those declarations
(producer-of -> consumer-of edges, plus explicit ``after`` ordering
edges for stages that mutate a shared netlist without exchanging an
artifact).  The graph itself never executes anything -- that is the
:class:`repro.engine.executor.FlowEngine`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple


class FlowGraphError(ValueError):
    """Raised on malformed graphs: cycles, duplicate producers, ..."""


@dataclass
class Stage:
    """One unit of flow work.

    ``func`` receives a dict of the declared ``inputs`` and returns a
    dict of the declared ``outputs`` (or a bare value when exactly one
    output is declared).  ``params`` are the option values the stage
    result depends on -- they are hashed into the stage's cache key, so
    two stages differing only in params never share a cache entry.
    ``after`` adds ordering-only edges (no artifact exchanged), needed
    when a stage mutates a module another stage reads.
    """

    name: str
    func: Callable[[Dict[str, Any]], Any]
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    params: Dict[str, Any] = field(default_factory=dict)
    after: Tuple[str, ...] = ()
    cacheable: bool = True
    timeout: Optional[float] = None
    retries: int = 0
    version: str = "1"

    def call(self, artifacts: Dict[str, Any]) -> Dict[str, Any]:
        """Run the stage function and normalise its return value."""
        inputs = {key: artifacts[key] for key in self.inputs}
        result = self.func(inputs)
        if not self.outputs:
            return {}
        if isinstance(result, dict) and set(result) == set(self.outputs):
            return result
        if len(self.outputs) == 1:
            return {self.outputs[0]: result}
        raise FlowGraphError(
            f"stage {self.name!r} returned {type(result).__name__}, "
            f"expected a dict with keys {sorted(self.outputs)}"
        )


class FlowGraph:
    """An ordered collection of stages forming a DAG."""

    def __init__(self, name: str = "flow"):
        self.name = name
        self.stages: Dict[str, Stage] = {}
        self._producer: Dict[str, str] = {}  # artifact -> stage name

    # ------------------------------------------------------------------
    def add(self, stage: Stage) -> Stage:
        if stage.name in self.stages:
            raise FlowGraphError(f"duplicate stage {stage.name!r}")
        for artifact in stage.outputs:
            owner = self._producer.get(artifact)
            if owner is not None:
                raise FlowGraphError(
                    f"artifact {artifact!r} produced by both {owner!r} "
                    f"and {stage.name!r}"
                )
        self.stages[stage.name] = stage
        for artifact in stage.outputs:
            self._producer[artifact] = stage.name
        return stage

    def add_stages(self, stages) -> None:
        for stage in stages:
            self.add(stage)

    # ------------------------------------------------------------------
    def producer_of(self, artifact: str) -> Optional[str]:
        return self._producer.get(artifact)

    def initial_inputs(self) -> Set[str]:
        """Artifact keys that must be supplied by the caller."""
        needed: Set[str] = set()
        for stage in self.stages.values():
            for artifact in stage.inputs:
                if artifact not in self._producer:
                    needed.add(artifact)
        return needed

    def dependencies(self, stage: Stage) -> Set[str]:
        """Names of the stages that must complete before ``stage``."""
        deps: Set[str] = set()
        for artifact in stage.inputs:
            owner = self._producer.get(artifact)
            if owner is not None:
                deps.add(owner)
        for name in stage.after:
            if name not in self.stages:
                raise FlowGraphError(
                    f"stage {stage.name!r} ordered after unknown "
                    f"stage {name!r}"
                )
            deps.add(name)
        return deps

    def topological_order(self) -> List[Stage]:
        """Kahn's algorithm, insertion order as the deterministic
        tie-break -- the serial executor's execution order."""
        deps = {s.name: self.dependencies(s) for s in self.stages.values()}
        done: Set[str] = set()
        order: List[Stage] = []
        remaining = list(self.stages.values())
        while remaining:
            progress = False
            still: List[Stage] = []
            for stage in remaining:
                if deps[stage.name] <= done:
                    order.append(stage)
                    done.add(stage.name)
                    progress = True
                else:
                    still.append(stage)
            if not progress:
                cyclic = sorted(s.name for s in still)
                raise FlowGraphError(f"cycle among stages {cyclic}")
            remaining = still
        return order

    def validate(self, initial: Dict[str, Any]) -> None:
        """Check the caller supplied every non-produced input."""
        missing = self.initial_inputs() - set(initial)
        if missing:
            raise FlowGraphError(
                f"graph {self.name!r} missing initial artifacts: "
                f"{sorted(missing)}"
            )
        self.topological_order()  # raises on cycles

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"FlowGraph({self.name!r}, {len(self.stages)} stages)"
