"""Content-addressed artifact cache for the flow engine.

Two pieces live here:

- :func:`stable_hash` -- a deterministic fingerprint of the objects the
  flow passes between stages (``Module``, ``Library``, option
  dataclasses, plain containers).  The hash is computed from canonical
  *content* (sorted dict items, dataclass fields, netlist connectivity)
  so it is stable across processes and Python hash randomisation --
  which is what lets a disk cache survive between runs.
- :class:`ArtifactCache` -- a pickle-backed store keyed by stage keys
  (see :mod:`repro.engine.executor`), with hit/miss accounting and an
  enabled/disabled switch (the ``--no-cache`` escape hatch).

Stage keys chain Merkle-style: a derived artifact's fingerprint is the
key of the stage that produced it, so only *root* inputs (the imported
netlist, the library, the option values) are ever content-hashed.
Changing one gate in the input design, one option field, or the library
variant therefore changes exactly the keys of the stages downstream of
that change -- the basis of the invalidation tests.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import pickle
import tempfile
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

try:  # POSIX advisory file locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from ..netlist.core import Module

#: bump to invalidate every cache entry after an incompatible change to
#: the canonical serialisation below
HASH_SCHEMA = "1"


class HashError(TypeError):
    """Raised when an object cannot be canonically fingerprinted."""


def _feed(hasher, obj: Any, depth: int = 0) -> None:
    """Feed the canonical byte form of ``obj`` into ``hasher``."""
    if depth > 50:
        raise HashError("stable_hash recursion too deep")
    if obj is None:
        hasher.update(b"N")
    elif obj is True or obj is False:
        hasher.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        hasher.update(b"I" + str(obj).encode())
    elif isinstance(obj, float):
        hasher.update(b"F" + repr(obj).encode())
    elif isinstance(obj, str):
        hasher.update(b"S" + obj.encode())
    elif isinstance(obj, bytes):
        hasher.update(b"Y" + obj)
    elif isinstance(obj, Enum):
        hasher.update(b"E" + type(obj).__name__.encode())
        _feed(hasher, obj.value, depth + 1)
    elif isinstance(obj, (list, tuple)):
        hasher.update(b"L" + str(len(obj)).encode())
        for item in obj:
            _feed(hasher, item, depth + 1)
    elif isinstance(obj, (set, frozenset)):
        hasher.update(b"T" + str(len(obj)).encode())
        for digest in sorted(stable_hash(item) for item in obj):
            hasher.update(digest.encode())
    elif isinstance(obj, dict):
        hasher.update(b"D" + str(len(obj)).encode())
        try:
            items = sorted(obj.items())
        except TypeError:
            items = sorted(obj.items(), key=lambda kv: stable_hash(kv[0]))
        for key, value in items:
            _feed(hasher, key, depth + 1)
            _feed(hasher, value, depth + 1)
    elif isinstance(obj, Module):
        _feed_module(hasher, obj)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        hasher.update(b"C" + type(obj).__qualname__.encode())
        for fld in dataclasses.fields(obj):
            hasher.update(fld.name.encode())
            _feed(hasher, getattr(obj, fld.name), depth + 1)
    else:
        _feed_object(hasher, obj, depth)


def _feed_module(hasher, module: Module) -> None:
    """Canonical netlist content: ports, connectivity, attributes."""
    hasher.update(b"M" + module.name.encode())
    for name in sorted(module.ports):
        port = module.ports[name]
        hasher.update(
            f"P{name}|{port.direction.value}|{port.msb}|{port.lsb};".encode()
        )
    for name in sorted(module.instances):
        inst = module.instances[name]
        hasher.update(f"i{name}|{inst.cell}".encode())
        for pin in sorted(inst.pins):
            hasher.update(f"|{pin}={inst.pins[pin]}".encode())
        if inst.attributes:
            _feed(hasher, inst.attributes, 1)
    for name in sorted(module.nets):
        net = module.nets[name]
        if net.is_constant:
            hasher.update(f"k{name}={net.constant_value}".encode())
    _feed(hasher, sorted(module.assigns), 1)
    _feed(hasher, module.attributes, 1)


def _feed_object(hasher, obj: Any, depth: int) -> None:
    """Generic fallback: public attributes of a plain object.

    Covers ``Library``, ``Gatefile``, ``SdcFile`` constraints and the
    small bookkeeping classes; private/cached attributes (``_fn_cache``
    and friends) are deliberately excluded from the fingerprint.
    """
    try:
        state = vars(obj)
    except TypeError:
        slots = getattr(type(obj), "__slots__", None)
        if slots is None:
            raise HashError(
                f"cannot fingerprint object of type {type(obj).__name__}"
            )
        state = {s: getattr(obj, s) for s in slots if hasattr(obj, s)}
    hasher.update(b"O" + type(obj).__qualname__.encode())
    for key in sorted(state):
        if key.startswith("_"):
            continue
        hasher.update(key.encode())
        _feed(hasher, state[key], depth + 1)


def stable_hash(obj: Any) -> str:
    """Deterministic content fingerprint of ``obj`` (sha256 hex)."""
    hasher = hashlib.sha256(HASH_SCHEMA.encode())
    _feed(hasher, obj)
    return hasher.hexdigest()


_LIB_FP_ATTR = "_engine_fingerprint"


def library_fingerprint(library) -> str:
    """Content fingerprint of a library, memoised on the object.

    Libraries are immutable for the duration of a flow (the controller
    cell is added before any stage runs), so the fingerprint is
    computed once per library object and reused by every stage key and
    by the STA ladder memo.
    """
    cached = library.__dict__.get(_LIB_FP_ATTR)
    if cached is None:
        cached = stable_hash(
            {
                "name": library.name,
                "wire_cap": library.default_wire_cap,
                "corners": library.corners,
                "cells": library.cells,
            }
        )
        library.__dict__[_LIB_FP_ATTR] = cached
    return cached


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LazyArtifact:
    """A sidecar artifact deferred until first access.

    Cache hits for stages with large outputs (netlist snapshots) hand
    these out instead of eagerly unpickling; the executor's artifact
    map resolves them on first read, so a fully-cached replay only pays
    the deserialisation cost of the artifacts something actually
    consumes.
    """

    __slots__ = ("path", "_value", "_loaded")

    def __init__(self, path: str):
        self.path = path
        self._value = None
        self._loaded = False

    def load(self) -> Any:
        if not self._loaded:
            with open(self.path, "rb") as handle:
                self._value = pickle.load(handle)
            self._loaded = True
        return self._value

    def __repr__(self) -> str:
        state = "loaded" if self._loaded else "deferred"
        return f"LazyArtifact({os.path.basename(self.path)!r}, {state})"


#: artifacts pickling larger than this live in their own sidecar file
INLINE_LIMIT = 32 * 1024


class ArtifactCache:
    """Disk cache mapping stage keys to pickled artifact dicts.

    An entry is a manifest ``<directory>/<key[:2]>/<key>.pkl`` holding
    every small artifact inline plus references to per-artifact sidecar
    files (``<key>.<n>.pkl``) for large ones, so lazy readers can skip
    deserialising netlist snapshots nobody consumes.  Writes are atomic
    (tempfile + rename, sidecars before manifest) so concurrent runs
    sharing one cache directory never observe a torn entry; on POSIX an
    advisory ``.lock`` file additionally serialises ``put``/``clear``
    across *processes*, so daemon workers can share ``.repro_cache/``.

    ``max_bytes`` caps the on-disk size: after every store, entries are
    evicted least-recently-used first (manifest mtime; hits touch the
    manifest) until the cache fits.  The entry just written survives
    even when it alone exceeds the cap.
    """

    def __init__(
        self,
        directory: str,
        enabled: bool = True,
        max_bytes: Optional[int] = None,
    ):
        self.directory = os.path.abspath(directory)
        self.enabled = enabled
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    @contextlib.contextmanager
    def _advisory_lock(self):
        """Inter-process write guard (no-op where flock is missing)."""
        if fcntl is None:
            yield
            return
        os.makedirs(self.directory, exist_ok=True)
        lock_path = os.path.join(self.directory, ".lock")
        handle = open(lock_path, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    def _path(self, key: str, part: Optional[int] = None) -> str:
        name = key if part is None else f"{key}.{part}"
        return os.path.join(self.directory, key[:2], name + ".pkl")

    def _load_manifest(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key), "rb") as handle:
                manifest = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None
        if not isinstance(manifest, dict) or manifest.get("format") != 2:
            return None
        for name in manifest["sidecar"].values():
            if not os.path.isfile(
                os.path.join(self.directory, key[:2], name)
            ):
                return None
        return manifest

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load the artifacts stored under ``key`` (``None`` on miss)."""
        lazy = self.get_lazy(key)
        if lazy is None:
            return None
        return {
            name: value.load() if isinstance(value, LazyArtifact) else value
            for name, value in lazy.items()
        }

    def get_lazy(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get`, but sidecar artifacts come back as
        :class:`LazyArtifact` handles instead of loaded objects."""
        if not self.enabled:
            return None
        manifest = self._load_manifest(key)
        if manifest is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            # touch the manifest so mtime-ordered eviction is LRU, not
            # merely FIFO
            os.utime(self._path(key))
        except OSError:
            pass
        outputs: Dict[str, Any] = {}
        try:
            for name, blob in manifest["inline"].items():
                outputs[name] = pickle.loads(blob)
        except (pickle.PickleError, EOFError, AttributeError):
            self.stats.hits -= 1
            self.stats.misses += 1
            return None
        for name, filename in manifest["sidecar"].items():
            outputs[name] = LazyArtifact(
                os.path.join(self.directory, key[:2], filename)
            )
        return outputs

    def _write_atomic(self, path: str, payload: bytes) -> bool:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def put(self, key: str, value: Dict[str, Any]) -> bool:
        """Store ``value`` under ``key``; False if unpicklable/disabled."""
        if not self.enabled:
            return False
        with self._advisory_lock():
            stored = self._put_locked(key, value)
            if stored and self.max_bytes is not None:
                self._evict(protect=key)
        return stored

    def _put_locked(self, key: str, value: Dict[str, Any]) -> bool:
        os.makedirs(os.path.dirname(self._path(key)), exist_ok=True)
        inline: Dict[str, bytes] = {}
        sidecar: Dict[str, str] = {}
        part = 0
        for name, artifact in value.items():
            try:
                blob = pickle.dumps(
                    artifact, protocol=pickle.HIGHEST_PROTOCOL
                )
            except (pickle.PickleError, TypeError):
                return False
            if len(blob) <= INLINE_LIMIT:
                inline[name] = blob
            else:
                if not self._write_atomic(self._path(key, part), blob):
                    return False
                sidecar[name] = os.path.basename(self._path(key, part))
                part += 1
        manifest = {"format": 2, "inline": inline, "sidecar": sidecar}
        if not self._write_atomic(
            self._path(key),
            pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL),
        ):
            return False
        self.stats.stores += 1
        return True

    # -- patch provenance (incremental re-flow) ------------------------
    def record_patch(self, key: str, provenance: Dict[str, Any]) -> bool:
        """Store where an incrementally-derived result came from.

        ``key`` identifies the patched (child) result;  ``provenance``
        names the parent key, the edits applied and the reuse decisions
        the incremental flow made -- enough for a later session to
        answer "which cached run is this result a patch of, and what
        was recomputed".  Stored as a regular cache entry in a
        ``patch:`` namespace so eviction, locking and atomicity are
        shared with artifact storage.
        """
        return self.put(stable_hash(("patch", key)), {"patch": provenance})

    def get_patch(self, key: str) -> Optional[Dict[str, Any]]:
        """The provenance stored by :meth:`record_patch` (None on miss)."""
        entry = self.get(stable_hash(("patch", key)))
        if entry is None:
            return None
        return entry.get("patch")

    def _entries(self) -> List[Tuple[float, str, List[str], int]]:
        """Cache entries as ``(manifest mtime, key, files, bytes)``.

        Sidecars (``<key>.<n>.pkl``) are billed to their manifest, so an
        entry is always evicted as a unit.
        """
        groups: Dict[str, Dict[str, Any]] = {}
        if not os.path.isdir(self.directory):
            return []
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(root, name)
                stem = name[: -len(".pkl")]
                key, dot, part = stem.rpartition(".")
                if not dot or not part.isdigit():
                    key = stem
                entry = groups.setdefault(
                    key, {"files": [], "bytes": 0, "mtime": None}
                )
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entry["files"].append(path)
                entry["bytes"] += stat.st_size
                if stem == key:  # the manifest itself
                    entry["mtime"] = stat.st_mtime
        return sorted(
            (e["mtime"] or 0.0, key, e["files"], e["bytes"])
            for key, e in groups.items()
        )

    def size_bytes(self) -> int:
        """Total bytes currently stored (manifests plus sidecars)."""
        return sum(size for _mtime, _key, _files, size in self._entries())

    def _evict(self, protect: Optional[str] = None) -> int:
        """Drop least-recently-used entries until under ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        entries = self._entries()
        total = sum(size for _mtime, _key, _files, size in entries)
        evicted = 0
        for _mtime, key, files, size in entries:
            if total <= self.max_bytes:
                break
            if key == protect:
                continue
            for path in files:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            total -= size
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        with self._advisory_lock():
            for root, _dirs, files in os.walk(self.directory):
                for name in files:
                    if name.endswith(".pkl"):
                        try:
                            os.unlink(os.path.join(root, name))
                            removed += 1
                        except OSError:
                            pass
        return removed

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.directory):
            return 0
        for _root, _dirs, files in os.walk(self.directory):
            count += sum(1 for name in files if name.endswith(".pkl"))
        return count

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({self.directory!r}, enabled={self.enabled}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
