"""Asynchronous performance analysis (effective period, cycle ratios)."""

from .cycle import (
    PeriodReport,
    control_overhead_delay,
    effective_period_model,
    latch_overhead_delay,
    max_cycle_ratio,
    measure_effective_period,
)

__all__ = [
    "PeriodReport",
    "control_overhead_delay",
    "effective_period_model",
    "latch_overhead_delay",
    "max_cycle_ratio",
    "measure_effective_period",
]
