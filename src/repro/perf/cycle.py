"""Asynchronous performance analysis: effective period of the handshake.

Desynchronized circuits have no external period; throughput emerges
from the controller network (section 2.5).  Two complementary views:

- :func:`effective_period_model` -- the paper's analytic view: each
  region's stage latency is its delay-element rise delay plus the
  controller overhead (three complex gates, section 5.2.2) plus the
  latch propagation; the effective period is the worst stage over the
  data-dependency graph's critical cycle (maximum cycle ratio, one
  data token per region).
- :func:`measure_effective_period` -- a direct measurement from the
  event-driven simulation: the asymptotic interval between successive
  captures of a probe latch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..desync.controllers import CONTROL_OVERHEAD_GATES, C_RESET_CELL
from ..desync.ddg import ENV
from ..liberty.model import Library


@dataclass
class PeriodReport:
    """Effective-period analysis result."""

    effective_period: float
    per_region: Dict[str, float] = field(default_factory=dict)
    critical_region: Optional[str] = None
    critical_cycle: List[str] = field(default_factory=list)
    control_overhead: float = 0.0


def control_overhead_delay(library: Library, corner: str = "worst") -> float:
    """Delay of the three controller complex gates at a corner."""
    derate = library.corner(corner).derate
    cell = library.cells.get(C_RESET_CELL)
    if cell is None:
        from ..desync.controllers import ensure_controller_cells

        ensure_controller_cells(library)
        cell = library.cell(C_RESET_CELL)
    arc = cell.delay_arcs()[0]
    per_gate = arc.worst_delay(0.01)
    return CONTROL_OVERHEAD_GATES * per_gate * derate


def latch_overhead_delay(library: Library, corner: str = "worst") -> float:
    """Latch G->Q propagation included in each stage latency."""
    derate = library.corner(corner).derate
    for cell in library.cells.values():
        if cell.kind.value == "latch" and cell.name.startswith("LDH"):
            arcs = [a for a in cell.delay_arcs() if a.related_pin == "G"]
            if arcs:
                return arcs[0].worst_delay(0.01) * derate
    return 0.0


def effective_period_model(
    desync_result,
    library: Library,
    corner: str = "worst",
    delay_overrides: Optional[Dict[str, float]] = None,
) -> PeriodReport:
    """Analytic effective period of a :class:`DesyncResult`.

    ``delay_overrides`` substitutes per-region delay-element delays
    (used by the delay-selection sweep of Figure 5.3).
    """
    derate = library.corner(corner).derate
    # both 4-phase excursions traverse the controller gates; the latch
    # and the C-join/delem return add roughly one more controller's worth
    overhead = 2.5 * control_overhead_delay(library, corner) + (
        latch_overhead_delay(library, corner)
    )
    ladder = desync_result.ladder
    # the ladder was characterised at its own corner; rescale
    ladder_derate = library.corner(ladder.corner).derate
    overrides = delay_overrides or {}

    ack_delays = getattr(desync_result.network, "ack_delays", {})
    per_region: Dict[str, float] = {}
    for region, element in desync_result.network.delay_elements.items():
        if region in overrides:
            delem = overrides[region] * derate
        else:
            delem = ladder.delay_of(element.length) / ladder_derate * derate
        ack = ack_delays.get(region)
        ack_delay = (
            ladder.delay_of(ack.length) / ladder_derate * derate
            if ack is not None
            else 0.0
        )
        # one full handshake cycle: working phase (delay element) plus
        # the return-to-zero phase through the controllers and the
        # acknowledge-matching delay
        per_region[region] = delem + ack_delay + overhead

    report = PeriodReport(
        effective_period=0.0,
        per_region=per_region,
        control_overhead=overhead,
    )
    if not per_region:
        return report

    # maximum cycle ratio over the DDG: each region holds one data token,
    # so a cycle's period is its worst member stage (slack passing lets
    # faster members wait); the global period is the worst stage overall
    worst_region = max(per_region, key=per_region.get)
    report.effective_period = per_region[worst_region]
    report.critical_region = worst_region

    cycle = _critical_cycle(desync_result.ddg, per_region)
    report.critical_cycle = cycle
    return report


def _critical_cycle(ddg: "nx.DiGraph", per_region: Dict[str, float]) -> List[str]:
    """The DDG cycle containing the slowest region (if any)."""
    graph = ddg.subgraph([n for n in ddg if n != ENV and n in per_region])
    worst = max(per_region, key=per_region.get) if per_region else None
    try:
        for cycle in nx.simple_cycles(graph):
            if worst in cycle:
                return cycle
    except nx.NetworkXNoCycle:
        pass
    return [worst] if worst else []


def max_cycle_ratio(
    graph: "nx.DiGraph",
    weight: str = "weight",
    tokens: str = "tokens",
) -> float:
    """Maximum cycle ratio sum(weight)/sum(tokens) over directed cycles.

    General asynchronous performance bound [Hulgaard et al.]; used by
    the ablation benchmarks.  Exact enumeration -- DDGs are small.
    """
    best = 0.0
    for cycle in nx.simple_cycles(graph):
        total_weight = 0.0
        total_tokens = 0.0
        nodes = list(cycle)
        for index, node in enumerate(nodes):
            succ = nodes[(index + 1) % len(nodes)]
            data = graph.get_edge_data(node, succ) or {}
            total_weight += data.get(weight, 0.0)
            total_tokens += data.get(tokens, 1.0)
        if total_tokens > 0:
            best = max(best, total_weight / total_tokens)
    return best


def measure_effective_period(
    simulator,
    probe_instance: str,
    warmup_captures: int = 3,
) -> Optional[float]:
    """Measured steady-state interval between captures of one latch."""
    times = [
        event.time
        for event in simulator.captures
        if event.instance == probe_instance
    ]
    if len(times) < warmup_captures + 2:
        return None
    steady = times[warmup_captures:]
    return (steady[-1] - steady[0]) / (len(steady) - 1)
