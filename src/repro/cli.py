"""``drdesync`` command-line interface (section 3.2: "the tool has a
command line interface and the desynchronization operation consists of
a sequence of steps").

Usage::

    drdesync design.v -o out.v --sdc out.sdc [--blif out.blif]
             [--library hs|ll | --liberty file.lib]
             [--group auto|single] [--false-path NET ...]
             [--margin 0.10] [--mux-taps 8] [--gatefile out.gatefile]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .desync.tool import DesyncOptions, Drdesync
from .liberty.core9 import core9_hs, core9_ll
from .liberty.parser import read_liberty
from .netlist.verilog import read_verilog


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drdesync",
        description="Desynchronize a gate-level synchronous Verilog netlist",
    )
    parser.add_argument("input", help="gate-level Verilog netlist")
    parser.add_argument("-o", "--output", help="desynchronized Verilog output")
    parser.add_argument("--sdc", help="write physical timing constraints")
    parser.add_argument("--blif", help="also export BLIF (SIS)")
    parser.add_argument(
        "--library",
        choices=["hs", "ll"],
        default="hs",
        help="built-in CORE9-class library variant (default hs)",
    )
    parser.add_argument("--liberty", help="use an external .lib file instead")
    parser.add_argument(
        "--group",
        choices=["auto", "single"],
        default="auto",
        help="region creation mode (default: automatic grouping)",
    )
    parser.add_argument(
        "--false-path",
        action="append",
        default=[],
        metavar="NET",
        help="net to ignore during grouping (repeatable)",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=0.10,
        help="delay element margin over the region critical path",
    )
    parser.add_argument(
        "--mux-taps",
        type=int,
        default=0,
        help="multiplexed delay-element taps (0 = fixed length)",
    )
    parser.add_argument("--top", help="top module name (default: first)")
    parser.add_argument(
        "--gatefile", help="also write the generated gatefile"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_argument_parser().parse_args(argv)

    if args.liberty:
        library = read_liberty(args.liberty)
    else:
        library = core9_hs() if args.library == "hs" else core9_ll()

    netlist = read_verilog(args.input)
    if args.top:
        netlist.set_top(args.top)
    module = netlist.top

    tool = Drdesync(library)
    options = DesyncOptions(
        grouping=args.group,
        false_path_nets=tuple(args.false_path),
        delay_margin=args.margin,
        delay_mux_taps=args.mux_taps,
    )
    result = tool.run(module, options)

    if args.gatefile:
        with open(args.gatefile, "w") as handle:
            handle.write(tool.gatefile.to_text())
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.export_verilog())
    if args.blif:
        with open(args.blif, "w") as handle:
            handle.write(result.export_blif())
    if args.sdc:
        with open(args.sdc, "w") as handle:
            handle.write(result.export_sdc())

    if not args.quiet:
        summary = result.summary()
        print(f"desynchronized {module.name!r}:")
        for key, value in summary.items():
            print(f"  {key:22s} {value}")
        for region, delay in sorted(result.network.region_delays.items()):
            element = result.network.delay_elements.get(region)
            if element is not None:
                print(
                    f"  region {region:8s} cloud delay {delay:7.3f} ns, "
                    f"delay element {element.length} levels"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
