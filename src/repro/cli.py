"""``drdesync`` command-line interface (section 3.2: "the tool has a
command line interface and the desynchronization operation consists of
a sequence of steps").

Usage::

    drdesync serve  [--port 8642] [--workers N] ...   # job daemon
    drdesync submit DESIGN [--wait] [--url URL] ...   # client verbs
    drdesync status [JOB_ID] [--url URL]
    drdesync bench  record|compare|report ...         # benchmark history
    drdesync design.v -o out.v --sdc out.sdc [--blif out.blif]
             [--library hs|ll | --liberty file.lib]
             [--group auto|single] [--false-path NET ...]
             [--margin 0.10] [--mux-taps 8] [--gatefile out.gatefile]
             [--jobs 4] [--journal run.jsonl]
             [--cache-dir DIR | --no-cache]
             [--trace trace.json] [--metrics metrics.json]
             [--profile [--profile-out DIR]]
             [--vcd waves.vcd] [--vcd-net GLOB ...]
             [--handshake-report report.json] [--observe-items N]
             [-v | --log-level LEVEL | --quiet]

Exit codes: 0 on success, 1 on a usage error (bad arguments), 2 on a
flow error (unreadable input, grouping failure, export failure, ...).

The conversion runs on the :mod:`repro.engine` flow engine: stage
results are cached content-addressed under ``--cache-dir`` (default
``.repro_cache``; disable with ``--no-cache``), ``--jobs N`` runs
independent stages on a thread pool, and ``--journal`` records the
per-stage JSONL run journal.

Observability (:mod:`repro.obs`): ``--trace FILE`` records hierarchical
spans for every engine stage and pipeline phase and writes them as
Chrome trace-event JSON (load in Perfetto / chrome://tracing);
``--metrics FILE`` snapshots the counters, gauges, and histograms the
flow maintains (region sizes, DDG fan-in, delay-ladder selection
error, cache hits, ...); ``--profile`` captures deterministic
per-stage profiles (cProfile hot-function tables, tracemalloc peaks,
sim-kernel counters) and ``--profile-out DIR`` writes them as JSON,
speedscope and collapsed-stack files.  All are off by default and
cost nothing when off.

Simulation-level observability: ``--vcd FILE`` simulates the converted
design under its handshake environment and writes a VCD waveform
(default signal set: the controller handshake nets; widen with
``--vcd-net 'dout*'`` globs), and ``--handshake-report FILE`` writes
the token-flow JSON report -- per-region cycle-time statistics,
occupancy, stall attribution, the deadlock-watchdog verdict, and the
cross-validation against the analytic effective-period model.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from . import __version__
from .desync.tool import DesyncOptions, Drdesync
from .engine.cache import ArtifactCache
from .engine.executor import FlowEngine
from .engine.journal import RunJournal
from .liberty.core9 import core9_hs, core9_ll
from .liberty.parser import read_liberty
from .netlist.verilog import read_verilog
from .obs import (
    MetricsRegistry,
    Profiler,
    Tracer,
    configure_logging,
    metrics,
    prof,
    profile_report,
    summary_report,
    trace,
    write_chrome_trace,
    write_metrics,
    write_profile,
)

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_FLOW = 2

#: first-argument verbs routed to :mod:`repro.service.cli`
SERVICE_COMMANDS = (
    "serve", "submit", "status", "trace", "profile", "cancel", "shutdown"
)

log = logging.getLogger("repro.cli")


class UsageError(Exception):
    """Bad command-line arguments (exit code 1)."""


class _ArgumentParser(argparse.ArgumentParser):
    """argparse that raises instead of calling ``sys.exit(2)``."""

    def error(self, message: str):
        raise UsageError(message)


def build_argument_parser() -> argparse.ArgumentParser:
    parser = _ArgumentParser(
        prog="drdesync",
        description="Desynchronize a gate-level synchronous Verilog netlist",
    )
    parser.add_argument(
        "--version", action="version", version=f"drdesync {__version__}"
    )
    parser.add_argument("input", help="gate-level Verilog netlist")
    parser.add_argument("-o", "--output", help="desynchronized Verilog output")
    parser.add_argument("--sdc", help="write physical timing constraints")
    parser.add_argument("--blif", help="also export BLIF (SIS)")
    parser.add_argument(
        "--library",
        choices=["hs", "ll"],
        default="hs",
        help="built-in CORE9-class library variant (default hs)",
    )
    parser.add_argument("--liberty", help="use an external .lib file instead")
    parser.add_argument(
        "--group",
        choices=["auto", "single"],
        default="auto",
        help="region creation mode (default: automatic grouping)",
    )
    parser.add_argument(
        "--false-path",
        action="append",
        default=[],
        metavar="NET",
        help="net to ignore during grouping (repeatable)",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=0.10,
        help="delay element margin over the region critical path",
    )
    parser.add_argument(
        "--mux-taps",
        type=int,
        default=0,
        help="multiplexed delay-element taps (0 = fixed length)",
    )
    parser.add_argument("--top", help="top module name (default: first)")
    parser.add_argument(
        "--eco",
        metavar="EDITS_JSON",
        help="after the flow, apply the netlist edits from this JSON "
        "file through the incremental re-flow (cell swaps, wire "
        "re-annotations, constants, small add/remove) and export the "
        "patched result -- bit-identical to re-running from scratch",
    )
    parser.add_argument(
        "--eco-verify",
        choices=["none", "affected", "full"],
        default="none",
        help="re-simulate the handshake layer after --eco edits: only "
        "the affected regions, or the whole design (default none)",
    )
    parser.add_argument(
        "--gatefile", help="also write the generated gatefile"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent flow stages on N threads (default 1)",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        help="write the structured JSONL run journal to FILE",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        metavar="DIR",
        help="stage artifact cache directory (default .repro_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the stage artifact cache",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON profile of the flow",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a JSON snapshot of flow metrics",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="capture deterministic per-stage profiles (cProfile + "
        "tracemalloc + sim-kernel counters)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="DIR",
        help="with --profile: write profile.json, speedscope and "
        "collapsed-stack files into DIR",
    )
    parser.add_argument(
        "--vcd",
        metavar="FILE",
        help="simulate the result and write a VCD waveform of the "
        "handshake network (add --vcd-net globs for datapath nets)",
    )
    parser.add_argument(
        "--vcd-net",
        action="append",
        default=[],
        metavar="GLOB",
        help="net-name glob to include in the VCD (repeatable; "
        "default: the controller handshake nets)",
    )
    parser.add_argument(
        "--handshake-report",
        metavar="FILE",
        help="simulate the result and write the token-flow JSON report "
        "(per-region cycle times, occupancy, stall attribution, "
        "watchdog verdict, model cross-validation)",
    )
    parser.add_argument(
        "--observe-items",
        type=int,
        default=16,
        metavar="N",
        help="handshake items to simulate for --vcd/--handshake-report "
        "(default 16)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug-level logging (shorthand for --log-level debug)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        help="logging threshold (overrides -v and --quiet)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary (warnings and errors only)",
    )
    return parser


def resolve_log_level(args: argparse.Namespace) -> str:
    """Explicit ``--log-level`` wins, then ``-v``, then ``--quiet``."""
    if args.log_level:
        return args.log_level
    if args.verbose:
        return "debug"
    if args.quiet:
        return "warning"
    return "info"


def _print_summary(result, module, engine, cache) -> None:
    summary = result.summary()
    log.info("desynchronized %r:", module.name)
    for key, value in summary.items():
        log.info("  %-22s %s", key, value)
    for region, delay in sorted(result.network.region_delays.items()):
        element = result.network.delay_elements.get(region)
        if element is not None:
            log.info(
                "  region %-8s cloud delay %7.3f ns, "
                "delay element %d levels",
                region,
                delay,
                element.length,
            )
    if not engine.results:
        # incremental (--eco) runs bypass the stage engine
        return
    run = engine.results[-1]
    cached = len(run.cached_stages())
    log.info(
        "  engine: %d stages, %d cached, %.3fs wall, jobs=%d, cache=%s",
        len(run.records),
        cached,
        run.wall_time,
        engine.jobs,
        "off" if cache is None else "on",
    )


def _observe_result(args: argparse.Namespace, result, library) -> None:
    """Run the desynchronized design under the handshake probe
    (``--vcd`` / ``--handshake-report``)."""
    import json

    from .flow.observe import observe_handshake

    observation = observe_handshake(
        result,
        library,
        items=args.observe_items,
        vcd_path=args.vcd,
        vcd_include=args.vcd_net or None,
    )
    report = observation.report
    if args.vcd:
        log.info(
            "VCD written to %s (%d nets, %.1f ns)",
            args.vcd,
            len(observation.vcd_nets),
            report["window_ns"],
        )
    if args.handshake_report:
        with open(args.handshake_report, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        measured = report.get("effective_period_measured_ns")
        log.info(
            "handshake report written to %s (%d regions, "
            "effective period %s ns)",
            args.handshake_report,
            len(report["regions"]),
            f"{measured:.3f}" if measured is not None else "n/a",
        )
    if report.get("error"):
        deadlock = (report.get("watchdog") or {}).get("deadlock") or {}
        log.warning(
            "handshake simulation stalled: %s (blocked cycle: %s)",
            report["error"],
            " -> ".join(deadlock.get("blocked_cycle", [])) or "none found",
        )


def _run_flow(args: argparse.Namespace) -> int:
    if args.liberty:
        library = read_liberty(args.liberty)
    else:
        library = core9_hs() if args.library == "hs" else core9_ll()

    log.debug("reading %s", args.input)
    netlist = read_verilog(args.input)
    if args.top:
        netlist.set_top(args.top)
    module = netlist.top

    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    journal = RunJournal(args.journal) if args.journal else RunJournal()
    engine = FlowEngine(cache=cache, journal=journal, jobs=args.jobs)

    # observability is opt-in: spans mirror into the run journal so one
    # artifact carries both the stage records and the timing tree
    tracer = None
    if args.trace:
        tracer = Tracer(journal=journal if args.journal else None)
        trace.set_tracer(tracer)
    registry = None
    if args.metrics:
        registry = MetricsRegistry()
        metrics.set_registry(registry)
    profiler = None
    if args.profile or args.profile_out:
        profiler = Profiler(enabled=True)
        prof.set_profiler(profiler)

    tool = Drdesync(library, engine=engine)
    options = DesyncOptions(
        grouping=args.group,
        false_path_nets=tuple(args.false_path),
        delay_margin=args.margin,
        delay_mux_taps=args.mux_taps,
    )
    try:
        if args.eco:
            from .flow.incremental import IncrementalSession, load_edits

            edits = load_edits(args.eco)
            session = IncrementalSession(library, options, cache=cache)
            result = session.start(module)
            outcome = session.apply(edits, verify=args.eco_verify)
            result = outcome.result
            reused = sorted(
                stage for stage, hit in outcome.reused.items() if hit
            )
            log.info(
                "eco: %d edit(s) applied via the %s path; reused "
                "stages: %s",
                len(edits),
                outcome.path,
                ", ".join(reused) or "none",
            )
            if outcome.report is not None:
                log.info(
                    "eco verification: %d region(s) re-simulated%s",
                    len(outcome.verified_regions),
                    f", error: {outcome.report['error']}"
                    if outcome.report.get("error")
                    else "",
                )
        else:
            result = tool.run(module, options)

        if args.gatefile:
            with open(args.gatefile, "w") as handle:
                handle.write(tool.gatefile.to_text())
        if args.output:
            log.debug("writing Verilog to %s", args.output)
            with open(args.output, "w") as handle:
                handle.write(result.export_verilog())
        if args.blif:
            with open(args.blif, "w") as handle:
                handle.write(result.export_blif())
        if args.sdc:
            with open(args.sdc, "w") as handle:
                handle.write(result.export_sdc())

        if registry is not None:
            for key, value in result.summary().items():
                if isinstance(value, (int, float)):
                    metrics.gauge(f"desync.summary.{key}").set(value)
        if tracer is not None:
            write_chrome_trace(args.trace, tracer)
            log.info("trace written to %s (%d spans)", args.trace, len(tracer))
            log.debug("span summary:\n%s", summary_report(tracer))
        if registry is not None:
            write_metrics(args.metrics, registry)
            log.info(
                "metrics written to %s (%d instruments)",
                args.metrics,
                len(registry),
            )
        if profiler is not None:
            overhead = profiler.overhead_estimate()
            log.info(
                "profiled %d stage(s) (machinery overhead %.4fs, "
                "%.2f%% of profiled wall)",
                len(profiler),
                overhead["machinery_s"],
                100.0 * overhead["fraction"],
            )
            if args.profile_out:
                paths = write_profile(
                    args.profile_out, profiler, name=module.name
                )
                for kind in sorted(paths):
                    log.info("profile %s written to %s", kind, paths[kind])
            else:
                log.debug("profile report:\n%s", profile_report(profiler))

        if args.vcd or args.handshake_report:
            _observe_result(args, result, library)
    finally:
        journal.close()
        if tracer is not None:
            trace.reset_tracer()
        if registry is not None:
            metrics.reset_registry()
        if profiler is not None:
            prof.reset_profiler()

    _print_summary(result, module, engine, cache)
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SERVICE_COMMANDS:
        # the service verbs (daemon + HTTP client) live in their own
        # sub-parser: ``drdesync serve`` / ``submit`` / ``status`` ...
        from .service.cli import service_main

        return service_main(argv)
    if argv and argv[0] == "bench":
        # benchmark history verbs: record / compare / report
        from .obs.bench import bench_main

        return bench_main(argv[1:])
    parser = build_argument_parser()
    try:
        args = parser.parse_args(argv)
    except UsageError as error:
        print(f"drdesync: error: {error}", file=sys.stderr)
        print(parser.format_usage(), end="", file=sys.stderr)
        return EXIT_USAGE
    except SystemExit as exit_:  # --version / --help
        return EXIT_OK if not exit_.code else EXIT_USAGE

    configure_logging(resolve_log_level(args), stream=sys.stdout)
    try:
        return _run_flow(args)
    except Exception as error:
        print(f"drdesync: flow error: {error}", file=sys.stderr)
        return EXIT_FLOW


if __name__ == "__main__":
    sys.exit(main())
