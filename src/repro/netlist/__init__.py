"""Gate-level netlist model, Verilog/BLIF I/O and cleanup rewrites."""

from .core import (
    CellInfoProvider,
    Instance,
    Module,
    Net,
    Netlist,
    NetlistError,
    PinRef,
    Port,
    PortDirection,
    bus_base,
    bus_index,
    driver_of,
    sinks_of,
)
from .verilog import (
    VerilogParseError,
    parse_verilog,
    read_verilog,
    save_verilog,
    write_verilog,
)
from .blif import save_blif, write_blif
from .cleanup import clean_logic, resolve_assigns, simplify_names
from .index import ConnectivityIndex

__all__ = [
    "CellInfoProvider",
    "ConnectivityIndex",
    "Instance",
    "Module",
    "Net",
    "Netlist",
    "NetlistError",
    "PinRef",
    "Port",
    "PortDirection",
    "VerilogParseError",
    "bus_base",
    "bus_index",
    "clean_logic",
    "driver_of",
    "parse_verilog",
    "read_verilog",
    "resolve_assigns",
    "save_blif",
    "save_verilog",
    "simplify_names",
    "sinks_of",
    "write_blif",
    "write_verilog",
]
