"""Driver/sink connectivity index with mutation-tracked invalidation.

:func:`repro.netlist.core.driver_of` and :func:`~repro.netlist.core.sinks_of`
scan a net's connection list and classify every pin on each call.  Passes
that look up the same nets repeatedly -- clock-root tracing, reactive
output-region tracing, the grouping pass -- pay that classification cost
over and over.  :class:`ConnectivityIndex` memoizes the per-net
classification so repeated lookups are O(1) dict hits.

Consistency is dirty-log-tracked: every logged
:class:`~repro.netlist.core.Module` edit (``connect``, ``disconnect``,
``remove_instance``, ``merge_nets``, ``rename_net``, cell swaps via
``note_cell_change``, wire re-annotation via ``note_wire_annotation``,
...) advances the module's ``dirty_token``; the index compares tokens
on each query and asks ``Module.dirty_since`` for the per-net dirty
sets, dropping only the stale entries.  When the answer is unknowable
(log overflow, ``copy_from``, ``invalidate_indexes``) it falls back to
a full clear.  Code that rewrites ``Net.connections`` directly (e.g.
the name-cleaning pass) must call ``Module.invalidate_indexes()``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs import metrics
from .core import CellInfoProvider, Module, PinRef, PortDirection, bus_base


class ConnectivityIndex:
    """Per-net driver/sink cache over a :class:`Module`.

    The classification matches :func:`~repro.netlist.core.driver_of` /
    :func:`~repro.netlist.core.sinks_of` exactly: drivers are output
    pins and input-port bits, sinks are input pins and output-port
    bits, both in net connection order; inout pins are neither.
    """

    __slots__ = ("module", "cell_info", "_token", "_nets", "hits", "misses")

    def __init__(self, module: Module, cell_info: CellInfoProvider):
        self.module = module
        self.cell_info = cell_info
        self._token = module.dirty_token
        #: net -> (drivers, sinks), both in connection order
        self._nets: Dict[str, Tuple[List[PinRef], List[PinRef]]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Drop entries invalidated since the last query.

        Selective when the module's dirty log covers the gap (only the
        edited nets -- including wire re-annotations, which change
        timing classification without touching pin lists -- are
        evicted); a full clear otherwise.
        """
        token = self.module.dirty_token
        if token == self._token:
            return
        dirty = self.module.dirty_since(self._token)
        self._token = token
        if dirty is None:
            if self._nets:
                self._nets.clear()
                metrics.counter("netlist.index.invalidations").inc()
            return
        dropped = 0
        for net in dirty.nets:
            if self._nets.pop(net, None) is not None:
                dropped += 1
        for net in dirty.wires:
            if self._nets.pop(net, None) is not None:
                dropped += 1
        if dropped:
            metrics.counter("netlist.index.partial_invalidations").inc()

    def connections_of(self, net_name: str) -> Tuple[List[PinRef], List[PinRef]]:
        """``(drivers, sinks)`` of a net; the lists are owned by the index."""
        self._refresh()
        entry = self._nets.get(net_name)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        metrics.counter("netlist.index.misses").inc()
        entry = self._classify(net_name)
        self._nets[net_name] = entry
        return entry

    def _classify(self, net_name: str) -> Tuple[List[PinRef], List[PinRef]]:
        from .core import _port_of_bit

        module = self.module
        net = module.nets.get(net_name)
        drivers: List[PinRef] = []
        sinks: List[PinRef] = []
        if net is None:
            return drivers, sinks
        pin_direction = self.cell_info.pin_direction
        ports = module.ports
        instances = module.instances
        for ref in net.connections:
            if ref.instance is None:
                port = ports.get(_port_of_bit(ref.pin))
                if port is None:
                    continue
                if port.direction == PortDirection.INPUT:
                    drivers.append(ref)
                elif port.direction == PortDirection.OUTPUT:
                    sinks.append(ref)
                continue
            direction = pin_direction(instances[ref.instance].cell, ref.pin)
            if direction == PortDirection.OUTPUT:
                drivers.append(ref)
            elif direction == PortDirection.INPUT:
                sinks.append(ref)
        return drivers, sinks

    # ------------------------------------------------------------------
    def driver_of(self, net_name: str) -> Optional[PinRef]:
        """First driving pin of ``net_name`` (``driver_of`` semantics)."""
        drivers, _ = self.connections_of(net_name)
        return drivers[0] if drivers else None

    def drivers_of(self, net_name: str) -> List[PinRef]:
        """Every driving pin (multi-driver nets keep all of them)."""
        drivers, _ = self.connections_of(net_name)
        return list(drivers)

    def sinks_of(self, net_name: str) -> List[PinRef]:
        """Every reading pin of ``net_name`` (``sinks_of`` semantics)."""
        _, sinks = self.connections_of(net_name)
        return list(sinks)

    def bus_driver_instances(self, base: str) -> List[str]:
        """Instances driving any bit of bus ``base`` (grouping heuristic)."""
        out: List[str] = []
        seen = set()
        for net_name in self.module.nets:
            if bus_base(net_name) != base:
                continue
            for ref in self.connections_of(net_name)[0]:
                if ref.instance is not None and ref.instance not in seen:
                    seen.add(ref.instance)
                    out.append(ref.instance)
        return out

    # ------------------------------------------------------------------
    def topo_order(self, sources: Iterable[str] = ()) -> List[str]:
        """Instances in combinational topological order (Kahn's algorithm).

        ``sources`` names instances whose outputs are treated as primary
        inputs -- sequential elements, handshake controllers -- so they
        are excluded from the order and contribute no dependency edges.
        The batch simulator levelizes its combinational cloud this way
        once, then evaluates a whole cycle as a single ordered sweep.

        Deterministic: ties break by module insertion order.  Raises
        ``ValueError`` on a combinational cycle, naming sample members
        (a self-loop counts as a cycle).
        """
        source_set = set(sources)
        module = self.module
        pin_direction = self.cell_info.pin_direction
        order = [name for name in module.instances if name not in source_set]
        in_cloud = set(order)
        preds: Dict[str, Set[str]] = {}
        succs: Dict[str, List[str]] = {name: [] for name in order}
        for name in order:
            instance = module.instances[name]
            pred_set: Set[str] = set()
            for pin, net in instance.pins.items():
                if pin_direction(instance.cell, pin) != PortDirection.INPUT:
                    continue
                for ref in self.connections_of(net)[0]:
                    if ref.instance in in_cloud:
                        pred_set.add(ref.instance)
            preds[name] = pred_set
        for name in order:
            for pred in preds[name]:
                succs[pred].append(name)
        indegree = {name: len(preds[name]) for name in order}
        ready = deque(name for name in order if not indegree[name])
        result: List[str] = []
        while ready:
            name = ready.popleft()
            result.append(name)
            for succ in succs[name]:
                indegree[succ] -= 1
                if not indegree[succ]:
                    ready.append(succ)
        if len(result) != len(order):
            stuck = [name for name in order if indegree[name]]
            sample = ", ".join(stuck[:5]) + (" ..." if len(stuck) > 5 else "")
            raise ValueError(f"combinational cycle through {sample}")
        metrics.counter("netlist.index.topo_orders").inc()
        return result

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cached_nets": len(self._nets),
        }
