"""Gate-level structural Verilog reader and writer.

The desynchronization tool operates on post-synthesis netlists, so only
the structural subset of Verilog is supported:

- module / endmodule with classic or ANSI port lists,
- ``input`` / ``output`` / ``inout`` / ``wire`` declarations (vectors ok),
- cell and submodule instantiations with named (``.A(n)``) or positional
  connections (positional only when the referenced module is known),
- ``assign a = b;`` aliases and ``assign a = 1'b0/1'b1;`` constants,
- escaped identifiers (``\\foo.bar ``), ``//`` and ``/* */`` comments.

Behavioural constructs (always blocks, expressions) are rejected with a
clear error: the paper's ``drdesync`` also consumes gate-level input only.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .core import Module, Netlist, PinRef, PortDirection


class VerilogParseError(Exception):
    """Raised when the input is not acceptable gate-level Verilog."""


_TOKEN_RE = re.compile(
    r"""
    (?P<escaped>\\[^ \t\r\n]+)      # escaped identifier
  | (?P<number>\d+'[bBdDhH][0-9a-fA-FxXzZ_]+|\d+)
  | (?P<id>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<sym>[()\[\]{},;:.=#*]|\-)
    """,
    re.VERBOSE,
)

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)

_DIRECTIONS = {
    "input": PortDirection.INPUT,
    "output": PortDirection.OUTPUT,
    "inout": PortDirection.INOUT,
}

_SKIP_KEYWORDS = {"specify", "endspecify", "primitive", "endprimitive"}


def tokenize(text: str) -> List[str]:
    """Split Verilog source into tokens, stripping comments."""
    text = _COMMENT_RE.sub(" ", text)
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise VerilogParseError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        tokens.append(match.group(0))
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos >= len(self._tokens):
            return None
        return self._tokens[self._pos]

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise VerilogParseError("unexpected end of input")
        self._pos += 1
        return tok

    def expect(self, token: str) -> str:
        tok = self.next()
        if tok != token:
            raise VerilogParseError(f"expected {token!r}, got {tok!r}")
        return tok

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self._pos += 1
            return True
        return False


def _ident(token: str) -> str:
    """Normalise an identifier token (strip the escape backslash)."""
    if token.startswith("\\"):
        return token[1:]
    return token


_CONST_RE = re.compile(r"^(\d+)'[bB]([01xXzZ_]+)$")


def _constant_bits(token: str) -> Optional[List[int]]:
    """Decode ``N'b...`` tokens to a list of bits (MSB first), else None."""
    match = _CONST_RE.match(token)
    if match is None:
        return None
    width = int(match.group(1))
    bits_text = match.group(2).replace("_", "")
    bits = [1 if b == "1" else 0 for b in bits_text]
    while len(bits) < width:
        bits.insert(0, bits[0] if bits_text[0] not in "01" else 0)
    return bits[-width:]


class VerilogParser:
    """Parses one or more modules into a :class:`Netlist`."""

    def __init__(self, text: str):
        self._stream = _TokenStream(tokenize(text))
        self.netlist = Netlist()

    def parse(self) -> Netlist:
        while self._stream.peek() is not None:
            tok = self._stream.next()
            if tok == "module":
                self._parse_module()
            elif tok in _SKIP_KEYWORDS:
                self._skip_until("end" + tok)
            elif tok == "`timescale":
                self._skip_line()
            # stray tokens between modules are tolerated
        return self.netlist

    # ------------------------------------------------------------------
    def _skip_until(self, terminator: str) -> None:
        while True:
            tok = self._stream.next()
            if tok == terminator:
                return

    def _skip_line(self) -> None:
        # tokens have no line info; consume until next ';' heuristically
        while self._stream.peek() not in (None, ";"):
            self._stream.next()
        self._stream.accept(";")

    # ------------------------------------------------------------------
    def _parse_module(self) -> None:
        stream = self._stream
        name = _ident(stream.next())
        module = Module(name)
        declared_order: List[str] = []

        if stream.accept("("):
            declared_order = self._parse_header_ports(module)
        stream.expect(";")

        while True:
            tok = stream.next()
            if tok == "endmodule":
                break
            if tok in _DIRECTIONS:
                self._parse_direction_decl(module, _DIRECTIONS[tok])
            elif tok in ("wire", "tri"):
                self._parse_wire_decl(module)
            elif tok in ("supply0", "supply1"):
                value = 1 if tok == "supply1" else 0
                for net_name in self._parse_name_list():
                    const = module.constant_net(value)
                    module.ensure_net(net_name)
                    module.merge_nets(const.name, net_name)
            elif tok == "assign":
                self._parse_assign(module)
            elif tok in _SKIP_KEYWORDS:
                self._skip_until("end" + tok)
            elif tok in ("always", "initial"):
                raise VerilogParseError(
                    f"behavioural construct {tok!r} in module {name!r}: "
                    "only gate-level netlists are supported"
                )
            else:
                self._parse_instance(module, cell=_ident(tok))

        module.attributes["port_order"] = declared_order
        self.netlist.add_module(module)

    def _parse_header_ports(self, module: Module) -> List[str]:
        """Parse the ``( ... )`` header, returning declared port order."""
        stream = self._stream
        order: List[str] = []
        if stream.accept(")"):
            return order
        while True:
            tok = stream.peek()
            if tok in _DIRECTIONS:  # ANSI style
                stream.next()
                direction = _DIRECTIONS[tok]
                msb, lsb = self._maybe_range()
                port_name = _ident(stream.next())
                module.add_port(port_name, direction, msb, lsb)
                order.append(port_name)
            else:
                order.append(_ident(stream.next()))
            if stream.accept(")"):
                return order
            stream.expect(",")

    def _maybe_range(self) -> Tuple[Optional[int], Optional[int]]:
        stream = self._stream
        if not stream.accept("["):
            return None, None
        msb = int(stream.next())
        stream.expect(":")
        lsb = int(stream.next())
        stream.expect("]")
        return msb, lsb

    def _parse_name_list(self) -> List[str]:
        stream = self._stream
        names = [self._decl_name()]
        while stream.accept(","):
            names.append(self._decl_name())
        stream.expect(";")
        return names

    def _decl_name(self) -> str:
        """A declared name, optionally a single-bit select (``w[3]``):
        our writer emits bus-member nets as individual scalar wires."""
        name = _ident(self._stream.next())
        if self._stream.accept("["):
            index = self._stream.next()
            self._stream.expect("]")
            name = f"{name}[{index}]"
        return name

    def _parse_direction_decl(
        self, module: Module, direction: PortDirection
    ) -> None:
        msb, lsb = self._maybe_range()
        for name in self._parse_name_list():
            if name in module.ports:
                port = module.ports[name]
                port.direction = direction
                port.msb, port.lsb = msb, lsb
                for bit in port.bit_names():
                    net = module.ensure_net(bit)
                    already = any(
                        c.instance is None and c.pin == bit
                        for c in net.connections
                    )
                    if not already:
                        net.connections.append(PinRef(None, bit))
            else:
                module.add_port(name, direction, msb, lsb)

    def _parse_wire_decl(self, module: Module) -> None:
        msb, lsb = self._maybe_range()
        for name in self._parse_name_list():
            if msb is None:
                module.ensure_net(name)
            else:
                step = -1 if msb >= lsb else 1
                for i in range(msb, lsb + step, step):
                    module.ensure_net(f"{name}[{i}]")

    def _parse_assign(self, module: Module) -> None:
        stream = self._stream
        lhs = self._parse_net_ref(module)
        stream.expect("=")
        rhs_tok = stream.peek()
        bits = _constant_bits(rhs_tok) if rhs_tok else None
        if bits is not None:
            stream.next()
            rhs = module.constant_net(bits[-1]).name
        else:
            rhs = self._parse_net_ref(module)
        stream.expect(";")
        module.ensure_net(lhs)
        module.ensure_net(rhs)
        module.assigns.append((lhs, rhs))

    def _parse_net_ref(self, module: Module) -> str:
        """Parse a scalar net reference, e.g. ``n1`` or ``data[3]``."""
        stream = self._stream
        name = _ident(stream.next())
        if stream.accept("["):
            index = stream.next()
            stream.expect("]")
            name = f"{name}[{index}]"
        return name

    def _parse_instance(self, module: Module, cell: str) -> None:
        stream = self._stream
        if stream.accept("#"):  # parameter override, skip balanced parens
            stream.expect("(")
            depth = 1
            while depth:
                tok = stream.next()
                if tok == "(":
                    depth += 1
                elif tok == ")":
                    depth -= 1
        inst_name = _ident(stream.next())
        stream.expect("(")
        inst = module.add_instance(inst_name, cell)
        if stream.accept(")"):
            stream.expect(";")
            return
        position = 0
        while True:
            if stream.accept("."):
                pin = _ident(stream.next())
                stream.expect("(")
                if stream.peek() == ")":  # unconnected pin
                    stream.next()
                else:
                    net = self._connection_net(module)
                    stream.expect(")")
                    module.connect(inst_name, pin, net)
            else:
                net = self._connection_net(module)
                module.connect(inst_name, f"__pos{position}__", net)
                inst.attributes["positional"] = True
                position += 1
            if stream.accept(")"):
                break
            stream.expect(",")
        stream.expect(";")

    def _connection_net(self, module: Module) -> str:
        tok = self._stream.peek()
        if tok == "{":
            raise VerilogParseError(
                "concatenations in port connections are not supported"
            )
        bits = _constant_bits(tok) if tok else None
        if bits is not None:
            self._stream.next()
            return module.constant_net(bits[-1]).name
        return self._parse_net_ref(module)


def parse_verilog(text: str) -> Netlist:
    """Parse gate-level Verilog source text into a :class:`Netlist`."""
    return VerilogParser(text).parse()


def read_verilog(path: str) -> Netlist:
    with open(path) as handle:
        return parse_verilog(handle.read())


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------

_SIMPLE_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
_BIT_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*\[\d+\]$")


def _emit_id(name: str) -> str:
    if _SIMPLE_ID_RE.match(name) or _BIT_ID_RE.match(name):
        return name
    return f"\\{name} "


def write_module(module: Module) -> str:
    """Render one module as structural Verilog text."""
    lines: List[str] = []
    port_names = list(module.ports)
    lines.append(
        f"module {_emit_id(module.name)} ("
        + ", ".join(_emit_id(p) for p in port_names)
        + ");"
    )
    for port in module.ports.values():
        rng = f" [{port.msb}:{port.lsb}]" if port.is_vector else ""
        lines.append(f"  {port.direction.value}{rng} {_emit_id(port.name)};")

    port_bits = set(module.port_bits())
    for net in module.nets.values():
        if net.name in port_bits or net.is_constant:
            continue
        lines.append(f"  wire {_emit_id(net.name)};")
    for value in (0, 1):
        const_name = f"__const{value}__"
        if const_name in module.nets and module.nets[const_name].connections:
            lines.append(f"  wire {const_name};")
            lines.append(f"  assign {const_name} = 1'b{value};")

    for lhs, rhs in module.assigns:
        lines.append(f"  assign {_emit_id(lhs)} = {_emit_id(rhs)};")

    for inst in module.instances.values():
        conns = ", ".join(
            f".{_emit_id(pin)}({_emit_id(net)})"
            for pin, net in sorted(inst.pins.items())
        )
        lines.append(
            f"  {_emit_id(inst.cell)} {_emit_id(inst.name)} ({conns});"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(netlist: Netlist) -> str:
    """Render every module of a netlist, top module last."""
    chunks = []
    top_name = netlist.top.name
    for name, module in netlist.modules.items():
        if name != top_name:
            chunks.append(write_module(module))
    chunks.append(write_module(netlist.top))
    return "\n".join(chunks)


def save_verilog(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(write_verilog(netlist))
