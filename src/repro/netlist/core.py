"""Core gate-level netlist object model.

The netlist is the central data structure of the desynchronization flow:
every stage (synthesis, DFT, desynchronization, placement, simulation)
reads and rewrites it.  The model is deliberately simple and scalar:

- A :class:`Module` owns :class:`Port`, :class:`Net` and :class:`Instance`
  objects.  All nets are single-bit; a Verilog vector port ``input [7:0] a``
  becomes eight scalar nets named ``a[7]`` ... ``a[0]``.
- An :class:`Instance` references a *cell* by name only.  Cell semantics
  (pin directions, function, area) live in :mod:`repro.liberty`; the
  netlist package never imports it.  Code that needs directions passes a
  *cell info provider* -- any mapping-like object with
  ``pin_direction(cell, pin)``.
- Connectivity is bidirectional: instances know their pin->net bindings
  and nets know every (instance, pin) attached to them, so both forward
  and backward traversals are O(fanout).
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class PortDirection(Enum):
    """Direction of a module port or cell pin."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


_BUS_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


def bus_base(net_name: str) -> Optional[str]:
    """Return the bus base name of ``net_name`` or ``None`` if scalar.

    ``bus_base("data[3]") == "data"`` while ``bus_base("data_3") is None``:
    per the paper, by-name bus grouping is only possible when the synthesis
    tool has *not* collapsed ``bus[n]`` into ``bus_n`` names.
    """
    match = _BUS_RE.match(net_name)
    if match is None:
        return None
    return match.group("base")


def bus_index(net_name: str) -> Optional[int]:
    """Return the bit index of a bus member net name, or ``None``."""
    match = _BUS_RE.match(net_name)
    if match is None:
        return None
    return int(match.group("index"))


@dataclass(frozen=True)
class PinRef:
    """A reference to one pin of one instance (or a top-level port).

    ``instance`` is ``None`` for module port pins, in which case ``pin``
    is the port (bit) name.
    """

    instance: Optional[str]
    pin: str

    def __str__(self) -> str:
        if self.instance is None:
            return f"<port {self.pin}>"
        return f"{self.instance}.{self.pin}"


@dataclass
class Port:
    """A module port.  Vector ports expand to per-bit nets ``name[i]``."""

    name: str
    direction: PortDirection
    msb: Optional[int] = None
    lsb: Optional[int] = None

    @property
    def is_vector(self) -> bool:
        return self.msb is not None

    @property
    def width(self) -> int:
        if self.msb is None or self.lsb is None:
            return 1
        return abs(self.msb - self.lsb) + 1

    def bit_names(self) -> List[str]:
        """Names of the nets this port binds to, MSB first for vectors."""
        if not self.is_vector:
            return [self.name]
        step = -1 if self.msb >= self.lsb else 1
        stop = self.lsb + step
        return [f"{self.name}[{i}]" for i in range(self.msb, stop, step)]


class Net:
    """A single-bit net with bidirectional connectivity."""

    __slots__ = ("name", "connections", "is_constant", "constant_value")

    def __init__(self, name: str):
        self.name = name
        self.connections: List[PinRef] = []
        self.is_constant = False
        self.constant_value: Optional[int] = None

    def __repr__(self) -> str:
        return f"Net({self.name!r}, {len(self.connections)} pins)"


class Instance:
    """One cell (or submodule) instantiation inside a module."""

    __slots__ = ("name", "cell", "pins", "attributes")

    def __init__(self, name: str, cell: str):
        self.name = name
        self.cell = cell
        #: pin name -> net name
        self.pins: Dict[str, str] = {}
        #: free-form annotations (e.g. ``size_only``, region id, dont_touch)
        self.attributes: Dict[str, object] = {}

    def __repr__(self) -> str:
        return f"Instance({self.name!r}, cell={self.cell!r})"


class NetlistError(Exception):
    """Raised on inconsistent netlist operations."""


#: Upper bound on retained dirty-log events.  Edits between two
#: ``dirty_token`` observations almost always number in the dozens; the
#: bound only matters when a consumer holds a token across a full
#: rebuild, in which case :meth:`Module.dirty_since` degrades to ``None``
#: (meaning "everything may have changed").
_DIRTY_LOG_LIMIT = 4096

#: Sentinel event kind meaning "the whole module may have changed".
_DIRTY_ALL = "all"


@dataclass
class DirtySets:
    """What changed between two ``dirty_token`` observations.

    ``nets`` are nets whose connectivity (or classification) may have
    changed, ``cells`` are instances whose cell binding or pin set may
    have changed, and ``wires`` are nets whose wire-load annotations
    were rewritten without a connectivity change.  Consumers that only
    care about connectivity should treat ``nets | wires`` as stale --
    wire annotations change net *timing* classification even though the
    pin lists are intact.
    """

    nets: Set[str] = field(default_factory=set)
    cells: Set[str] = field(default_factory=set)
    wires: Set[str] = field(default_factory=set)

    def __bool__(self) -> bool:
        return bool(self.nets or self.cells or self.wires)


class Module:
    """A flat module: ports, nets and instances plus rewrite helpers."""

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        #: ``assign lhs = rhs`` aliases kept verbatim until cleanup
        self.assigns: List[Tuple[str, str]] = []
        #: free-form module annotations (port order, region map, ...)
        self.attributes: Dict[str, object] = {}
        self._uid = 0
        #: bumped by every connectivity-changing operation; consumed by
        #: :class:`repro.netlist.index.ConnectivityIndex` for staleness
        #: checks.  Code that rewrites ``Net.connections`` directly must
        #: call :meth:`invalidate_indexes`.
        self._mutations = 0
        #: bumped by :meth:`note_wire_annotation` -- wire-load rewrites
        #: are *not* connectivity mutations (STA fingerprints hash the
        #: annotation content separately) but still invalidate derived
        #: timing classifications.
        self._wire_annotations = 0
        #: monotonic event counter behind :attr:`dirty_token`; every
        #: dirty-log record carries its sequence number.
        self._dirty_events = 0
        #: bounded event log of ``(seq, kind, name)``; kinds are
        #: ``"net"``, ``"cell"``, ``"wire"`` and the ``"all"`` sentinel.
        self._dirty_log: deque = deque(maxlen=_DIRTY_LOG_LIMIT)
        #: tokens below this are unanswerable (events fell off the log)
        self._dirty_floor = 0

    @property
    def mutation_count(self) -> int:
        """Monotonic counter of connectivity mutations."""
        return self._mutations

    @property
    def wire_stamp(self) -> int:
        """Monotonic counter of wire-annotation rewrites."""
        return self._wire_annotations

    @property
    def dirty_token(self) -> int:
        """Monotonic token covering *all* logged edits (connectivity,
        cell swaps and wire annotations).  Capture it, edit the module,
        then call :meth:`dirty_since` with the captured value to learn
        exactly what changed."""
        return self._dirty_events

    def _note_dirty(self, kind: str, name: str) -> None:
        self._dirty_events += 1
        log = self._dirty_log
        log.append((self._dirty_events, kind, name))
        if len(log) == _DIRTY_LOG_LIMIT:
            # oldest retained event is log[0]; anything before it is lost
            self._dirty_floor = log[0][0] - 1

    def dirty_since(self, token: int) -> Optional[DirtySets]:
        """Dirty sets accumulated since ``token`` (a past ``dirty_token``).

        Returns ``None`` when the answer is unknowable: the token
        predates the retained log window, or a whole-module event
        (``copy_from`` / ``invalidate_indexes``) happened in between.
        Callers must treat ``None`` as "everything changed".
        """
        if token >= self._dirty_events:
            return DirtySets()
        if token < self._dirty_floor:
            return None
        out = DirtySets()
        for seq, kind, name in reversed(self._dirty_log):
            if seq <= token:
                break
            if kind == _DIRTY_ALL:
                return None
            if kind == "net":
                out.nets.add(name)
            elif kind == "cell":
                out.cells.add(name)
            else:
                out.wires.add(name)
        return out

    def invalidate_indexes(self) -> None:
        """Mark derived connectivity indexes stale (manual rewrites)."""
        self._mutations += 1
        self._note_dirty(_DIRTY_ALL, "")

    def note_wire_annotation(self, nets: Iterable[str]) -> None:
        """Record that wire-load annotations of ``nets`` were rewritten.

        Bumps :attr:`wire_stamp` (not :attr:`mutation_count`: the STA
        caches fingerprint annotation *content* and must not see a
        phantom connectivity mutation) and logs per-net ``"wire"`` dirty
        events so connectivity/timing consumers can invalidate
        selectively.
        """
        self._wire_annotations += 1
        for net in nets:
            self._note_dirty("wire", net)

    def note_cell_change(self, instance: str) -> None:
        """Record that ``instance`` was re-bound to a different cell.

        The pin->net bindings are untouched but every derived view that
        classified pins through the old cell (connectivity indexes,
        timing graphs, region membership) is stale for the instance and
        the nets on its pins.  Bumps :attr:`mutation_count`.
        """
        inst = self.instances[instance]
        self._mutations += 1
        self._note_dirty("cell", instance)
        for net in inst.pins.values():
            self._note_dirty("net", net)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_port(
        self,
        name: str,
        direction: PortDirection,
        msb: Optional[int] = None,
        lsb: Optional[int] = None,
    ) -> Port:
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r} in module {self.name!r}")
        port = Port(name, direction, msb, lsb)
        self.ports[name] = port
        for bit in port.bit_names():
            net = self.ensure_net(bit)
            net.connections.append(PinRef(None, bit))
            self._note_dirty("net", bit)
        self._mutations += 1
        return port

    def ensure_net(self, name: str) -> Net:
        """Return the net called ``name``, creating it if missing."""
        net = self.nets.get(name)
        if net is None:
            net = Net(name)
            self.nets[name] = net
        return net

    def add_net(self, name: str) -> Net:
        if name in self.nets:
            raise NetlistError(f"duplicate net {name!r} in module {self.name!r}")
        return self.ensure_net(name)

    def constant_net(self, value: int) -> Net:
        """Return (creating on demand) the shared tie-low / tie-high net."""
        name = f"__const{int(bool(value))}__"
        net = self.ensure_net(name)
        net.is_constant = True
        net.constant_value = int(bool(value))
        return net

    def add_instance(
        self, name: str, cell: str, pins: Optional[Dict[str, str]] = None
    ) -> Instance:
        if name in self.instances:
            raise NetlistError(f"duplicate instance {name!r} in {self.name!r}")
        inst = Instance(name, cell)
        self.instances[name] = inst
        if pins:
            for pin, net in pins.items():
                self.connect(name, pin, net)
        return inst

    def new_name(self, prefix: str) -> str:
        """Generate a fresh instance/net name with the given prefix."""
        while True:
            self._uid += 1
            candidate = f"{prefix}_{self._uid}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate

    # ------------------------------------------------------------------
    # connectivity editing
    # ------------------------------------------------------------------
    def connect(self, instance: str, pin: str, net_name: str) -> None:
        """Bind ``instance.pin`` to ``net_name`` (creating the net)."""
        inst = self.instances[instance]
        if pin in inst.pins:
            self.disconnect(instance, pin)
        net = self.ensure_net(net_name)
        inst.pins[pin] = net_name
        net.connections.append(PinRef(instance, pin))
        self._mutations += 1
        self._note_dirty("net", net_name)
        self._note_dirty("cell", instance)

    def disconnect(self, instance: str, pin: str) -> None:
        inst = self.instances[instance]
        net_name = inst.pins.pop(pin, None)
        if net_name is None:
            return
        net = self.nets.get(net_name)
        if net is not None:
            ref = PinRef(instance, pin)
            net.connections = [c for c in net.connections if c != ref]
        self._mutations += 1
        self._note_dirty("net", net_name)
        self._note_dirty("cell", instance)

    def remove_instance(self, name: str) -> None:
        inst = self.instances.get(name)
        if inst is None:
            return
        for pin in list(inst.pins):
            self.disconnect(name, pin)
        del self.instances[name]
        self._mutations += 1
        self._note_dirty("cell", name)

    def remove_net(self, name: str) -> None:
        net = self.nets.get(name)
        if net is None:
            return
        if net.connections:
            raise NetlistError(f"net {name!r} still has connections")
        del self.nets[name]
        self._mutations += 1
        self._note_dirty("net", name)

    def rename_net(self, old: str, new: str) -> None:
        """Rename a net, rewriting every pin binding that references it."""
        if old == new:
            return
        if new in self.nets:
            raise NetlistError(f"net {new!r} already exists")
        net = self.nets.pop(old)
        net.name = new
        self.nets[new] = net
        for ref in net.connections:
            if ref.instance is not None:
                self.instances[ref.instance].pins[ref.pin] = new
                self._note_dirty("cell", ref.instance)
        self._mutations += 1
        self._note_dirty("net", old)
        self._note_dirty("net", new)

    def merge_nets(self, keep: str, remove: str) -> None:
        """Merge net ``remove`` into ``keep`` (alias collapsing)."""
        if keep == remove:
            return
        kept = self.ensure_net(keep)
        gone = self.nets.get(remove)
        if gone is None:
            return
        for ref in list(gone.connections):
            if ref.instance is None:
                # A port bit cannot be renamed away; callers must keep the
                # port-side name instead (handled by cleanup.resolve_assigns).
                raise NetlistError(
                    f"cannot merge port net {remove!r} into {keep!r}"
                )
            inst = self.instances[ref.instance]
            inst.pins[ref.pin] = keep
            kept.connections.append(PinRef(ref.instance, ref.pin))
            self._note_dirty("cell", ref.instance)
        gone.connections = []
        del self.nets[remove]
        self._mutations += 1
        self._note_dirty("net", keep)
        self._note_dirty("net", remove)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def port_bits(self, direction: Optional[PortDirection] = None) -> List[str]:
        bits: List[str] = []
        for port in self.ports.values():
            if direction is None or port.direction == direction:
                bits.extend(port.bit_names())
        return bits

    def net_of(self, instance: str, pin: str) -> Optional[str]:
        return self.instances[instance].pins.get(pin)

    def instances_of(self, cells: Iterable[str]) -> Iterator[Instance]:
        wanted = set(cells)
        for inst in self.instances.values():
            if inst.cell in wanted:
                yield inst

    def stats(self) -> Dict[str, int]:
        """Basic size statistics: instance and net counts."""
        return {"cells": len(self.instances), "nets": len(self.nets)}

    def check(self) -> List[str]:
        """Return a list of consistency problems (empty when clean)."""
        problems: List[str] = []
        for inst in self.instances.values():
            for pin, net_name in inst.pins.items():
                net = self.nets.get(net_name)
                if net is None:
                    problems.append(f"{inst.name}.{pin} -> missing net {net_name}")
                elif PinRef(inst.name, pin) not in net.connections:
                    problems.append(f"{inst.name}.{pin} not on net {net_name}")
        for net in self.nets.values():
            for ref in net.connections:
                if ref.instance is None:
                    continue
                inst = self.instances.get(ref.instance)
                if inst is None:
                    problems.append(f"net {net.name} -> missing inst {ref.instance}")
                elif inst.pins.get(ref.pin) != net.name:
                    problems.append(
                        f"net {net.name} lists {ref} but pin bound elsewhere"
                    )
        return problems

    def clone(self, name: Optional[str] = None) -> "Module":
        """Deep copy of the module (instances, nets, ports, attributes)."""
        out = Module(name or self.name)
        for port in self.ports.values():
            out.ports[port.name] = Port(
                port.name, port.direction, port.msb, port.lsb
            )
        for net in self.nets.values():
            copy_net = Net(net.name)
            copy_net.connections = list(net.connections)
            copy_net.is_constant = net.is_constant
            copy_net.constant_value = net.constant_value
            out.nets[net.name] = copy_net
        for inst in self.instances.values():
            copy_inst = Instance(inst.name, inst.cell)
            copy_inst.pins = dict(inst.pins)
            copy_inst.attributes = dict(inst.attributes)
            out.instances[inst.name] = copy_inst
        out.assigns = list(self.assigns)
        out.attributes = {
            key: dict(value) if isinstance(value, dict) else value
            for key, value in self.attributes.items()
        }
        out._uid = self._uid
        return out

    def copy_from(self, other: "Module") -> None:
        """Replace this module's entire contents with ``other``'s.

        Used by the flow engine to honour the tool's in-place rewrite
        contract when a run resumes from cached artifacts: the caller's
        module object adopts the cached netlist, so every reference
        held before the run stays valid.  ``other`` must not be used
        afterwards (its containers are adopted, not copied).
        """
        if other is self:
            return
        self.name = other.name
        self.ports = other.ports
        self.nets = other.nets
        self.instances = other.instances
        self.assigns = other.assigns
        self.attributes = other.attributes
        self._uid = other._uid
        self._mutations += 1
        self._wire_annotations += 1
        self._note_dirty(_DIRTY_ALL, "")

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.instances)} cells, "
            f"{len(self.nets)} nets)"
        )


class Netlist:
    """A design: a set of modules plus the name of the top module."""

    def __init__(self, top: Optional[str] = None):
        self.modules: Dict[str, Module] = {}
        self._top = top

    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise NetlistError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        if self._top is None:
            self._top = module.name
        return module

    @property
    def top(self) -> Module:
        if self._top is None or self._top not in self.modules:
            raise NetlistError("netlist has no top module")
        return self.modules[self._top]

    def set_top(self, name: str) -> None:
        if name not in self.modules:
            raise NetlistError(f"unknown module {name!r}")
        self._top = name

    def __repr__(self) -> str:
        return f"Netlist(top={self._top!r}, {len(self.modules)} modules)"


def driver_of(
    module: Module, net_name: str, cell_info: "CellInfoProvider"
) -> Optional[PinRef]:
    """Return the pin driving ``net_name`` (an output pin or input port)."""
    net = module.nets.get(net_name)
    if net is None:
        return None
    for ref in net.connections:
        if ref.instance is None:
            port = module.ports.get(_port_of_bit(ref.pin))
            if port is not None and port.direction == PortDirection.INPUT:
                return ref
            continue
        inst = module.instances[ref.instance]
        direction = cell_info.pin_direction(inst.cell, ref.pin)
        if direction == PortDirection.OUTPUT:
            return ref
    return None


def sinks_of(
    module: Module, net_name: str, cell_info: "CellInfoProvider"
) -> List[PinRef]:
    """Return every pin reading ``net_name`` (input pins / output ports)."""
    net = module.nets.get(net_name)
    if net is None:
        return []
    out: List[PinRef] = []
    for ref in net.connections:
        if ref.instance is None:
            port = module.ports.get(_port_of_bit(ref.pin))
            if port is not None and port.direction == PortDirection.OUTPUT:
                out.append(ref)
            continue
        inst = module.instances[ref.instance]
        direction = cell_info.pin_direction(inst.cell, ref.pin)
        if direction == PortDirection.INPUT:
            out.append(ref)
    return out


def _port_of_bit(bit_name: str) -> str:
    base = bus_base(bit_name)
    return base if base is not None else bit_name


class CellInfoProvider:
    """Protocol for objects that know cell pin directions.

    The gatefile (:mod:`repro.liberty.gatefile`) is the canonical
    implementation; tests use small dict-backed stand-ins.
    """

    def pin_direction(self, cell: str, pin: str) -> PortDirection:
        raise NotImplementedError
