"""Design-import hygiene and *logic cleaning* netlist rewrites.

Section 3.2.1 of the paper: during design import, escaped names are
substituted by simple ones and ``assign`` statements are replaced wherever
possible, producing a cleaner netlist without altering functionality.

Section 3.2.2: before the grouping algorithm runs, the netlist must
contain only "clean logic" -- free of buffers and inverter pairs inserted
by synthesis for signal strength -- so that those cells do not induce
*false* logic dependencies between combinational clouds (Figure 3.5).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs import metrics, trace
from .core import Module, PinRef, PortDirection


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def groups(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for item in list(self._parent):
            out.setdefault(self.find(item), []).append(item)
        return {root: members for root, members in out.items() if len(members) > 1}


def resolve_assigns(module: Module) -> int:
    """Collapse ``assign lhs = rhs`` aliases into single nets.

    Port nets keep their names; when two port bits are aliased to each
    other the assign is kept (a wire must remain between them).  Returns
    the number of assigns eliminated.
    """
    if not module.assigns:
        return 0
    from .core import bus_base

    port_bits = set(module.port_bits())
    input_bits = set(module.port_bits(PortDirection.INPUT))
    uf = _UnionFind()
    for lhs, rhs in module.assigns:
        uf.union(lhs, rhs)

    eliminated = 0
    kept: List[Tuple[str, str]] = []
    for _root, members in uf.groups().items():
        constants = [m for m in members if module.nets[m].is_constant]
        ports = sorted(
            (m for m in members if m in port_bits),
            key=lambda m: (m not in input_bits, m),
        )
        if constants:
            rep = constants[0]
        elif ports:
            rep = ports[0]  # prefer an input port as the driver
        else:
            rep = min(members, key=len)
        for member in members:
            if member == rep:
                continue
            if member in port_bits or (
                member in module.nets and module.nets[member].is_constant
            ):
                kept.append((member, rep))
                continue
            module.merge_nets(rep, member)
            eliminated += 1
    eliminated += len(module.assigns) - len(kept)
    module.assigns = kept
    return max(eliminated, 0)


_CLEAN_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\[\d+\])?$")


def simplify_names(module: Module) -> int:
    """Rename escaped/exotic net and instance names to simple ones.

    Returns the number of renames performed.  Port nets are never
    renamed (their names are part of the module interface).
    """
    port_bits = set(module.port_bits())
    renames = 0
    counter = 0
    for name in list(module.nets):
        if name in port_bits or _CLEAN_NAME_RE.match(name):
            continue
        while True:
            counter += 1
            fresh = f"n_clean_{counter}"
            if fresh not in module.nets:
                break
        module.rename_net(name, fresh)
        renames += 1
    for name in list(module.instances):
        if _CLEAN_NAME_RE.match(name):
            continue
        while True:
            counter += 1
            fresh = f"u_clean_{counter}"
            if fresh not in module.instances:
                break
        inst = module.instances.pop(name)
        inst.name = fresh
        module.instances[fresh] = inst
        for pin, net_name in inst.pins.items():
            net = module.nets[net_name]
            net.connections = [
                PinRef(fresh, c.pin) if c.instance == name else c
                for c in net.connections
            ]
        # connections were rewritten directly, bypassing the mutation
        # hooks: any live ConnectivityIndex must drop its cache
        module.invalidate_indexes()
        renames += 1
    return renames


def _single_input_output(
    module: Module, inst_name: str, cell_pins: Tuple[str, str]
) -> Tuple[Optional[str], Optional[str]]:
    inst = module.instances[inst_name]
    in_pin, out_pin = cell_pins
    return inst.pins.get(in_pin), inst.pins.get(out_pin)


def remove_buffers(
    module: Module,
    buffer_cells: Dict[str, Tuple[str, str]],
    protected_nets: Optional[Set[str]] = None,
) -> int:
    """Remove buffer cells, short-circuiting input to output.

    ``buffer_cells`` maps cell name -> (input pin, output pin).  A buffer
    whose output is a port bit (or protected) keeps its output name: the
    sinks are moved and the buffer is dropped only when the output net can
    be merged away.  Returns the number of buffers removed.
    """
    port_bits = set(module.port_bits())
    protected = set(protected_nets or ())
    removed = 0
    for inst_name in list(module.instances):
        inst = module.instances.get(inst_name)
        if inst is None or inst.cell not in buffer_cells:
            continue
        in_net, out_net = _single_input_output(
            module, inst_name, buffer_cells[inst.cell]
        )
        if in_net is None or out_net is None or in_net == out_net:
            continue
        if out_net in port_bits or out_net in protected:
            continue
        module.remove_instance(inst_name)
        module.merge_nets(in_net, out_net)
        removed += 1
    return removed


def remove_inverter_pairs(
    module: Module,
    inverter_cells: Dict[str, Tuple[str, str]],
    cell_info,
    protected_nets: Optional[Set[str]] = None,
) -> int:
    """Remove back-to-back inverter pairs (a logical buffer).

    The intermediate net must have the second inverter as its *only*
    sink, and neither intermediate nor final net may be a port bit.
    ``cell_info`` provides pin directions for sink counting.
    """
    from .index import ConnectivityIndex

    index = ConnectivityIndex(module, cell_info)
    port_bits = set(module.port_bits())
    protected = set(protected_nets or ())
    removed = 0
    for first_name in list(module.instances):
        first = module.instances.get(first_name)
        if first is None or first.cell not in inverter_cells:
            continue
        in_net, mid_net = _single_input_output(
            module, first_name, inverter_cells[first.cell]
        )
        if in_net is None or mid_net is None:
            continue
        if mid_net in port_bits or mid_net in protected:
            continue
        sinks = index.sinks_of(mid_net)
        if len(sinks) != 1 or sinks[0].instance is None:
            continue
        second = module.instances.get(sinks[0].instance)
        if second is None or second.cell not in inverter_cells:
            continue
        second_in, out_net = _single_input_output(
            module, second.name, inverter_cells[second.cell]
        )
        if second_in != mid_net or out_net is None:
            continue
        if out_net in port_bits or out_net in protected:
            continue
        second_name = second.name
        module.remove_instance(first_name)
        module.remove_instance(second_name)
        module.merge_nets(in_net, out_net)
        module.remove_net(mid_net)
        removed += 2
    return removed


def clean_logic(module: Module, gatefile, protected_nets=None) -> Dict[str, int]:
    """Full logic cleaning pass driven by a gatefile.

    Removes buffers and double inverters so grouping sees only true data
    dependencies.  Returns counts of removed cells per category.
    """
    with trace.span("clean_logic", instances=len(module.instances)) as span:
        buffers = {
            name: (info.data_inputs[0], info.outputs[0])
            for name, info in gatefile.cells.items()
            if info.is_buffer
        }
        inverters = {
            name: (info.data_inputs[0], info.outputs[0])
            for name, info in gatefile.cells.items()
            if info.is_inverter
        }
        removed_buffers = remove_buffers(module, buffers, protected_nets)
        removed_inverters = remove_inverter_pairs(
            module, inverters, gatefile, protected_nets
        )
        span.set("buffers", removed_buffers)
        span.set("inverter_pairs", removed_inverters)
    metrics.counter("netlist.clean.buffers_removed").inc(removed_buffers)
    metrics.counter("netlist.clean.inverter_cells_removed").inc(
        removed_inverters
    )
    return {"buffers": removed_buffers, "inverter_pairs": removed_inverters}
