"""BLIF export (section 3.2.7: "BLIF format for exporting to SIS").

Only the structural subset is emitted: ``.model`` / ``.inputs`` /
``.outputs`` / ``.gate`` lines, with constants expressed as single-output
cover commands.  This is enough for SIS-style downstream tools and for
round-trip testing of the exporter.
"""

from __future__ import annotations

from typing import List

from .core import Module, Netlist


def write_blif_module(module: Module) -> str:
    lines: List[str] = [f".model {module.name}"]
    inputs = module.port_bits(direction=None)
    in_bits: List[str] = []
    out_bits: List[str] = []
    for port in module.ports.values():
        target = in_bits if port.direction.value == "input" else out_bits
        target.extend(port.bit_names())
    if in_bits:
        lines.append(".inputs " + " ".join(in_bits))
    if out_bits:
        lines.append(".outputs " + " ".join(out_bits))
    for value in (0, 1):
        name = f"__const{value}__"
        net = module.nets.get(name)
        if net is not None and net.connections:
            lines.append(f".names {name}")
            if value == 1:
                lines.append("1")
    for lhs, rhs in module.assigns:
        lines.append(f".names {rhs} {lhs}")
        lines.append("1 1")
    for inst in module.instances.values():
        bindings = " ".join(
            f"{pin}={net}" for pin, net in sorted(inst.pins.items())
        )
        lines.append(f".gate {inst.cell} {bindings}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(netlist: Netlist) -> str:
    """Render the whole design; the top model comes first (SIS style)."""
    chunks = [write_blif_module(netlist.top)]
    for name, module in netlist.modules.items():
        if name != netlist.top.name:
            chunks.append(write_blif_module(module))
    return "\n".join(chunks)


def save_blif(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(write_blif(netlist))
