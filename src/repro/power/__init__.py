"""Power estimation from simulated switching activity."""

from .estimate import (
    ActivityProfile,
    PowerReport,
    WindowedActivityRecorder,
    activity_from_simulation,
    activity_from_vcd,
    activity_from_window,
    estimate_power,
)

__all__ = [
    "ActivityProfile",
    "PowerReport",
    "WindowedActivityRecorder",
    "activity_from_simulation",
    "activity_from_vcd",
    "activity_from_window",
    "estimate_power",
]
