"""Power estimation from simulated switching activity."""

from .estimate import (
    ActivityProfile,
    PowerReport,
    activity_from_simulation,
    estimate_power,
)

__all__ = [
    "ActivityProfile",
    "PowerReport",
    "activity_from_simulation",
    "estimate_power",
]
