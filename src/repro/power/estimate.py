"""Switching-activity power estimation (the paper's VCD -> SAIF -> DC
power-report path, section 5.2.3, at model fidelity).

The simulator counts toggles per net; this module converts them into

- **net switching power**: ``0.5 * C_net * Vdd^2`` per toggle, with net
  capacitance from pin caps plus routed wire caps when annotated,
- **cell internal power**: the library's per-toggle internal energy at
  each driver, scaled by ``(Vdd / Vnom)^2``,
- **leakage**: the summed cell leakage, exponentially sensitive to
  voltage and temperature the way 90nm libraries are.

Units: pF * V^2 = pJ; pJ / ns = mW -- so reports are directly in mW.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..liberty.model import Library
from ..netlist.core import Module, PortDirection
from ..sim.simulator import Simulator
from ..sta.graph import compute_net_loads

#: nominal supply of the 90nm-class libraries
NOMINAL_VDD = 1.0


@dataclass
class ActivityProfile:
    """Toggle counts over a simulated window (the SAIF stand-in)."""

    toggles: Dict[str, int] = field(default_factory=dict)
    duration_ns: float = 0.0
    #: output toggles per driving instance (for internal power)
    instance_toggles: Dict[str, int] = field(default_factory=dict)


def activity_from_simulation(
    simulator: Simulator, duration_ns: Optional[float] = None
) -> ActivityProfile:
    """Extract the activity profile from a finished simulation."""
    profile = ActivityProfile(
        toggles=dict(simulator.toggle_counts),
        duration_ns=duration_ns if duration_ns is not None else simulator.now,
    )
    module = simulator.module
    library = simulator.library
    for inst in module.instances.values():
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        count = 0
        for pin in cell.output_pins():
            net = inst.pins.get(pin)
            if net is not None:
                count += profile.toggles.get(net, 0)
        profile.instance_toggles[inst.name] = count
    return profile


@dataclass
class PowerReport:
    switching_mw: float = 0.0
    internal_mw: float = 0.0
    leakage_mw: float = 0.0

    @property
    def total_mw(self) -> float:
        return self.switching_mw + self.internal_mw + self.leakage_mw


def estimate_power(
    module: Module,
    library: Library,
    activity: ActivityProfile,
    corner: str = "worst",
) -> PowerReport:
    """Estimate total power for a simulated activity window."""
    if activity.duration_ns <= 0:
        raise ValueError("activity window has zero duration")
    corner_info = library.corner(corner)
    vdd = corner_info.voltage
    volt_sq = (vdd / NOMINAL_VDD) ** 2

    loads = compute_net_loads(module, library)
    switching_pj = 0.0
    for net, count in activity.toggles.items():
        cap = loads.get(net, 0.0)
        switching_pj += 0.5 * cap * vdd * vdd * count

    internal_pj = 0.0
    leakage_uw = 0.0
    for inst in module.instances.values():
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        toggles = activity.instance_toggles.get(inst.name, 0)
        internal_pj += cell.switch_energy * volt_sq * toggles
        leakage_uw += cell.leakage

    # leakage sensitivity: ~2.2x per 100C and ~e^(dV/0.1) at 90nm
    temp_factor = 2.2 ** ((corner_info.temperature - 25.0) / 100.0)
    volt_factor = math.exp((vdd - NOMINAL_VDD) / 0.1) if vdd else 1.0
    leakage_mw = leakage_uw * temp_factor * volt_factor / 1000.0

    return PowerReport(
        switching_mw=switching_pj / activity.duration_ns,
        internal_mw=internal_pj / activity.duration_ns,
        leakage_mw=leakage_mw,
    )
