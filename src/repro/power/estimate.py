"""Switching-activity power estimation (the paper's VCD -> SAIF -> DC
power-report path, section 5.2.3, at model fidelity).

The simulator counts toggles per net; this module converts them into

- **net switching power**: ``0.5 * C_net * Vdd^2`` per toggle, with net
  capacitance from pin caps plus routed wire caps when annotated,
- **cell internal power**: the library's per-toggle internal energy at
  each driver, scaled by ``(Vdd / Vnom)^2``,
- **leakage**: the summed cell leakage, exponentially sensitive to
  voltage and temperature the way 90nm libraries are.

Units: pF * V^2 = pJ; pJ / ns = mW -- so reports are directly in mW.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..liberty.model import Library
from ..netlist.core import Module, PortDirection
from ..sim.simulator import Simulator
from ..sta.graph import compute_net_loads

#: nominal supply of the 90nm-class libraries
NOMINAL_VDD = 1.0


@dataclass
class ActivityProfile:
    """Toggle counts over a simulated window (the SAIF stand-in)."""

    toggles: Dict[str, int] = field(default_factory=dict)
    duration_ns: float = 0.0
    #: output toggles per driving instance (for internal power)
    instance_toggles: Dict[str, int] = field(default_factory=dict)


def activity_from_simulation(
    simulator: Simulator, duration_ns: Optional[float] = None
) -> ActivityProfile:
    """Extract the activity profile from a finished simulation."""
    profile = ActivityProfile(
        toggles=dict(simulator.toggle_counts),
        duration_ns=duration_ns if duration_ns is not None else simulator.now,
    )
    _fill_instance_toggles(profile, simulator.module, simulator.library)
    return profile


def _fill_instance_toggles(
    profile: ActivityProfile, module: Module, library: Library
) -> None:
    """Derive per-driver output toggles from the net toggle map."""
    for inst in module.instances.values():
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        count = 0
        for pin in cell.output_pins():
            net = inst.pins.get(pin)
            if net is not None:
                count += profile.toggles.get(net, 0)
        profile.instance_toggles[inst.name] = count


class WindowedActivityRecorder:
    """Count toggles inside a time window via ``watch_nets``.

    Attach before running, then build one or more
    :class:`ActivityProfile` slices with :func:`activity_from_window`::

        recorder = WindowedActivityRecorder(sim)
        testbench.run_items(32)
        profile = activity_from_window(recorder, start_ns=warmup_end)

    Toggle semantics match ``Simulator.toggle_counts`` exactly (every
    committed change to a defined value counts), so a whole-run window
    reproduces :func:`activity_from_simulation` -- the point is cutting
    out reset/warmup or isolating a phase of interest.  With ``nets``
    the recorder only subscribes to (and only ever counts) that subset.
    """

    def __init__(self, simulator: Simulator, nets=None):
        self.simulator = simulator
        #: per-net list of change times (defined values only)
        self.changes: Dict[str, list] = {}
        self.attached_at = simulator.now
        simulator.watch_nets(self._on_change, nets=nets)

    def _on_change(self, now: float, net: str, value) -> None:
        if value is None:
            return
        times = self.changes.get(net)
        if times is None:
            times = self.changes[net] = []
        times.append(now)

    def window_toggles(
        self,
        start_ns: Optional[float] = None,
        end_ns: Optional[float] = None,
    ) -> Dict[str, int]:
        """Toggles per net restricted to ``[start_ns, end_ns]``."""
        toggles: Dict[str, int] = {}
        for net, times in self.changes.items():
            if start_ns is None and end_ns is None:
                count = len(times)
            else:
                lo = start_ns if start_ns is not None else float("-inf")
                hi = end_ns if end_ns is not None else float("inf")
                count = sum(1 for t in times if lo <= t <= hi)
            if count:
                toggles[net] = count
        return toggles


def activity_from_window(
    recorder: WindowedActivityRecorder,
    start_ns: Optional[float] = None,
    end_ns: Optional[float] = None,
) -> ActivityProfile:
    """Build an :class:`ActivityProfile` from a recorded time window."""
    simulator = recorder.simulator
    if start_ns is None:
        start_ns = recorder.attached_at
    if end_ns is None:
        end_ns = simulator.now
    if end_ns <= start_ns:
        raise ValueError("activity window has zero duration")
    profile = ActivityProfile(
        toggles=recorder.window_toggles(start_ns, end_ns),
        duration_ns=end_ns - start_ns,
    )
    _fill_instance_toggles(profile, simulator.module, simulator.library)
    return profile


def activity_from_vcd(
    vcd,
    module: Module,
    library: Library,
    start_ns: Optional[float] = None,
    end_ns: Optional[float] = None,
) -> ActivityProfile:
    """Build an :class:`ActivityProfile` from a VCD waveform.

    This is the paper's VCD -> SAIF path made literal: ``vcd`` is a
    file path or a dump already parsed by
    :func:`repro.obs.vcd.read_vcd`; changes to a defined value inside
    the window become toggles (the initial ``$dumpvars`` snapshot does
    not count, matching the simulator's own toggle bookkeeping).
    """
    if isinstance(vcd, str):
        from ..obs.vcd import read_vcd

        vcd = read_vcd(vcd)
    lo = start_ns if start_ns is not None else float("-inf")
    hi = end_ns if end_ns is not None else float("inf")
    toggles: Dict[str, int] = {}
    for time_ns, net, value in vcd["changes"]:
        if value is None or not (lo <= time_ns <= hi):
            continue
        toggles[net] = toggles.get(net, 0) + 1
    if start_ns is None:
        start_ns = 0.0
    if end_ns is None:
        end_ns = vcd["end_time_ns"]
    duration = end_ns - start_ns
    if duration <= 0:
        raise ValueError("activity window has zero duration")
    profile = ActivityProfile(toggles=toggles, duration_ns=duration)
    _fill_instance_toggles(profile, module, library)
    return profile


@dataclass
class PowerReport:
    switching_mw: float = 0.0
    internal_mw: float = 0.0
    leakage_mw: float = 0.0

    @property
    def total_mw(self) -> float:
        return self.switching_mw + self.internal_mw + self.leakage_mw


def estimate_power(
    module: Module,
    library: Library,
    activity: ActivityProfile,
    corner: str = "worst",
) -> PowerReport:
    """Estimate total power for a simulated activity window."""
    if activity.duration_ns <= 0:
        raise ValueError("activity window has zero duration")
    corner_info = library.corner(corner)
    vdd = corner_info.voltage
    volt_sq = (vdd / NOMINAL_VDD) ** 2

    loads = compute_net_loads(module, library)
    switching_pj = 0.0
    for net, count in activity.toggles.items():
        cap = loads.get(net, 0.0)
        switching_pj += 0.5 * cap * vdd * vdd * count

    internal_pj = 0.0
    leakage_uw = 0.0
    for inst in module.instances.values():
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        toggles = activity.instance_toggles.get(inst.name, 0)
        internal_pj += cell.switch_energy * volt_sq * toggles
        leakage_uw += cell.leakage

    # leakage sensitivity: ~2.2x per 100C and ~e^(dV/0.1) at 90nm
    temp_factor = 2.2 ** ((corner_info.temperature - 25.0) / 100.0)
    volt_factor = math.exp((vdd - NOMINAL_VDD) / 0.1) if vdd else 1.0
    leakage_mw = leakage_uw * temp_factor * volt_factor / 1000.0

    return PowerReport(
        switching_mw=switching_pj / activity.duration_ns,
        internal_mw=internal_pj / activity.duration_ns,
        leakage_mw=leakage_mw,
    )
