"""Complex-gate synthesis of speed-independent controllers from STGs.

The paper's latch controllers "have been designed from a Signal
Transition Graph specification in the petrify tool" (section 3.1.3) and
mapped by hand *without decomposing the gates* so they stay hazard-free.
This module is the petrify-lite equivalent:

1. explore the STG's reachability graph,
2. verify Complete State Coding (CSC),
3. extract, for every output/internal signal, the *next-state function*
   over the signal vector (unreachable vectors become don't-cares),
4. minimise it with Quine-McCluskey + greedy prime-implicant cover.

Each resulting function is a single complex gate with the signal itself
among its inputs whenever it must hold state (a generalized C-element).
The mapped controller is hazard-free by construction under the
speed-independence assumption because each excitation function is
implemented atomically, never decomposed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..liberty.functions import Const, Expr, Not, Op, Var
from .petri import ReachabilityGraph, Stg, StgError, csc_conflicts, explore


class SynthesisError(Exception):
    """Raised when an STG cannot be implemented as complex gates."""


# ----------------------------------------------------------------------
# Quine-McCluskey
# ----------------------------------------------------------------------

def _combine(a: str, b: str) -> Optional[str]:
    """Combine two implicant cubes differing in exactly one literal."""
    diff = 0
    out = []
    for bit_a, bit_b in zip(a, b):
        if bit_a == bit_b:
            out.append(bit_a)
        elif "-" in (bit_a, bit_b):
            return None
        else:
            diff += 1
            out.append("-")
    if diff != 1:
        return None
    return "".join(out)


def _covers(cube: str, minterm: int, width: int) -> bool:
    for position, bit in enumerate(cube):
        value = (minterm >> (width - 1 - position)) & 1
        if bit != "-" and int(bit) != value:
            return False
    return True


def prime_implicants(
    on_set: Set[int], dc_set: Set[int], width: int
) -> List[str]:
    """All prime implicants of on_set over on+dc minterms."""
    current = {
        format(m, f"0{width}b") for m in on_set | dc_set
    }
    primes: Set[str] = set()
    while current:
        combined: Set[str] = set()
        used: Set[str] = set()
        current_list = sorted(current)
        for a, b in itertools.combinations(current_list, 2):
            merged = _combine(a, b)
            if merged is not None:
                combined.add(merged)
                used.add(a)
                used.add(b)
        primes.update(current - used)
        current = combined
    return sorted(primes)


def minimal_cover(
    on_set: Set[int], dc_set: Set[int], width: int
) -> List[str]:
    """Greedy prime-implicant cover of the ON-set (essential PIs first)."""
    if not on_set:
        return []
    primes = prime_implicants(on_set, dc_set, width)
    coverage = {
        cube: {m for m in on_set if _covers(cube, m, width)} for cube in primes
    }
    chosen: List[str] = []
    remaining = set(on_set)
    # essential primes
    for minterm in sorted(on_set):
        covering = [cube for cube in primes if minterm in coverage[cube]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            remaining -= coverage[covering[0]]
    # greedy for the rest
    while remaining:
        best = max(
            primes,
            key=lambda cube: (len(coverage[cube] & remaining), -cube.count("-")),
        )
        if not coverage[best] & remaining:
            raise SynthesisError("cover construction failed")
        chosen.append(best)
        remaining -= coverage[best]
    return chosen


def cubes_to_expr(cubes: Sequence[str], variables: Sequence[str]) -> Expr:
    """Render a cube cover as a liberty-style expression AST."""
    if not cubes:
        return Const(0)
    terms: List[Expr] = []
    for cube in cubes:
        literals: List[Expr] = []
        for position, bit in enumerate(cube):
            if bit == "1":
                literals.append(Var(variables[position]))
            elif bit == "0":
                literals.append(Not(Var(variables[position])))
        if not literals:
            return Const(1)
        terms.append(literals[0] if len(literals) == 1 else Op("and", tuple(literals)))
    if len(terms) == 1:
        return terms[0]
    return Op("or", tuple(terms))


# ----------------------------------------------------------------------
# next-state function extraction
# ----------------------------------------------------------------------

@dataclass
class ControllerImplementation:
    """Complex-gate implementation: one next-state function per signal."""

    stg: Stg
    #: output/internal signal -> expression over all STG signals
    functions: Dict[str, Expr]
    #: reachable signal vectors (for verification)
    reachable_codes: Set[Tuple[int, ...]]

    @property
    def signal_order(self) -> List[str]:
        return self.stg.signals


def synthesize(stg: Stg, graph: Optional[ReachabilityGraph] = None) -> ControllerImplementation:
    """Derive minimised next-state functions for every non-input signal."""
    if graph is None:
        graph = explore(stg)
    conflicts = csc_conflicts(graph)
    if conflicts:
        ia, ib = conflicts[0]
        raise SynthesisError(
            f"STG violates CSC: states {ia} and {ib} share a signal code "
            "but enable different outputs"
        )
    signals = stg.signals
    width = len(signals)
    non_input = stg.non_input_signals()

    # per signal: ON/OFF sets over signal vectors
    next_value: Dict[str, Dict[Tuple[int, ...], int]] = {
        s: {} for s in non_input
    }
    for state_index, (marking, values) in enumerate(graph.states):
        enabled = {
            graph.stg.transitions[ti]
            for ti, _ in graph.edges.get(state_index, [])
        }
        for signal in non_input:
            position = signals.index(signal)
            value = values[position]
            nxt = value
            for transition in enabled:
                if transition.signal == signal:
                    nxt = 1 if transition.polarity else 0
            previous = next_value[signal].get(values)
            if previous is not None and previous != nxt:
                raise SynthesisError(
                    f"inconsistent next-state for {signal!r} at code {values}"
                )
            next_value[signal][values] = nxt

    reachable = {values for _, values in graph.states}
    all_codes = set(itertools.product((0, 1), repeat=width))
    dc_codes = all_codes - reachable

    def code_to_int(code: Tuple[int, ...]) -> int:
        out = 0
        for bit in code:
            out = (out << 1) | bit
        return out

    functions: Dict[str, Expr] = {}
    for signal in non_input:
        on_set = {
            code_to_int(code)
            for code, value in next_value[signal].items()
            if value == 1
        }
        dc_set = {code_to_int(code) for code in dc_codes}
        cover = minimal_cover(on_set, dc_set, width)
        functions[signal] = cubes_to_expr(cover, signals)
    return ControllerImplementation(stg, functions, reachable)


def verify_implementation(impl: ControllerImplementation) -> bool:
    """Closed-loop check: gate feedback reproduces exactly the STG's
    reachable transitions for the non-input signals.

    For every reachable code, each output's function value must equal
    the extracted next-state value (1-step correctness); speed-
    independence then follows from CSC + atomic complex gates.
    """
    from ..liberty.functions import evaluate

    stg = impl.stg
    graph = explore(stg)
    signals = stg.signals
    for state_index, (marking, values) in enumerate(graph.states):
        env = dict(zip(signals, values))
        enabled = {
            graph.stg.transitions[ti]
            for ti, _ in graph.edges.get(state_index, [])
        }
        for signal, expr in impl.functions.items():
            expected = env[signal]
            for transition in enabled:
                if transition.signal == signal:
                    expected = 1 if transition.polarity else 0
            if evaluate(expr, env) != expected:
                return False
    return True
