"""Flow-equivalence analysis of pairwise latch-enable protocols.

Flow-equivalence [Le Guernic et al.; proved for desynchronization by
Blunno et al.] requires every sequential element of the desynchronized
circuit to see the exact data sequence of its synchronous counterpart.

For a protocol over two adjacent transparent-high latch enables A
(upstream) and B (downstream) we check it by *explicit data-token
simulation* over the protocol's full state space:

- the upstream environment presents item ``n`` and advances to ``n+1``
  as soon as A captures (fires ``A-``),
- a transparent latch propagates its input; a closing edge captures it,
- the value B sees is therefore the live input item while A is
  transparent (the empty-micropipeline flow-through case) and A's
  latched item otherwise,
- B's k-th capture must be item ``k`` -- item skipped = **overwrite**,
  item repeated = **duplication**.

The exploration covers every reachable (marking, signals, token-offset)
combination, so a ``None`` verdict is exhaustive for the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .petri import Stg, StgError


@dataclass
class FlowViolation:
    kind: str  # "overwrite" | "duplication" | "deadlock"
    trace: List[str]


def check_flow_equivalence(
    stg: Stg,
    upstream: str = "A",
    downstream: str = "B",
    max_states: int = 200000,
) -> Optional[FlowViolation]:
    """Return the first flow-equivalence violation, or None if safe."""
    signals = stg.signals
    up_pos = signals.index(upstream)

    # augmented state: (stg state, input_item - cb, a_latched - cb or None)
    initial_key = (stg.initial_state(), 0, None)
    seen = {initial_key}
    frontier: List[Tuple[Tuple, int, Optional[int], List[str]]] = [
        (stg.initial_state(), 0, None, [])
    ]
    while frontier:
        state, input_offset, latched_offset, trace = frontier.pop()
        enabled = stg.enabled(state)
        if not enabled:
            return FlowViolation("deadlock", trace)
        for transition_index in enabled:
            transition = stg.transitions[transition_index]
            new_state = stg.fire(state, transition_index)
            _, values = new_state
            new_input = input_offset
            new_latched = latched_offset
            new_trace = trace + [transition.name]
            if transition.signal == upstream and not transition.polarity:
                # A captures the current item, environment advances
                new_latched = input_offset
                new_input = input_offset + 1
            if transition.signal == downstream and not transition.polarity:
                # B captures: live input if A transparent, else A's item
                if values[up_pos]:
                    captured = new_input
                else:
                    if new_latched is None:
                        return FlowViolation("duplication", new_trace)
                    captured = new_latched
                if captured > 0:
                    return FlowViolation("overwrite", new_trace)
                if captured < 0:
                    return FlowViolation("duplication", new_trace)
                # B consumed item cb: re-base offsets
                new_input = new_input - 1
                if new_latched is not None:
                    new_latched = new_latched - 1
            if abs(new_input) > 3 or (
                new_latched is not None and abs(new_latched) > 3
            ):
                return FlowViolation("overwrite", new_trace)
            key = (new_state, new_input, new_latched)
            if key not in seen:
                seen.add(key)
                if len(seen) > max_states:
                    raise StgError("state explosion in flow-equivalence check")
                frontier.append((new_state, new_input, new_latched, new_trace))
    return None
