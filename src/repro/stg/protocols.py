"""The desynchronization protocol zoo of Figure 2.4.

The figure orders handshake protocols between two adjacent latch enables
A (upstream) and B (downstream) by allowed concurrency:

========================  ======  =====================================
protocol                  states  classification
========================  ======  =====================================
overlapping               --      NOT flow-equivalent (overwrites data)
fully-decoupled           10      live and flow-equivalent
de-synchronization model   8      live and flow-equivalent
semi-decoupled             6      live and flow-equivalent
simple                     5      live and flow-equivalent
non-overlapping            4      live and flow-equivalent
fall-decoupled             --     NOT live (fails in composition)
========================  ======  =====================================

The STGs here are reconstructions: the original arc drawings are not
recoverable from the thesis scan, so each protocol was re-derived from
its published state count, its live / flow-equivalent classification
and its concurrency ordering, then verified with this package's
reachability, liveness and flow-equivalence analyses (the verification
is repeated in the test suite and in ``benchmarks/bench_fig_2_4.py``).

Ring composition uses the synchronous-reset marking recipe: a place
``src -> dst`` starts marked iff ``src``'s latest conceptual firing in
the frozen synchronous schedule (master+ master- slave+ slave-) is more
recent than ``dst``'s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .flowequiv import FlowViolation, check_flow_equivalence
from .petri import ReachabilityGraph, Stg, StgError, explore, is_live


@dataclass
class Protocol:
    """One pairwise latch-enable handshake protocol."""

    name: str
    #: causal arcs over edges of A, B and optional internal signal x
    arcs: List[Tuple[str, str]]
    #: arcs initially marked in the *pairwise* STG
    marked: List[Tuple[str, str]] = field(default_factory=list)
    #: canonical firing positions for internal-signal edges (ring recipe)
    internal_positions: Dict[str, float] = field(default_factory=dict)
    #: the state count printed in Figure 2.4 (None when the figure
    #: characterises the protocol only by its failure)
    paper_states: Optional[int] = None
    description: str = ""

    @property
    def has_internal(self) -> bool:
        return any("x" in src + dst for src, dst in self.arcs + self.marked)

    # ------------------------------------------------------------------
    def pairwise_stg(self) -> Stg:
        internal = ["x"] if self.has_internal else []
        stg = Stg(outputs=["A", "B"], internal=internal)
        for src, dst in self.arcs:
            stg.arc(src, dst)
        for src, dst in self.marked:
            stg.arc(src, dst, marked=True)
        return stg

    def state_count(self) -> int:
        return explore(self.pairwise_stg()).state_count

    def is_live_pairwise(self) -> bool:
        return is_live(explore(self.pairwise_stg()))

    def flow_violation(self) -> Optional[FlowViolation]:
        return check_flow_equivalence(self.pairwise_stg())

    @property
    def is_flow_equivalent(self) -> bool:
        return self.flow_violation() is None

    # ------------------------------------------------------------------
    def ring_stg(self, n_latches: int) -> Stg:
        """Compose the protocol around a ring of ``n_latches`` latches."""
        if n_latches < 2:
            raise StgError("a ring needs at least two latches")
        names = [f"L{i}" for i in range(n_latches)]
        internal = (
            [f"x{i}" for i in range(n_latches)] if self.has_internal else []
        )
        stg = Stg(outputs=names, internal=internal)
        all_arcs = self.arcs + self.marked
        for i in range(n_latches):
            parity_a = i % 2
            parity_b = (i + 1) % 2
            a, b = names[i], names[(i + 1) % n_latches]

            def substitute(edge: str) -> str:
                return (
                    edge.replace("A", a).replace("B", b).replace("x", f"x{i}")
                )

            def position(edge: str) -> float:
                if edge.startswith("x"):
                    return self.internal_positions[edge]
                parity = parity_a if edge.startswith("A") else parity_b
                phase = 0 if edge.endswith("+") else 1
                return (0 if parity == 0 else 2) + phase

            for src, dst in all_arcs:
                stg.arc(
                    substitute(src),
                    substitute(dst),
                    marked=position(src) > position(dst),
                )
        return stg

    def ring_status(self, n_latches: int, max_states: int = 300000) -> str:
        """Liveness verdict for the ring composition.

        Returns ``"live"``, ``"deadlock"``, ``"dead_transitions"`` (some
        latch edge can never fire), ``"not_live"`` (fires but cannot
        always fire again) or ``"unsafe"`` (a place overflows -- the
        composition is not a well-formed circuit at all).
        """
        try:
            graph = explore(self.ring_stg(n_latches), max_states=max_states)
        except StgError:
            return "unsafe"
        fired = set()
        for successors in graph.edges.values():
            fired.update(ti for ti, _ in successors)
        if len(fired) != len(graph.stg.transitions):
            return "dead_transitions"
        if graph.deadlocks():
            return "deadlock"
        return "live" if is_live(graph) else "not_live"

    @property
    def is_usable(self) -> bool:
        """Usable for desynchronization: flow-equivalent AND composable."""
        return self.is_flow_equivalent and self.ring_status(4) == "live"


# ----------------------------------------------------------------------
# the zoo
# ----------------------------------------------------------------------

NON_OVERLAPPING = Protocol(
    name="non_overlapping",
    arcs=[("A-", "B+")],
    marked=[("B-", "A+")],
    paper_states=4,
    description=(
        "Adjacent enables never overlap: the upstream latch fully closes "
        "before the downstream one opens.  Least concurrent, always safe."
    ),
)

SIMPLE = Protocol(
    name="simple",
    arcs=[("A+", "B+"), ("A-", "B-")],
    marked=[("B-", "A+")],
    paper_states=5,
    description=(
        "Furber & Day's simple controller: the downstream latch opens as "
        "soon as the upstream one opened (empty-pipeline flow-through) "
        "and closes once the upstream one closed."
    ),
)

SEMI_DECOUPLED = Protocol(
    name="semi_decoupled",
    arcs=[("A+", "A-"), ("A+", "B+")],
    marked=[("B-", "A+")],
    paper_states=6,
    description=(
        "Furber & Day's semi-decoupled controller: the downstream capture "
        "is decoupled from the upstream closing edge; the upstream latch "
        "re-opens only after the downstream capture."
    ),
)

DESYNC_MODEL = Protocol(
    name="desync_model",
    arcs=[("A+", "A-"), ("A+", "B-"), ("B+", "B-")],
    marked=[("B-", "A+")],
    paper_states=8,
    description=(
        "The de-synchronization model of Cortadella et al.: maximally "
        "concurrent single-place protocol that is still flow-equivalent."
    ),
)

FULLY_DECOUPLED = Protocol(
    name="fully_decoupled",
    arcs=[("A-", "B+"), ("B-", "x+")],
    marked=[("B-", "A+"), ("x-", "B+")],
    internal_positions={"x+": 3.5, "x-": 3.75},
    paper_states=10,
    description=(
        "Furber & Day's fully-decoupled (rise-decoupled) controller: an "
        "internal state variable x pipelines the downstream re-opening "
        "permission, decoupling both handshake phases."
    ),
)

#: alias used by Figure 2.4 ("fully decoupled, rise-decoupled Furber & Day")
RISE_DECOUPLED = Protocol(
    name="rise_decoupled",
    arcs=list(FULLY_DECOUPLED.arcs),
    marked=list(FULLY_DECOUPLED.marked),
    internal_positions=dict(FULLY_DECOUPLED.internal_positions),
    paper_states=10,
    description="Alias of fully_decoupled (Figure 2.4 groups them).",
)

OVERLAPPING = Protocol(
    name="overlapping",
    arcs=[("A+", "A-"), ("A+", "B+"), ("B+", "B-")],
    marked=[("B+", "A+")],
    paper_states=None,
    description=(
        "Too concurrent: the upstream latch may re-open and capture new "
        "data before the downstream latch stored the previous item -- "
        "data overwriting, hence NOT flow-equivalent (top of Figure 2.4)."
    ),
)

FALL_DECOUPLED = Protocol(
    name="fall_decoupled",
    arcs=[("A+", "B+"), ("B+", "A-"), ("A-", "B-")],
    marked=[("B-", "A+")],
    paper_states=None,
    description=(
        "Falling edges coupled to the neighbour's rising edge: each latch "
        "may close only after its successor opened.  Pairwise it looks "
        "fine, but composed around a register ring the net loses safeness "
        "-- NOT usable (bottom of Figure 2.4: 'not live')."
    ),
)

#: the concurrency ladder of Figure 2.4, most concurrent first
PROTOCOL_LADDER: List[Protocol] = [
    OVERLAPPING,
    FULLY_DECOUPLED,
    DESYNC_MODEL,
    SEMI_DECOUPLED,
    SIMPLE,
    NON_OVERLAPPING,
    FALL_DECOUPLED,
]

PROTOCOLS: Dict[str, Protocol] = {
    p.name: p for p in PROTOCOL_LADDER + [RISE_DECOUPLED]
}


def ladder_report() -> List[Dict[str, object]]:
    """One row per Figure 2.4 protocol: states, liveness, flow-equivalence."""
    rows: List[Dict[str, object]] = []
    for protocol in PROTOCOL_LADDER:
        violation = protocol.flow_violation()
        rows.append(
            {
                "protocol": protocol.name,
                "paper_states": protocol.paper_states,
                "states": protocol.state_count(),
                "live_pairwise": protocol.is_live_pairwise(),
                "ring4": protocol.ring_status(4),
                "flow_equivalent": violation is None,
                "violation": violation.kind if violation else None,
                "usable": protocol.is_usable,
            }
        )
    return rows
