"""Signal Transition Graphs (STGs) and their state-space analysis.

STGs are interpreted Petri nets whose transitions are signal edges
(``a+`` / ``a-``).  They specify handshake protocols and controllers
(Figure 2.4, section 3.1.3).  This module provides:

- an STG builder (places created implicitly for causal arcs),
- reachability-graph exploration over (marking, signal-vector) states,
- the standard sanity properties: *consistency* (edges of each signal
  alternate), *boundedness* (places hold at most one token here),
  *deadlock-freedom* and *liveness* (every transition can always
  eventually fire again),
- *Complete State Coding* (CSC) detection, the prerequisite for the
  complex-gate synthesis in :mod:`repro.stg.synthesis`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Transition:
    """A signal edge: ``signal`` rising (+) or falling (-).

    ``tag`` distinguishes multiple occurrences of the same edge in one
    specification (rare; unused by the shipped protocols).
    """

    signal: str
    polarity: bool  # True = +, False = -
    tag: int = 0

    @property
    def name(self) -> str:
        suffix = "+" if self.polarity else "-"
        base = f"{self.signal}{suffix}"
        if self.tag:
            base += f"/{self.tag}"
        return base

    def __repr__(self) -> str:
        return self.name


def t(spec: str) -> Transition:
    """Parse ``"a+"`` / ``"b-"`` / ``"a+/1"`` shorthand."""
    if "/" in spec:
        edge, tag_text = spec.split("/")
        tag = int(tag_text)
    else:
        edge, tag = spec, 0
    signal, suffix = edge[:-1], edge[-1]
    if suffix not in "+-":
        raise ValueError(f"bad transition spec {spec!r}")
    return Transition(signal, suffix == "+", tag)


class StgError(Exception):
    """Raised on malformed STGs or exploration failures."""


#: state: (frozenset of marked place indices, tuple of signal values)
State = Tuple[FrozenSet[int], Tuple[int, ...]]


class Stg:
    """A signal transition graph with single-token implicit places."""

    def __init__(
        self,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        internal: Iterable[str] = (),
    ):
        self.inputs: List[str] = list(inputs)
        self.outputs: List[str] = list(outputs)
        self.internal: List[str] = list(internal)
        self.transitions: List[Transition] = []
        #: each place: (source transition index, target transition index)
        self.places: List[Tuple[int, int]] = []
        self.initial_marking: Set[int] = set()
        self.initial_values: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def signals(self) -> List[str]:
        return self.inputs + self.outputs + self.internal

    def non_input_signals(self) -> List[str]:
        return self.outputs + self.internal

    def _transition_index(self, transition: Transition) -> int:
        try:
            return self.transitions.index(transition)
        except ValueError:
            if transition.signal not in self.signals:
                raise StgError(f"unknown signal {transition.signal!r}")
            self.transitions.append(transition)
            return len(self.transitions) - 1

    def arc(self, src: str, dst: str, marked: bool = False) -> None:
        """Add a causal arc ``src -> dst`` with an implicit place."""
        src_idx = self._transition_index(t(src))
        dst_idx = self._transition_index(t(dst))
        self.places.append((src_idx, dst_idx))
        if marked:
            self.initial_marking.add(len(self.places) - 1)

    def arcs(self, *specs: Tuple[str, str], marked: Sequence[Tuple[str, str]] = ()) -> None:
        for src, dst in specs:
            self.arc(src, dst)
        for src, dst in marked:
            self.arc(src, dst, marked=True)

    def set_initial_values(self, **values: int) -> None:
        self.initial_values.update(values)

    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        values = tuple(self.initial_values.get(s, 0) for s in self.signals)
        return frozenset(self.initial_marking), values

    def enabled(self, state: State) -> List[int]:
        """Indices of transitions enabled in ``state``."""
        marking, values = state
        preset: Dict[int, List[int]] = {}
        for place, (src, dst) in enumerate(self.places):
            preset.setdefault(dst, []).append(place)
        out: List[int] = []
        signal_pos = {s: i for i, s in enumerate(self.signals)}
        for index, transition in enumerate(self.transitions):
            places = preset.get(index, [])
            if not all(p in marking for p in places):
                continue
            current = values[signal_pos[transition.signal]]
            # consistency: a+ only enabled when a=0, a- when a=1
            if transition.polarity == bool(current):
                continue
            out.append(index)
        return out

    def fire(self, state: State, transition_index: int) -> State:
        marking, values = state
        new_marking = set(marking)
        for place, (src, dst) in enumerate(self.places):
            if dst == transition_index:
                new_marking.discard(place)
        for place, (src, dst) in enumerate(self.places):
            if src == transition_index:
                if place in new_marking:
                    raise StgError(
                        f"unsafe net: place {place} receives a second token "
                        f"firing {self.transitions[transition_index]}"
                    )
                new_marking.add(place)
        transition = self.transitions[transition_index]
        signal_pos = self.signals.index(transition.signal)
        new_values = list(values)
        new_values[signal_pos] = 1 if transition.polarity else 0
        return frozenset(new_marking), tuple(new_values)


@dataclass
class ReachabilityGraph:
    """Explicit state space of an STG."""

    stg: Stg
    states: List[State] = field(default_factory=list)
    #: edges: state index -> list of (transition index, successor state index)
    edges: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    index: Dict[State, int] = field(default_factory=dict)

    @property
    def state_count(self) -> int:
        return len(self.states)

    def deadlocks(self) -> List[int]:
        return [i for i in range(len(self.states)) if not self.edges.get(i)]


def explore(stg: Stg, max_states: int = 100000) -> ReachabilityGraph:
    """Breadth-first reachability exploration."""
    graph = ReachabilityGraph(stg)
    initial = stg.initial_state()
    graph.states.append(initial)
    graph.index[initial] = 0
    frontier = [0]
    while frontier:
        next_frontier: List[int] = []
        for state_index in frontier:
            state = graph.states[state_index]
            successors: List[Tuple[int, int]] = []
            for transition_index in stg.enabled(state):
                new_state = stg.fire(state, transition_index)
                target = graph.index.get(new_state)
                if target is None:
                    target = len(graph.states)
                    graph.states.append(new_state)
                    graph.index[new_state] = target
                    next_frontier.append(target)
                    if target >= max_states:
                        raise StgError("state explosion during exploration")
                successors.append((transition_index, target))
            graph.edges[state_index] = successors
        frontier = next_frontier
    return graph


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------

def check_consistency(graph: ReachabilityGraph) -> bool:
    """Signal edges alternate by construction; verify every transition
    of the STG is actually fireable somewhere (no dead spec parts)."""
    fired: Set[int] = set()
    for successors in graph.edges.values():
        fired.update(transition for transition, _ in successors)
    return fired == set(range(len(graph.stg.transitions)))


def is_deadlock_free(graph: ReachabilityGraph) -> bool:
    return not graph.deadlocks()


def is_live(graph: ReachabilityGraph) -> bool:
    """Liveness: from every state, every transition can eventually fire."""
    if not is_deadlock_free(graph):
        return False
    n = len(graph.states)
    # reverse reachability per transition: states from which t is eventually
    # fireable = backward closure of states where t fires
    reverse: Dict[int, List[int]] = {i: [] for i in range(n)}
    for src, successors in graph.edges.items():
        for _, dst in successors:
            reverse[dst].append(src)
    for transition_index in range(len(graph.stg.transitions)):
        seeds = [
            src
            for src, successors in graph.edges.items()
            if any(ti == transition_index for ti, _ in successors)
        ]
        if not seeds:
            return False
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            node = stack.pop()
            for prev in reverse[node]:
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        if len(seen) != n:
            return False
    return True


def csc_conflicts(graph: ReachabilityGraph) -> List[Tuple[int, int]]:
    """Pairs of states violating Complete State Coding.

    Two states conflict when they share the same signal vector but the
    set of *enabled non-input transitions* differs -- the next-state
    function of some output would be ambiguous.
    """
    stg = graph.stg
    non_input = set(stg.non_input_signals())
    by_code: Dict[Tuple[int, ...], List[int]] = {}
    for index, (marking, values) in enumerate(graph.states):
        by_code.setdefault(values, []).append(index)
    conflicts: List[Tuple[int, int]] = []
    for code, state_indices in by_code.items():
        if len(state_indices) < 2:
            continue
        signatures = []
        for state_index in state_indices:
            enabled_out = frozenset(
                graph.stg.transitions[ti].name
                for ti, _ in graph.edges.get(state_index, [])
                if graph.stg.transitions[ti].signal in non_input
            )
            signatures.append((state_index, enabled_out))
        for (ia, sig_a), (ib, sig_b) in itertools.combinations(signatures, 2):
            if sig_a != sig_b:
                conflicts.append((ia, ib))
    return conflicts


def has_csc(graph: ReachabilityGraph) -> bool:
    return not csc_conflicts(graph)
