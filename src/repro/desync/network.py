"""Controller network insertion (sections 2.4.2, 2.4.5, 3.2.6).

For every region the flow places a master/slave latch-controller pair
driving the region's ``gm_*`` / ``gs_*`` enable nets, joins multiple
request or acknowledge sources with C-Muller elements, and puts the
region's matched delay element on its incoming request (Figure 2.11).

Environment boundaries become ports: a region reading primary inputs
gets ``ri_<region>`` (request in) / ``ai_<region>`` (acknowledge out),
a region driving primary outputs gets ``ro_<region>`` / ``ao_<region>``
-- exactly the request/acknowledge signals the paper says replace the
clock references in testbenches (section 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..liberty.gatefile import Gatefile
from ..liberty.model import Library
from ..liberty.techmap import GateChooser
from ..netlist.core import Module, PortDirection
from ..obs import metrics, trace
from ..sta.analysis import propagate
from ..sta.graph import build_timing_graph
from .cmuller import build_cmuller
from .controllers import ControllerInstance, place_controller
from .ddg import ENV, predecessors_of, successors_of
from .delays import (
    DelayElement,
    DelayLadder,
    build_delay_element,
    choose_length,
    element_length_for,
)
from .ffsub import master_enable_net, slave_enable_net
from .regions import RegionMap


class NetworkError(Exception):
    """Raised when the controller network cannot be built."""


@dataclass
class ControlNetwork:
    """Everything the insertion pass created, for constraints/reports."""

    controllers: Dict[Tuple[str, str], ControllerInstance] = field(
        default_factory=dict
    )
    delay_elements: Dict[str, DelayElement] = field(default_factory=dict)
    #: ack-matching delay elements (cover enable-tree insertion delay)
    ack_delays: Dict[str, DelayElement] = field(default_factory=dict)
    cmuller_instances: List[str] = field(default_factory=list)
    env_ports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    region_delays: Dict[str, float] = field(default_factory=dict)
    reset_net: str = "rst"

    def controller_instances(self) -> List[str]:
        """Names of every controller gate (3 complex gates per controller)."""
        out: List[str] = []
        for controller in self.controllers.values():
            out.extend(controller.gate_names)
        return out

    def handshake_nets(self) -> Dict[str, Dict[str, str]]:
        """Per-region handshake net names, post insertion/rerouting.

        The observability layer (``repro.sim.probes``) auto-discovers
        the nets to watch from this map instead of re-deriving the
        naming scheme.  Per active region:

        - ``req``      -- delayed request into the master (``req_<r>``)
        - ``req_src``  -- the joined request *before* the matched delay
          element (a predecessor's ``ys`` or the C-Muller join output)
        - ``xm``/``ym``/``gm`` -- master admission/request elements and
          enable pulse
        - ``xs``/``ys``/``gs`` -- the slave's counterparts
        - ``xma``      -- the ack-matching delayed acknowledge out
        - ``ack``      -- the acknowledge the slave actually sees
          (rerouted to the single source when no C-Muller was needed)
        """
        out: Dict[str, Dict[str, str]] = {}
        for (region, role), controller in self.controllers.items():
            if role != "master":
                continue
            slave = self.controllers[(region, "slave")]
            element = self.delay_elements.get(region)
            ack_element = self.ack_delays.get(region)
            nets = {
                "req": controller.ri_net,
                "req_src": element.input_net if element else controller.ri_net,
                "xm": controller.x_net,
                "ym": controller.y_net,
                "gm": controller.g_net,
                "xs": slave.x_net,
                "ys": slave.y_net,
                "gs": slave.g_net,
                "ack": slave.ao_net,
            }
            if ack_element is not None:
                nets["xma"] = ack_element.output_net
            out[region] = nets
        return out

    def delay_instances(self) -> List[str]:
        out: List[str] = []
        for element in self.delay_elements.values():
            out.extend(element.instances)
        for element in self.ack_delays.values():
            out.extend(element.instances)
        return out


def region_delays(
    module: Module,
    library: Library,
    region_map: RegionMap,
    corner: str = "worst",
    backend: str = "compiled",
) -> Dict[str, float]:
    """Critical-path delay of each region's cloud, one STA pass.

    Launch points are all sequential outputs; because regions are
    combinationally independent, the worst arrival at a region's
    sequential data inputs equals that region's cloud delay
    (section 3.2.5: "for each circuit region we compute the critical
    path delay of its combinational logic cloud").  The compiled
    backend reuses the module's cached flat graph (shared with
    ``analyze`` and the ECO loop) and rescales it to ``corner``.
    """
    if backend == "compiled":
        from ..sta.compiled import compiled_graph

        compiled = compiled_graph(module, library)
        derate = library.corner(corner).derate
        report = compiled.propagate(derate)
        capture_items = compiled.capture_items(derate)
    else:
        graph = build_timing_graph(module, library, corner)
        report = propagate(graph, backend=backend)
        capture_items = list(graph.capture_nodes.items())
    delays: Dict[str, float] = {name: 0.0 for name in region_map.regions}
    for node, setup in capture_items:
        instance = node[0]
        if instance is None:
            continue
        region = region_map.region_of(instance)
        if region is None:
            continue
        arrival = report.arrivals.get(node)
        if arrival is None:
            continue
        total = arrival + setup
        if total > delays.get(region, 0.0):
            delays[region] = total
    return delays


def insert_control_network(
    module: Module,
    library: Library,
    gatefile: Gatefile,
    region_map: RegionMap,
    ddg: "nx.DiGraph",
    ladder: DelayLadder,
    chooser: Optional[GateChooser] = None,
    delay_margin: float = 0.10,
    mux_taps: int = 0,
    mux_headroom: float = 2.2,
    reset_port: str = "rst",
    corner: str = "worst",
    precomputed_delays: Optional[Dict[str, float]] = None,
) -> ControlNetwork:
    """Replace the clock network by the handshake controller network.

    ``precomputed_delays`` short-circuits the per-region critical-path
    STA with delays the caller already knows (the incremental re-flow
    computes them through the warm compiled graph before deciding
    whether a full re-insertion is needed at all).
    """
    chooser = chooser or GateChooser(library)
    network = ControlNetwork(reset_net=reset_port)

    if reset_port not in module.ports:
        module.add_port(reset_port, PortDirection.INPUT)

    # regions that actually own latches participate in the handshake
    active = [
        name
        for name, region in sorted(region_map.regions.items())
        if region.sequential_instances(module, gatefile)
    ]
    if not active:
        raise NetworkError("no sequential regions: nothing to desynchronize")
    active_set = set(active)

    with trace.span("network.region_delays", regions=len(active)):
        network.region_delays = (
            dict(precomputed_delays)
            if precomputed_delays is not None
            else region_delays(module, library, region_map, corner)
        )

    # place the controller pairs first so every handshake net exists;
    # net names are deterministic (xm/ym/xs/ys per region) so that the
    # wiring loop below can reference neighbours before they are wired
    with trace.span("network.controllers", regions=len(active)):
        for region in active:
            gm = master_enable_net(region)
            gs = slave_enable_net(region)
            req_net = f"req_{region}"
            slave_ao = f"ack_{region}"
            module.ensure_net(req_net)
            module.ensure_net(slave_ao)
            master = place_controller(
                module, library, region, "master",
                ri_net=req_net, ao_net=f"ys_{region}", g_net=gm,
                rst_net=reset_port,
                x_net=f"xm_{region}", y_net=f"ym_{region}",
            )
            slave = place_controller(
                module, library, region, "slave",
                ri_net=f"ym_{region}", ao_net=slave_ao, g_net=gs,
                rst_net=reset_port,
                x_net=f"xs_{region}", y_net=f"ys_{region}",
            )
            network.controllers[(region, "master")] = master
            network.controllers[(region, "slave")] = slave

    # enable distribution: heavily loaded enable nets get a buffer tree
    # right away (the backend CTS would re-balance it, section 4.5.1);
    # then acknowledge-matching delays cover the remaining insertion
    # delay plus the capture pulse, so a predecessor can never overwrite
    # this region's input data before the (late) enable pulse captured it
    from ..physical.cts import synthesize_tree
    from ..sta.graph import compute_net_loads
    from .controllers import PULSE_GATE_CELL

    tree_levels: Dict[str, int] = {}
    with trace.span("network.enable_trees", regions=len(active)):
        for region in active:
            for net in (master_enable_net(region), slave_enable_net(region)):
                tree = synthesize_tree(module, library, net, max_fanout=12)
                tree_levels[net] = tree.levels

    loads = compute_net_loads(module, library)
    pulse_arc = library.cell(PULSE_GATE_CELL).delay_arcs()[0]
    buf_arc = library.cell("CKBUFX4").delay_arcs()[0]
    ladder_derate = library.corner(ladder.corner).derate
    # a tree level drives up to 12 buffer/latch pins
    level_delay = buf_arc.worst_delay(
        12 * library.cell("LDHX1").pins["G"].capacitance
    )
    pulse_width = 2 * library.cell("BUFX1").delay_arcs()[0].worst_delay(0.01)
    with trace.span("network.ack_delays", regions=len(active)):
        for region in active:
            gm = master_enable_net(region)
            insertion = (
                pulse_arc.worst_delay(loads.get(gm, 0.0))
                + tree_levels.get(gm, 0) * level_delay
            )
            # choose_length compares against the ladder at its own corner
            target = (insertion + pulse_width) * ladder_derate
            length = max(1, choose_length(ladder, target, margin=0.25))
            ack_element = build_delay_element(
                module,
                chooser,
                f"ack_{region}",
                f"xm_{region}",
                f"xma_{region}",
                length,
            )
            network.ack_delays[region] = ack_element

    def _through_inactive(start: str, forward: bool) -> List[str]:
        """Neighbours of ``start``, contracting latch-less regions.

        A region without sequential elements (an output-buffer cloud,
        for instance) has no controller; its data dependencies pass
        through to the next active region or the environment.
        """
        out: List[str] = []
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            neighbours = (
                successors_of(ddg, node)
                if forward
                else predecessors_of(ddg, node)
            )
            for neighbour in neighbours:
                if neighbour == start:
                    # a self-edge is a real dependency, keep it
                    if neighbour not in out:
                        out.append(neighbour)
                    continue
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                if neighbour == ENV or neighbour in active_set:
                    if neighbour not in out:
                        out.append(neighbour)
                else:
                    frontier.append(neighbour)
        return out

    with trace.span("network.wiring", regions=len(active)):
        for region in active:
            preds = _through_inactive(region, forward=False)
            succs = _through_inactive(region, forward=True)
            ports: Dict[str, str] = {}

            # ---- request side: preds' slave requests joined, then delayed
            request_sources: List[str] = []
            for pred in preds:
                if pred == ENV:
                    port = f"ri_{region}"
                    module.add_port(port, PortDirection.INPUT)
                    ports["ri"] = port
                    request_sources.append(port)
                else:
                    request_sources.append(f"ys_{pred}")
            if not request_sources:
                # source-less region: free-run from its own slave request
                request_sources = [f"ys_{region}"]

            if len(request_sources) == 1:
                joined = request_sources[0]
            else:
                joined = f"reqj_{region}"
                created = build_cmuller(
                    module,
                    request_sources,
                    joined,
                    chooser,
                    prefix=f"cm_req_{region}",
                    reset=reset_port,
                    attributes={"region": region, "role": "cmuller"},
                )
                network.cmuller_instances.extend(created)

            target_delay = network.region_delays.get(region, 0.0)
            # multiplexed elements are built with headroom so the post-layout
            # calibration can sweep the selection both below and above the
            # matched point (the DLX experiment, Figure 5.3)
            length = element_length_for(
                ladder, target_delay, delay_margin, mux_taps, mux_headroom
            )
            element = build_delay_element(
                module,
                chooser,
                region,
                joined,
                f"req_{region}",
                length,
                mux_taps=mux_taps,
            )
            network.delay_elements[region] = element

            if "ri" in ports:
                ai_port = f"ai_{region}"
                module.add_port(ai_port, PortDirection.OUTPUT)
                _buffer(module, chooser, f"xma_{region}", ai_port,
                        f"envai_{region}", network.cmuller_instances, region)
                ports["ai"] = ai_port

            # ---- acknowledge side: successors' master acknowledges joined
            ack_sources: List[str] = []
            for succ in succs:
                if succ == ENV:
                    ro_port = f"ro_{region}"
                    ao_port = f"ao_{region}"
                    module.add_port(ro_port, PortDirection.OUTPUT)
                    module.add_port(ao_port, PortDirection.INPUT)
                    _buffer(module, chooser, f"ys_{region}", ro_port,
                            f"envro_{region}", network.cmuller_instances, region)
                    ports["ro"] = ro_port
                    ports["ao"] = ao_port
                    ack_sources.append(ao_port)
                else:
                    ack_sources.append(f"xma_{succ}")
            if not ack_sources:
                # sink-less region: self-acknowledge through its own request
                ack_sources = [f"ys_{region}"]

            ack_net = f"ack_{region}"
            if len(ack_sources) == 1:
                # re-route the slave y-element's acknowledge input directly
                slave = network.controllers[(region, "slave")]
                module.connect(f"{slave.name}_y", "B", ack_sources[0])
                slave.ao_net = ack_sources[0]
                _drop_unused_net(module, ack_net)
            else:
                created = build_cmuller(
                    module,
                    ack_sources,
                    ack_net,
                    chooser,
                    prefix=f"cm_ack_{region}",
                    reset=reset_port,
                    attributes={"region": region, "role": "cmuller"},
                )
                network.cmuller_instances.extend(created)

            if ports:
                network.env_ports[region] = ports

    _remove_dead_clock_port(module, gatefile)
    return network


def _buffer(module, chooser, src, dst, prefix, created, region) -> None:
    cell, pins, out_pin = chooser.gate("buf")
    inst_name = module.new_name(prefix)
    inst = module.add_instance(inst_name, cell, {pins[0]: src, out_pin: dst})
    inst.attributes.update({"role": "env_buffer", "region": region})
    created.append(inst_name)


def _drop_unused_net(module: Module, net_name: str) -> None:
    net = module.nets.get(net_name)
    if net is not None and not net.connections:
        del module.nets[net_name]


def _remove_dead_clock_port(module: Module, gatefile: Gatefile) -> None:
    """Drop input ports whose nets feed no pins any more (the old clock)."""
    for port_name in list(module.ports):
        port = module.ports[port_name]
        if port.direction != PortDirection.INPUT:
            continue
        dead = True
        for bit in port.bit_names():
            net = module.nets.get(bit)
            if net is None:
                continue
            if any(ref.instance is not None for ref in net.connections):
                dead = False
                break
        if dead and _looks_like_clock(port_name):
            for bit in port.bit_names():
                net = module.nets.pop(bit, None)
            del module.ports[port_name]


def _looks_like_clock(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in ("clk", "clock", "ck"))


def diff_networks(
    old: ControlNetwork, new: ControlNetwork
) -> Dict[str, str]:
    """Per-region structural comparison of two control networks.

    Classifies every region of ``new`` as ``"reused"`` (same controller
    gates, same request/ack element lengths and taps -- the incremental
    flow kept the cached structure) or ``"resized"`` (the edit moved a
    region's critical path across a ladder step, or changed its
    controller complement).  Regions absent from ``old`` are
    ``"new"``.  Drives the ``flow.incr.*`` dashboard counters.
    """
    out: Dict[str, str] = {}
    old_regions = {region for region, _role in old.controllers}
    new_regions = {region for region, _role in new.controllers}
    for region in sorted(new_regions):
        if region not in old_regions:
            out[region] = "new"
            continue
        same = True
        for role in ("master", "slave"):
            old_ctl = old.controllers.get((region, role))
            new_ctl = new.controllers.get((region, role))
            if (old_ctl is None) != (new_ctl is None):
                same = False
            elif old_ctl is not None and (
                old_ctl.gate_names != new_ctl.gate_names
            ):
                same = False
        for mapping_old, mapping_new in (
            (old.delay_elements, new.delay_elements),
            (old.ack_delays, new.ack_delays),
        ):
            old_el = mapping_old.get(region)
            new_el = mapping_new.get(region)
            if (old_el is None) != (new_el is None):
                same = False
            elif old_el is not None and (
                old_el.length != new_el.length
                or old_el.taps != new_el.taps
            ):
                same = False
        out[region] = "reused" if same else "resized"
    return out
