"""Matched delay elements (sections 2.4.4, 3.1.4, 3.2.5).

A delay element mimics the critical-path delay of one region's
combinational cloud on the request line feeding that region's
controller.  Because the flow uses 4-phase controllers, the elements
are *asymmetric* (Figure 2.9): an AND-gate chain in which every stage
re-combines the chain with the raw input, so a rising edge ripples
through the whole chain (slow rise = matched delay) while a falling
edge collapses every stage in a single gate delay (fast fall = cheap
return-to-zero phase).

During library preparation the ladder of available lengths is
characterised once with STA (:func:`characterize_ladder`); during
circuit desynchronization :func:`choose_length` picks the shortest
length covering the region delay plus margin, and
:func:`build_delay_element` instantiates it -- optionally behind a
multiplexer tree so the effective length can be recalibrated after
layout (the DLX experiment uses 8-input multiplexed elements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..liberty.model import Library
from ..liberty.techmap import GateChooser
from ..netlist.core import Module, PortDirection
from ..obs import metrics, trace
from ..sta.analysis import propagate
from ..sta.graph import build_timing_graph

#: histogram buckets for delay-element chain lengths (logic levels)
LENGTH_BUCKETS = (1, 2, 5, 10, 20, 40, 60, 80, 120, 160, 240)
#: histogram buckets for ladder selection error in ns (delay over target)
SELECTION_ERROR_BUCKETS = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
)


class DelayElementError(Exception):
    """Raised for unsatisfiable delay requests."""


@dataclass
class DelayLadder:
    """Characterised rise delays per chain length, for one corner."""

    library_name: str
    corner: str
    #: rise delay in ns for chain length k (index 0 -> length 1)
    rise_delays: List[float] = field(default_factory=list)

    @property
    def max_length(self) -> int:
        return len(self.rise_delays)

    def delay_of(self, length: int) -> float:
        if not 1 <= length <= self.max_length:
            raise DelayElementError(
                f"length {length} outside characterised ladder "
                f"(1..{self.max_length})"
            )
        return self.rise_delays[length - 1]


def _chain_module(length: int, and_cell: str) -> Module:
    """Standalone AND-chain module used for characterisation."""
    module = Module(f"delem_{length}")
    module.add_port("a", PortDirection.INPUT)
    module.add_port("z", PortDirection.OUTPUT)
    previous = "a"
    for stage in range(length):
        out = "z" if stage == length - 1 else f"n{stage}"
        module.add_instance(
            f"u{stage}", and_cell, {"A": previous, "B": "a", "Z": out}
        )
        previous = out
    return module


#: characterised ladders per (library fingerprint, corner, length, cell)
_LADDER_MEMO: Dict[Tuple[str, str, int, str], DelayLadder] = {}
#: compiled chain graphs per (library fingerprint, length, cell) -- every
#: corner of one ladder family rescales the same base graph
_CHAIN_GRAPHS: Dict[Tuple[str, int, str], object] = {}


def _ladder_memo_key(
    library: Library, corner: str, max_length: int, and_cell: str
) -> Tuple[str, str, int, str]:
    from ..engine.cache import library_fingerprint

    return (library_fingerprint(library), corner, max_length, and_cell)


def characterize_ladder(
    library: Library,
    corner: str = "worst",
    max_length: int = 100,
    and_cell: str = "AND2X1",
    backend: str = "compiled",
    memoize: bool = True,
    cache=None,
) -> DelayLadder:
    """Measure the rise delay of every chain length with STA.

    Mirrors section 3.1.4: "we implement delay elements of variable
    logic depth, e.g. from 1 to 100 logic levels, and perform STA to
    measure their delay values."

    Results are memoised in-process per (library content, corner,
    length, cell); pass an :class:`repro.engine.cache.ArtifactCache` as
    ``cache`` to also persist them across runs.  With the compiled
    backend every corner of a ladder family shares one base chain graph
    via derate rescaling.
    """
    key = _ladder_memo_key(library, corner, max_length, and_cell)
    if memoize:
        hit = _LADDER_MEMO.get(key)
        if hit is not None:
            metrics.counter("desync.delay.ladder_memo_hits").inc()
            return DelayLadder(hit.library_name, hit.corner,
                               list(hit.rise_delays))
        if cache is not None:
            stored = cache.get("ladder:" + "|".join(map(str, key)))
            if stored is not None:
                ladder = stored["ladder"]
                _LADDER_MEMO[key] = ladder
                return DelayLadder(ladder.library_name, ladder.corner,
                                   list(ladder.rise_delays))
    with trace.span(
        "delays.characterize", corner=corner, max_length=max_length
    ):
        ladder = DelayLadder(library.name, corner)
        # delays are additive per stage under the linear model; measure the
        # longest chain once and read arrivals at every stage output
        if backend == "compiled":
            from ..sta.compiled import CompiledTimingGraph

            chain_key = (key[0], max_length, and_cell)
            compiled = _CHAIN_GRAPHS.get(chain_key)
            if compiled is None:
                module = _chain_module(max_length, and_cell)
                compiled = CompiledTimingGraph(
                    build_timing_graph(module, library, derate=1.0),
                    library=library,
                )
                _CHAIN_GRAPHS[chain_key] = compiled
            report = compiled.propagate(library.corner(corner).derate)
        else:
            module = _chain_module(max_length, and_cell)
            graph = build_timing_graph(module, library, corner)
            report = propagate(graph, backend=backend)
        for stage in range(max_length):
            node = (f"u{stage}", "Z")
            arrival = report.arrivals.get(node)
            if arrival is None:
                raise DelayElementError(f"no arrival at chain stage {stage}")
            ladder.rise_delays.append(arrival)
    if memoize:
        _LADDER_MEMO[key] = ladder
        if cache is not None:
            cache.put("ladder:" + "|".join(map(str, key)), {"ladder": ladder})
        return DelayLadder(ladder.library_name, ladder.corner,
                           list(ladder.rise_delays))
    return ladder


def choose_length(
    ladder: DelayLadder, target_delay: float, margin: float = 0.10
) -> int:
    """Shortest chain covering ``target_delay * (1 + margin)``."""
    required = target_delay * (1.0 + margin)
    for length, delay in enumerate(ladder.rise_delays, start=1):
        if delay >= required:
            # the quantisation cost of the discrete ladder: how much
            # slower the chosen chain is than the matched point
            metrics.histogram(
                "desync.delay.selection_error_ns",
                buckets=SELECTION_ERROR_BUCKETS,
            ).observe(delay - required)
            return length
    raise DelayElementError(
        f"ladder too short: need {required:.3f} ns, max is "
        f"{ladder.rise_delays[-1]:.3f} ns"
    )


def element_length_for(
    ladder: DelayLadder,
    target_delay: float,
    delay_margin: float = 0.10,
    mux_taps: int = 0,
    mux_headroom: float = 2.2,
) -> int:
    """The request-path element length the network would build.

    The single source of the sizing rule shared by
    :func:`repro.desync.network.insert_control_network` and the
    incremental re-flow's ladder re-selection: multiplexed elements get
    ``mux_headroom`` so calibration can sweep both sides of the matched
    point, and a region with no combinational cloud still gets a
    one-stage element.
    """
    if target_delay <= 0:
        return 1
    sizing_delay = target_delay * (mux_headroom if mux_taps > 1 else 1.0)
    return choose_length(ladder, sizing_delay, delay_margin)


@dataclass
class DelayElement:
    """A placed delay element."""

    region: str
    input_net: str
    output_net: str
    length: int
    instances: List[str]
    #: tap output nets when multiplexed (selection 0 = longest)
    taps: List[str] = field(default_factory=list)
    select_nets: List[str] = field(default_factory=list)


def build_delay_element(
    module: Module,
    chooser: GateChooser,
    region: str,
    input_net: str,
    output_net: str,
    length: int,
    mux_taps: int = 0,
    and_role: str = "and2",
    mux_role: str = "mux2",
) -> DelayElement:
    """Instantiate an asymmetric delay element of ``length`` AND levels.

    With ``mux_taps`` > 0 the element exposes that many equally spaced
    taps behind a multiplexer tree; the selection inputs become module
    ports ``dsel_<region>[k]`` so the effective delay can be calibrated
    after layout.  The selection convention follows Figure 5.3: the
    highest selection picks the full chain and lower values
    progressively shorten it (selection 0 = shortest).
    """
    if length < 1:
        raise DelayElementError("delay element needs at least one level")
    metrics.counter("desync.delay.elements").inc()
    metrics.histogram("desync.delay.length", buckets=LENGTH_BUCKETS).observe(
        length
    )
    and_cell, and_pins, and_out = chooser.gate(and_role)
    attrs = {"role": "delay_element", "region": region, "dont_touch": True}
    instances: List[str] = []
    module.ensure_net(input_net)
    module.ensure_net(output_net)

    stage_nets: List[str] = []
    previous = input_net
    for stage in range(length):
        net = module.new_name(f"delem_{region}_n")
        module.ensure_net(net)
        inst_name = module.new_name(f"delem_{region}_u")
        inst = module.add_instance(
            inst_name,
            and_cell,
            {and_pins[0]: previous, and_pins[1]: input_net, and_out: net},
        )
        inst.attributes.update(attrs)
        instances.append(inst_name)
        stage_nets.append(net)
        previous = net

    element = DelayElement(region, input_net, output_net, length, instances)

    if mux_taps <= 1:
        _tie(module, stage_nets[-1], output_net, chooser, attrs, instances)
        return element

    mux_taps = min(mux_taps, length)
    # selection k picks (k+1)/taps of the chain: highest = full length
    spacing = max(1, length // mux_taps)
    taps = []
    for k in range(mux_taps):
        index = min((k + 1) * spacing, length) - 1
        if k == mux_taps - 1:
            index = length - 1
        taps.append(stage_nets[index])
    element.taps = taps

    select_bits = max(1, math.ceil(math.log2(mux_taps)))
    port = module.add_port(
        f"dsel_{region}", PortDirection.INPUT, msb=select_bits - 1, lsb=0
    )
    element.select_nets = [f"dsel_{region}[{b}]" for b in range(select_bits)]

    mux_cell, mux_pins, mux_out = chooser.gate(mux_role)
    level_nets = list(taps)
    # pad to a power of two by repeating the last tap
    size = 1 << select_bits
    while len(level_nets) < size:
        level_nets.append(level_nets[-1])
    for bit in range(select_bits):
        select = f"dsel_{region}[{bit}]"
        next_level: List[str] = []
        for pair_index in range(0, len(level_nets), 2):
            a, b = level_nets[pair_index], level_nets[pair_index + 1]
            is_root = len(level_nets) == 2
            out_net = output_net if is_root else module.new_name(
                f"delem_{region}_m"
            )
            module.ensure_net(out_net)
            inst_name = module.new_name(f"delem_{region}_mx")
            inst = module.add_instance(
                inst_name,
                mux_cell,
                {
                    mux_pins[0]: a,
                    mux_pins[1]: b,
                    mux_pins[2]: select,
                    mux_out: out_net,
                },
            )
            inst.attributes.update(attrs)
            instances.append(inst_name)
            next_level.append(out_net)
        level_nets = next_level
    return element


def _tie(module, src, dst, chooser, attrs, instances):
    """Connect src to dst through a buffer (keeps nets distinct)."""
    cell, pins, out_pin = chooser.gate("buf")
    inst_name = module.new_name("delem_tie")
    inst = module.add_instance(inst_name, cell, {pins[0]: src, out_pin: dst})
    inst.attributes.update(attrs)
    instances.append(inst_name)


def mux_selection_delay(
    ladder: DelayLadder, length: int, mux_taps: int, selection: int
) -> float:
    """Rise delay of a muxed element at a given selection (model).

    The highest selection picks the full chain; each decrement removes
    ``length // mux_taps`` levels (matching :func:`build_delay_element`).
    """
    taps = min(mux_taps, length)
    spacing = max(1, length // taps)
    if selection >= taps - 1:
        effective = length
    else:
        effective = min((selection + 1) * spacing, length)
    return ladder.delay_of(max(1, effective))
