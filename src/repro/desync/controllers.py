"""Latch controllers (sections 2.2, 3.1.3).

The controller is the handshake circuit of Figure 2.3: inputs ``ri``
(request in) and ``ao`` (acknowledge from the successor), outputs ``ai``
(acknowledge to the predecessor), ``ro`` (request out) and ``g`` (the
latch enable), plus ``rst``.

The implementation is the classic two-C-element decoupled latch
controller -- three hazard-free complex gates, matching the paper's
measured "3 complex gates control overhead" (section 5.2.2)::

    x  = C(ri, !y)         # admit a new datum
    y  = C(x, !ack)        # 4-phase pacing towards the neighbours
    xd = delay(x)          # two buffers
    g  = x * !xd [+ rst]   # fixed-width transparency pulse on x+

with the request seen by ``ri`` being the previous stage's ``y``.  The
acknowledge differs per role: the master's ``ack`` is its slave's *y*
(the master may only re-admit once the slave captured), the slave's
``ack`` is the join of its successor masters' *x* elements.  This
decoupling is what makes single-region self-loops (the two-latch ring
of Figure 2.5) live: each master/slave pair contributes four C-element
state variables to the control ring.

The latch enable is a *pulse*: it opens at ``x+`` and closes a fixed
two-buffer delay later, capturing the datum whose validity the delayed
request guarantees.  A level enable gated by the y element would dwell
open under backpressure and let an early upstream datum race through;
the bounded pulse turns that into a one-sided timing margin -- the
same "hold constraints are automatically satisfied since we have a
latch design and sufficiently wide pulses" argument the paper makes
(section 4.5.1).

Reset models the synchronous clock-low state: the *master x* elements
reset high and the master pulse gate ORs in ``rst``, so the masters
are transparent during reset (tracking the reset-state cloud outputs)
and capture them -- the first synchronous cycle -- exactly at the
falling edge of reset.  Everything else resets low.

The C-elements are registered into the technology library as dedicated
complex-gate cells (the paper's by-hand mapping "without decomposing
the gates"), one reset-low and one set-high flavour, both with the B
input inverted:

    CBRX1:   Z = !RST * (A*!B + Z*(A + !B))
    CBSX1:   Z =  RST + (A*!B + Z*(A + !B))
    CTRLGX1: Z = (A * !B) + C        (the master pulse gate)

Their hazard-freedom under speed independence follows from atomic
evaluation; the closed-loop behaviour is verified by simulation in the
test suite and by the flow-equivalence experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..liberty.model import Library, LibraryCell, LibraryPin, TimingArc
from ..netlist.core import Module, PortDirection
from ..obs import metrics
from ..stg.petri import Stg

#: complex-gate cells placed per controller
C_RESET_CELL = "CBRX1"
C_SET_CELL = "CBSX1"
PULSE_GATE_CELL = "CTRLGX1"

#: complex-gate delays a request spends inside one controller (the paper
#: measures ~3 complex gates of control overhead per stage, section 5.2.2)
CONTROL_OVERHEAD_GATES = 3


def controller_stg() -> Stg:
    """STG of the decoupled controller (documentation + analysis aid).

    ``ack`` abstracts the next stage's ``x`` element; ``ri`` is the
    previous stage's ``y``.  The initial state is the generic (non
    reset-token) one: both elements low, environment ready.
    """
    stg = Stg(inputs=["ri", "ack"], outputs=["x", "y"])
    stg.arc("ri+", "x+")
    stg.arc("y-", "x+", marked=True)
    stg.arc("x+", "y+")
    stg.arc("ack-", "y+", marked=True)
    stg.arc("ri-", "x-")
    stg.arc("y+", "x-")
    stg.arc("x-", "y-")
    stg.arc("ack+", "y-")
    # environment: predecessor reacts to x (admission), successor to y
    stg.arc("x+", "ri-")
    stg.arc("x-", "ri+", marked=True)
    stg.arc("y+", "ack+")
    stg.arc("y-", "ack-")
    return stg


def _c_element_cell(library: Library, name: str, set_high: bool) -> LibraryCell:
    """Build one C-element complex gate (B input inverted)."""
    core = "(A * !B) + (Z * A) + (Z * !B)"
    if set_high:
        function = f"RST + ({core})"
    else:
        function = f"!RST * ({core})"
    template = library.cell("AOI21X1")
    base_arc = template.delay_arcs()[0]
    cell = LibraryCell(
        name=name,
        area=template.area * 1.5,
        leakage=template.leakage * 1.5,
        switch_energy=template.switch_energy * 1.5,
        dont_touch=True,
    )
    for pin_name in ("A", "B", "RST"):
        cell.pins[pin_name] = LibraryPin(
            pin_name,
            PortDirection.INPUT,
            capacitance=template.pins["A"].capacitance,
        )
    cell.pins["Z"] = LibraryPin(
        "Z", PortDirection.OUTPUT, function=function, max_capacitance=0.12
    )
    for pin_name in ("A", "B", "RST"):
        cell.arcs.append(
            TimingArc(
                related_pin=pin_name,
                pin="Z",
                timing_type="combinational",
                intrinsic_rise=base_arc.intrinsic_rise * 1.4,
                intrinsic_fall=base_arc.intrinsic_fall * 1.4,
                rise_resistance=base_arc.rise_resistance,
                fall_resistance=base_arc.fall_resistance,
            )
        )
    return cell


def _pulse_gate_cell(library: Library) -> LibraryCell:
    """The master enable gate: Z = (A * !B) + C (C is the reset term)."""
    template = library.cell("AOI21X1")
    base_arc = template.delay_arcs()[0]
    cell = LibraryCell(
        name=PULSE_GATE_CELL,
        area=template.area * 1.2,
        leakage=template.leakage * 1.2,
        switch_energy=template.switch_energy * 1.2,
        dont_touch=True,
    )
    for pin_name in ("A", "B", "C"):
        cell.pins[pin_name] = LibraryPin(
            pin_name,
            PortDirection.INPUT,
            capacitance=template.pins["A"].capacitance,
        )
    cell.pins["Z"] = LibraryPin(
        "Z",
        PortDirection.OUTPUT,
        function="(A * !B) + C",
        max_capacitance=0.12,
    )
    for pin_name in ("A", "B", "C"):
        cell.arcs.append(
            TimingArc(
                related_pin=pin_name,
                pin="Z",
                timing_type="combinational",
                intrinsic_rise=base_arc.intrinsic_rise,
                intrinsic_fall=base_arc.intrinsic_fall,
                rise_resistance=base_arc.rise_resistance,
                fall_resistance=base_arc.fall_resistance,
            )
        )
    return cell


def ensure_controller_cells(library: Library) -> None:
    """Register the controller complex gates (idempotent)."""
    if C_RESET_CELL not in library:
        library.add_cell(_c_element_cell(library, C_RESET_CELL, set_high=False))
    if C_SET_CELL not in library:
        library.add_cell(_c_element_cell(library, C_SET_CELL, set_high=True))
    if PULSE_GATE_CELL not in library:
        library.add_cell(_pulse_gate_cell(library))


#: backwards-compatible alias used by the tool driver
ensure_controller_cell = ensure_controller_cells


@dataclass
class ControllerInstance:
    """Bookkeeping for one placed latch controller (3 gates)."""

    name: str  # base name; gates are <name>_x, <name>_y, <name>_g
    region: str
    role: str  # "master" | "slave"
    ri_net: str
    ao_net: str
    g_net: str
    x_net: str
    y_net: str

    @property
    def ai_net(self) -> str:
        """Acknowledge to the predecessor (= x, the admission element)."""
        return self.x_net

    @property
    def ro_net(self) -> str:
        """Request to the successor (= y)."""
        return self.y_net

    @property
    def gate_names(self) -> List[str]:
        return [
            f"{self.name}_x",
            f"{self.name}_y",
            f"{self.name}_d0",
            f"{self.name}_d1",
            f"{self.name}_g",
        ]


def place_controller(
    module: Module,
    library: Library,
    region: str,
    role: str,
    ri_net: str,
    ao_net: str,
    g_net: str,
    rst_net: str,
    x_net: Optional[str] = None,
    y_net: Optional[str] = None,
) -> ControllerInstance:
    """Instantiate one latch controller (x, y C-elements + enable AND).

    The master controller's ``x`` element is the set-high flavour: at
    reset the masters are transparent (synchronous clock-low state)
    with the reset-state cloud outputs flowing through them.
    """
    ensure_controller_cells(library)
    base = module.new_name(f"ctrl_{region}_{role}")
    x_net = x_net or f"{base}_xn"
    y_net = y_net or f"{base}_yn"
    for net in (x_net, y_net, g_net, ri_net, ao_net):
        module.ensure_net(net)

    x_cell = C_SET_CELL if role == "master" else C_RESET_CELL
    attrs = {
        "role": f"controller_{role}",
        "region": region,
        "size_only": True,
    }
    gate_x = module.add_instance(
        f"{base}_x",
        x_cell,
        {"A": ri_net, "B": y_net, "RST": rst_net, "Z": x_net},
    )
    gate_y = module.add_instance(
        f"{base}_y",
        C_RESET_CELL,
        {"A": x_net, "B": ao_net, "RST": rst_net, "Z": y_net},
    )
    # the pulse-shaping delay chain and the enable gate
    xd0 = f"{base}_xd0"
    xd1 = f"{base}_xd1"
    module.ensure_net(xd0)
    module.ensure_net(xd1)
    gate_d0 = module.add_instance(
        f"{base}_d0", "BUFX1", {"A": x_net, "Z": xd0}
    )
    gate_d1 = module.add_instance(
        f"{base}_d1", "BUFX1", {"A": xd0, "Z": xd1}
    )
    if role == "master":
        gate_g = module.add_instance(
            f"{base}_g",
            PULSE_GATE_CELL,
            {"A": x_net, "B": xd1, "C": rst_net, "Z": g_net},
        )
    else:
        gate_g = module.add_instance(
            f"{base}_g", "ANDN2X1", {"A": x_net, "B": xd1, "Z": g_net}
        )
    for gate in (gate_x, gate_y, gate_d0, gate_d1, gate_g):
        gate.attributes.update(attrs)
    metrics.counter(f"desync.controllers.{role}").inc()
    return ControllerInstance(
        base, region, role, ri_net, ao_net, g_net, x_net, y_net
    )
