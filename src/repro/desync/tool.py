"""``drdesync`` -- the desynchronization tool driver (chapter 3).

Runs the conversion as the sequence of steps of section 3.2:

1. design import (name cleaning, assign resolution),
2. automatic region creation (or manual / single-region),
3. flip-flop substitution,
4. data-dependency graph construction,
5. delay-element creation (STA-characterised ladder),
6. control-network insertion,
7. design export (Verilog or BLIF) plus physical timing constraints.

The whole tool is pure netlist-to-netlist: it consumes a post-synthesis
(optionally post-DFT) gate-level design and produces the desynchronized
netlist, ready for the backend, exactly like the paper's C tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..liberty.gatefile import Gatefile, build_gatefile
from ..liberty.model import Library
from ..liberty.techmap import GateChooser
from ..netlist.core import Module
from ..netlist.verilog import write_module
from ..netlist.blif import write_blif_module
from ..sta.sdc import SdcFile
from .constraints import disables_for_sta
from .controllers import ensure_controller_cell
from .delays import DelayLadder, characterize_ladder
from .ffsub import SubstitutionResult
from .network import ControlNetwork
from .regions import RegionMap


@dataclass
class DesyncOptions:
    """Tool options (the paper's command-line switches)."""

    #: "auto" (grouping algorithm), "single" (ARM case) or "manual"
    grouping: str = "auto"
    #: manual instance -> region assignment (grouping == "manual")
    manual_assignment: Dict[str, str] = field(default_factory=dict)
    #: net names to ignore during grouping (false paths, section 3.2.2)
    false_path_nets: Tuple[str, ...] = ()
    #: logic cleaning before grouping (buffer / inverter-pair removal)
    clean: bool = True
    #: delay-element safety margin over the region critical path
    delay_margin: float = 0.10
    #: 0 = fixed-length delay elements; >1 = multiplexed taps (DLX used 8)
    delay_mux_taps: int = 0
    #: full-chain headroom factor for multiplexed elements, so the
    #: selection axis straddles the matched point (Figure 5.3)
    delay_mux_headroom: float = 2.2
    #: analysis corner used for delay matching
    corner: str = "worst"
    #: reset port name added to the design
    reset_port: str = "rst"
    #: clock period for the generated ClkM/ClkS constraints (ns); when
    #: None it is derived from the synchronous critical path
    clock_period: Optional[float] = None
    #: for multi-clock designs: desynchronize only this clock domain
    #: (partial desynchronization, chapter 6 future work); other
    #: domains keep their flip-flops and clocks
    clock_domain: Optional[str] = None


@dataclass
class DesyncResult:
    """Everything the tool produced."""

    module: Module
    gatefile: Gatefile
    region_map: RegionMap
    ddg: "nx.DiGraph"
    substitution: SubstitutionResult
    network: ControlNetwork
    ladder: DelayLadder
    sdc: SdcFile
    import_stats: Dict[str, int] = field(default_factory=dict)

    def sta_disables(self):
        """Timing disables for repro.sta analyses of the result."""
        return disables_for_sta(self.network, self.module)

    def export_verilog(self) -> str:
        return write_module(self.module)

    def export_blif(self) -> str:
        return write_blif_module(self.module)

    def export_sdc(self) -> str:
        return self.sdc.to_text()

    def summary(self) -> Dict[str, object]:
        return {
            "regions": len(self.region_map),
            "flip_flops_replaced": self.substitution.replaced,
            "controllers": len(self.network.controllers),
            "delay_elements": len(self.network.delay_elements),
            "cells": len(self.module.instances),
            "nets": len(self.module.nets),
        }


class Drdesync:
    """The desynchronization tool.

    One instance binds a technology library (gatefile generated on
    construction -- the library-preparation phase of section 3.1);
    :meth:`run` desynchronizes one design by executing the section 3.2
    stage graph on a :class:`repro.engine.executor.FlowEngine`.  The
    default engine is serial and uncached (identical behaviour to the
    historical monolithic driver); passing an engine with an artifact
    cache and/or ``jobs > 1`` makes repeat conversions resume from the
    cached stage prefix and characterises the delay ladder in parallel
    with the netlist stages.
    """

    def __init__(
        self,
        library: Library,
        ladder: Optional[DelayLadder] = None,
        corner: str = "worst",
        max_delay_levels: int = 240,
        engine: Optional["FlowEngine"] = None,
    ):
        from ..engine.executor import FlowEngine

        self.library = library
        ensure_controller_cell(library)
        self.gatefile = build_gatefile(library)
        self.chooser = GateChooser(library)
        self.corner = corner
        # the paper characterises 1..100 levels; larger designs with
        # register-file read + ALU clouds need a longer ladder
        self.max_delay_levels = max_delay_levels
        self.engine = engine or FlowEngine()
        self._ladder = ladder

    @property
    def ladder(self) -> DelayLadder:
        """The characterised delay ladder (lazy; cached engine runs
        reuse the ladder of the ``delays`` stage instead)."""
        if self._ladder is None:
            self._ladder = characterize_ladder(
                self.library, self.corner, max_length=self.max_delay_levels
            )
        return self._ladder

    # ------------------------------------------------------------------
    def build_stages(
        self,
        options: Optional[DesyncOptions] = None,
        prefix: str = "",
        module_input: str = "module.input",
    ):
        """The tool's stage list, for embedding into a larger graph."""
        from ..engine.stages import desync_stages

        return desync_stages(
            self.library,
            self.gatefile,
            self.chooser,
            options or DesyncOptions(),
            corner=self.corner,
            max_delay_levels=self.max_delay_levels,
            ladder=self._ladder,
            prefix=prefix,
            module_input=module_input,
        )

    def assemble_result(
        self, module: Module, artifacts, prefix: str = ""
    ) -> DesyncResult:
        """Build a :class:`DesyncResult` from engine artifacts.

        ``module`` (the caller's object) adopts the final netlist when
        a cache hit made the engine produce a fresh copy, preserving
        the tool's in-place rewrite contract.
        """
        final = artifacts[prefix + "module.network"]
        if final is not module:
            module.copy_from(final)
        import_stats = dict(artifacts[prefix + "import_stats"])
        import_stats.update(artifacts[prefix + "clean_stats"])
        self._ladder = artifacts[prefix + "ladder"]
        return DesyncResult(
            module=module,
            gatefile=self.gatefile,
            region_map=artifacts[prefix + "region_map.ffsub"],
            ddg=artifacts[prefix + "ddg"],
            substitution=artifacts[prefix + "substitution"],
            network=artifacts[prefix + "network"],
            ladder=self._ladder,
            sdc=artifacts[prefix + "sdc"],
            import_stats=import_stats,
        )

    def run(
        self, module: Module, options: Optional[DesyncOptions] = None
    ) -> DesyncResult:
        """Desynchronize ``module`` in place and return the result."""
        from ..engine.graph import FlowGraph

        options = options or DesyncOptions()
        graph = FlowGraph("drdesync")
        graph.add_stages(self.build_stages(options))
        result = self.engine.run(
            graph,
            initial={"module.input": module},
            label=f"drdesync:{module.name}",
        )
        result.raise_first_failure()
        return self.assemble_result(module, result.artifacts)


def desynchronize(
    module: Module,
    library: Library,
    options: Optional[DesyncOptions] = None,
) -> DesyncResult:
    """One-call convenience wrapper around :class:`Drdesync`."""
    tool = Drdesync(library, corner=(options or DesyncOptions()).corner)
    return tool.run(module, options)
