"""``drdesync`` -- the desynchronization tool driver (chapter 3).

Runs the conversion as the sequence of steps of section 3.2:

1. design import (name cleaning, assign resolution),
2. automatic region creation (or manual / single-region),
3. flip-flop substitution,
4. data-dependency graph construction,
5. delay-element creation (STA-characterised ladder),
6. control-network insertion,
7. design export (Verilog or BLIF) plus physical timing constraints.

The whole tool is pure netlist-to-netlist: it consumes a post-synthesis
(optionally post-DFT) gate-level design and produces the desynchronized
netlist, ready for the backend, exactly like the paper's C tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..liberty.gatefile import Gatefile, build_gatefile
from ..liberty.model import Library
from ..liberty.techmap import GateChooser
from ..netlist.cleanup import clean_logic, resolve_assigns, simplify_names
from ..netlist.core import Module
from ..netlist.verilog import write_module
from ..netlist.blif import write_blif_module
from ..sta.sdc import SdcFile
from .constraints import disables_for_sta, generate_constraints
from .controllers import ensure_controller_cell
from .ddg import build_ddg
from .delays import DelayLadder, characterize_ladder
from .domains import analyze_clock_domains, select_domain
from .ffsub import SubstitutionResult, substitute_flip_flops
from .network import ControlNetwork, insert_control_network
from .regions import (
    RegionMap,
    group_regions,
    manual_regions,
    single_region,
    validate_independence,
)


@dataclass
class DesyncOptions:
    """Tool options (the paper's command-line switches)."""

    #: "auto" (grouping algorithm), "single" (ARM case) or "manual"
    grouping: str = "auto"
    #: manual instance -> region assignment (grouping == "manual")
    manual_assignment: Dict[str, str] = field(default_factory=dict)
    #: net names to ignore during grouping (false paths, section 3.2.2)
    false_path_nets: Tuple[str, ...] = ()
    #: logic cleaning before grouping (buffer / inverter-pair removal)
    clean: bool = True
    #: delay-element safety margin over the region critical path
    delay_margin: float = 0.10
    #: 0 = fixed-length delay elements; >1 = multiplexed taps (DLX used 8)
    delay_mux_taps: int = 0
    #: full-chain headroom factor for multiplexed elements, so the
    #: selection axis straddles the matched point (Figure 5.3)
    delay_mux_headroom: float = 2.2
    #: analysis corner used for delay matching
    corner: str = "worst"
    #: reset port name added to the design
    reset_port: str = "rst"
    #: clock period for the generated ClkM/ClkS constraints (ns); when
    #: None it is derived from the synchronous critical path
    clock_period: Optional[float] = None
    #: for multi-clock designs: desynchronize only this clock domain
    #: (partial desynchronization, chapter 6 future work); other
    #: domains keep their flip-flops and clocks
    clock_domain: Optional[str] = None


@dataclass
class DesyncResult:
    """Everything the tool produced."""

    module: Module
    gatefile: Gatefile
    region_map: RegionMap
    ddg: "nx.DiGraph"
    substitution: SubstitutionResult
    network: ControlNetwork
    ladder: DelayLadder
    sdc: SdcFile
    import_stats: Dict[str, int] = field(default_factory=dict)

    def sta_disables(self):
        """Timing disables for repro.sta analyses of the result."""
        return disables_for_sta(self.network, self.module)

    def export_verilog(self) -> str:
        return write_module(self.module)

    def export_blif(self) -> str:
        return write_blif_module(self.module)

    def export_sdc(self) -> str:
        return self.sdc.to_text()

    def summary(self) -> Dict[str, object]:
        return {
            "regions": len(self.region_map),
            "flip_flops_replaced": self.substitution.replaced,
            "controllers": len(self.network.controllers),
            "delay_elements": len(self.network.delay_elements),
            "cells": len(self.module.instances),
            "nets": len(self.module.nets),
        }


class Drdesync:
    """The desynchronization tool.

    One instance binds a technology library (gatefile generated on
    construction -- the library-preparation phase of section 3.1);
    :meth:`run` desynchronizes one design.
    """

    def __init__(
        self,
        library: Library,
        ladder: Optional[DelayLadder] = None,
        corner: str = "worst",
        max_delay_levels: int = 240,
    ):
        self.library = library
        ensure_controller_cell(library)
        self.gatefile = build_gatefile(library)
        self.chooser = GateChooser(library)
        # the paper characterises 1..100 levels; larger designs with
        # register-file read + ALU clouds need a longer ladder
        self.ladder = ladder or characterize_ladder(
            library, corner, max_length=max_delay_levels
        )

    # ------------------------------------------------------------------
    def run(
        self, module: Module, options: Optional[DesyncOptions] = None
    ) -> DesyncResult:
        """Desynchronize ``module`` in place and return the result."""
        options = options or DesyncOptions()

        # -- 3.2.1 design import hygiene
        import_stats = {
            "assigns_resolved": resolve_assigns(module),
            "names_simplified": simplify_names(module),
        }

        # derive the clock period before touching the netlist
        clock_period = options.clock_period
        if clock_period is None:
            from ..sta.analysis import min_clock_period

            clock_period = min_clock_period(
                module, self.library, options.corner
            )

        # -- 3.2.2 automatic region creation (with logic cleaning)
        if options.clean and options.grouping == "auto":
            import_stats.update(
                clean_logic(module, self.gatefile, options.false_path_nets)
            )
        if options.grouping == "auto":
            region_map = group_regions(
                module, self.gatefile, options.false_path_nets
            )
        elif options.grouping == "single":
            region_map = single_region(module)
        elif options.grouping == "manual":
            region_map = manual_regions(module, options.manual_assignment)
        else:
            raise ValueError(f"unknown grouping mode {options.grouping!r}")

        problems = validate_independence(
            module, self.gatefile, region_map, options.false_path_nets
        )
        if problems:
            raise ValueError(
                "regions are not combinationally independent: "
                + "; ".join(problems[:5])
            )

        # clock-domain analysis: single-clock designs convert whole;
        # multi-clock designs need an explicit domain selection and the
        # other domains stay synchronous (partial desynchronization)
        domains = analyze_clock_domains(module, self.gatefile)
        selected = select_domain(domains, options.clock_domain)
        foreign: set = set()
        if selected is not None:
            for root, members in domains.domains.items():
                foreign.update(members - selected)
            for name in foreign:
                region = region_map.instance_region.pop(name, None)
                if region is not None and region in region_map.regions:
                    region_map.regions[region].instances.discard(name)

        # -- 3.2.3 flip-flop substitution
        substitution = substitute_flip_flops(
            module, self.gatefile, self.library, region_map, self.chooser,
            exclude=foreign,
        )

        # -- 3.2.4 data-dependency graph
        ddg = build_ddg(
            module, self.gatefile, region_map, options.false_path_nets,
            env_instances=foreign,
        )

        # -- 3.2.5 / 3.2.6 delay elements + control network
        network = insert_control_network(
            module,
            self.library,
            self.gatefile,
            region_map,
            ddg,
            self.ladder,
            chooser=self.chooser,
            delay_margin=options.delay_margin,
            mux_taps=options.delay_mux_taps,
            mux_headroom=options.delay_mux_headroom,
            reset_port=options.reset_port,
            corner=options.corner,
        )

        # -- 3.2.7 design export artefacts
        sdc = generate_constraints(
            module, network, clock_period, options.delay_margin
        )

        return DesyncResult(
            module=module,
            gatefile=self.gatefile,
            region_map=region_map,
            ddg=ddg,
            substitution=substitution,
            network=network,
            ladder=self.ladder,
            sdc=sdc,
            import_stats=import_stats,
        )


def desynchronize(
    module: Module,
    library: Library,
    options: Optional[DesyncOptions] = None,
) -> DesyncResult:
    """One-call convenience wrapper around :class:`Drdesync`."""
    tool = Drdesync(library, corner=(options or DesyncOptions()).corner)
    return tool.run(module, options)
