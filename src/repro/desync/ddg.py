"""Data dependency graph construction (sections 2.4.1, 3.2.4).

Nodes are circuit regions; a directed edge ``p -> q`` exists when a
path leaves a sequential output of region ``p`` and reaches an input of
region ``q`` -- i.e. some net driven by ``p``'s latches/flip-flops (or
by ``p``'s combinational cells) is consumed inside ``q``.  Because
regions are combinationally independent, it suffices to look at nets
whose driver and reader belong to different regions, plus self-edges
for regions feeding themselves (state machines, counters).

Primary inputs are attributed to the special environment node ``ENV``
so the controller network knows which regions need an external request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..liberty.gatefile import Gatefile
from ..netlist.core import Module, PortDirection
from ..obs import metrics, trace
from .regions import RegionMap

#: pseudo-node for the environment (primary inputs / outputs)
ENV = "ENV"

#: histogram buckets for region fan-in / fan-out degrees
FANIN_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


def build_ddg(
    module: Module,
    gatefile: Gatefile,
    region_map: RegionMap,
    false_path_nets: Tuple[str, ...] = (),
    env_instances: Optional[Set[str]] = None,
) -> "nx.DiGraph":
    """Build the region data-dependency graph as a networkx DiGraph.

    ``env_instances`` are sequential elements whose outputs count as
    environment data (foreign clock domains in a partial conversion).
    """
    with trace.span("ddg", regions=len(region_map)) as span:
        graph = _build_ddg(
            module, gatefile, region_map, false_path_nets, env_instances
        )
        span.set("nodes", graph.number_of_nodes())
        span.set("edges", graph.number_of_edges())
    if metrics.enabled():
        fanin = metrics.histogram("desync.ddg.fanin", buckets=FANIN_BUCKETS)
        fanout = metrics.histogram("desync.ddg.fanout", buckets=FANIN_BUCKETS)
        for node in graph.nodes:
            if node == ENV:
                continue
            fanin.observe(len(predecessors_of(graph, node)))
            fanout.observe(len(successors_of(graph, node)))
    return graph


def _build_ddg(
    module: Module,
    gatefile: Gatefile,
    region_map: RegionMap,
    false_path_nets: Tuple[str, ...],
    env_instances: Optional[Set[str]],
) -> "nx.DiGraph":
    env_instances = env_instances or set()
    graph = nx.DiGraph()
    for name in region_map.regions:
        graph.add_node(name)
    graph.add_node(ENV)
    ignored = set(false_path_nets)

    port_bits_in = set(module.port_bits(PortDirection.INPUT))
    port_bits_out = set(module.port_bits(PortDirection.OUTPUT))

    for net_name, net in module.nets.items():
        if net.is_constant or net_name in ignored:
            continue
        for source, target in _net_edges(
            module,
            gatefile,
            region_map,
            net,
            env_instances,
            port_bits_in,
            port_bits_out,
        ):
            graph.add_edge(source, target)
    return graph


def _net_edges(
    module: Module,
    gatefile: Gatefile,
    region_map: RegionMap,
    net,
    env_instances: Set[str],
    port_bits_in: Set[str],
    port_bits_out: Set[str],
) -> List[Tuple[str, str]]:
    """The DDG edges contributed by one net (shared by build and patch)."""
    driver_regions: Set[str] = set()
    reader_regions: Set[str] = set()
    sequential_driver = False
    for ref in net.connections:
        if ref.instance is None:
            if ref.pin in port_bits_in:
                driver_regions.add(ENV)
            elif ref.pin in port_bits_out:
                reader_regions.add(ENV)
            continue
        inst = module.instances[ref.instance]
        info = gatefile.cells.get(inst.cell)
        if info is None:
            continue
        pin = info.pins.get(ref.pin)
        if pin is None or pin.is_clock:
            continue
        if (
            ref.instance in env_instances
            and pin.direction == PortDirection.OUTPUT
        ):
            driver_regions.add(ENV)
            continue
        region = region_map.region_of(ref.instance)
        if region is None:
            continue
        if pin.direction == PortDirection.OUTPUT:
            if inst.attributes.get("role") == "latch_master":
                # master->slave plumbing inside one flip-flop is not
                # a data dependency between regions
                continue
            driver_regions.add(region)
            if info.is_sequential:
                sequential_driver = True
        elif pin.direction == PortDirection.INPUT:
            reader_regions.add(region)
    edges: List[Tuple[str, str]] = []
    for source in driver_regions:
        for target in reader_regions:
            if source == target and source == ENV:
                continue
            if source == target and not sequential_driver:
                # intra-region combinational net: not a dependency
                continue
            if source != target or sequential_driver:
                edges.append((source, target))
    return edges


def patch_ddg(
    graph: "nx.DiGraph",
    module: Module,
    gatefile: Gatefile,
    region_map: RegionMap,
    dirty_nets: Set[str],
    false_path_nets: Tuple[str, ...] = (),
    env_instances: Optional[Set[str]] = None,
) -> bool:
    """Confirm a cached DDG against the re-derived dirty-net edges.

    Recomputes the edge contributions of exactly ``dirty_nets`` and
    checks each against the cached graph.  Returns ``True`` when every
    contribution is already present -- for a connectivity-preserving
    edit that means the cached graph equals a full rebuild, because no
    other net's contribution can have moved.  Returns ``False`` when a
    dirty net now contributes an edge the graph lacks (or a dirty net's
    region attribution is unknowable); edge *loss* cannot be decided
    locally either way, so the caller must rebuild with
    :func:`build_ddg`.  The graph itself is never mutated.
    """
    env_instances = env_instances or set()
    ignored = set(false_path_nets)
    port_bits_in = set(module.port_bits(PortDirection.INPUT))
    port_bits_out = set(module.port_bits(PortDirection.OUTPUT))
    for net_name in sorted(dirty_nets):
        net = module.nets.get(net_name)
        if net is None or net.is_constant or net_name in ignored:
            continue
        for source, target in _net_edges(
            module,
            gatefile,
            region_map,
            net,
            env_instances,
            port_bits_in,
            port_bits_out,
        ):
            if not graph.has_edge(source, target):
                metrics.counter("desync.ddg.patch_misses").inc()
                return False
    metrics.counter("desync.ddg.patch_hits").inc()
    return True


def predecessors_of(graph: "nx.DiGraph", region: str) -> List[str]:
    """Region predecessors (sorted, ENV last for determinism)."""
    preds = sorted(p for p in graph.predecessors(region) if p != ENV)
    if graph.has_edge(ENV, region):
        preds.append(ENV)
    return preds


def successors_of(graph: "nx.DiGraph", region: str) -> List[str]:
    succs = sorted(s for s in graph.successors(region) if s != ENV)
    if graph.has_edge(region, ENV):
        succs.append(ENV)
    return succs


def fanin_fanout(graph: "nx.DiGraph", region: str) -> Tuple[int, int]:
    """Counts used to pick the controller flavour (section 3.2.6)."""
    return len(predecessors_of(graph, region)), len(successors_of(graph, region))
