"""Backend timing-constraint generation (sections 4.5, 4.6).

The desynchronized netlist ships with an SDC file that makes it look
synchronous to the backend (Figure 4.3):

- the original clock is replaced by two virtual clocks, ``ClkM`` and
  ``ClkS``, sourced at the master/slave controller latch-enable output
  pins with the waveform relationship of Figure 4.2 (the master falling
  edge and slave rising edge coincide with the original rising edge);
- every controller gate is ``size_only`` and every delay-element cell
  ``dont_touch`` so optimization can resize/buffer but never
  re-synthesize hazard-free logic (section 4.6.2);
- the timing loops through the controller network are broken with
  ``set_disable_timing`` at hand-chosen pins (Figure 4.5): controller
  cell arcs and the C-Muller feedback inputs;
- the request segments that remain (controller output, through C-join
  and delay element, to the next controller's RI pin) get min/max
  path-delay constraints so timing-driven P&R keeps the matched delays
  honest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netlist.core import Module
from ..sta.sdc import (
    CreateClock,
    PathDelay,
    SdcFile,
    SetDisableTiming,
    SetDontTouch,
    SetSizeOnly,
)
from .network import ControlNetwork


def generate_constraints(
    module: Module,
    network: ControlNetwork,
    clock_period: float,
    delay_margin: float = 0.10,
) -> SdcFile:
    """Build the full SDC for the desynchronized design."""
    sdc = SdcFile()

    master_pins = [
        f"{ctrl.name}/G"
        for (region, role), ctrl in sorted(network.controllers.items())
        if role == "master"
    ]
    slave_pins = [
        f"{ctrl.name}/G"
        for (region, role), ctrl in sorted(network.controllers.items())
        if role == "slave"
    ]
    # Figure 4.2: period preserved; master high for the second part of
    # the cycle, slave pulse straddling the original rising edge
    period = clock_period
    sdc.add(
        CreateClock(
            "ClkM",
            period,
            (period * 5.0 / 12.0, period),
            master_pins,
            "pins",
        )
    )
    sdc.add(
        CreateClock(
            "ClkS",
            period,
            (period, period * 7.0 / 6.0),
            slave_pins,
            "pins",
        )
    )

    controller_cells = sorted(network.controller_instances())
    if controller_cells:
        sdc.add(SetSizeOnly(controller_cells))
    delay_cells = sorted(network.delay_instances())
    if delay_cells:
        sdc.add(SetDontTouch(delay_cells))
    if network.cmuller_instances:
        sdc.add(SetSizeOnly(sorted(set(network.cmuller_instances))))

    # loop breaking (Figure 4.5): cut all arcs through the controllers
    # and the C-element feedback inputs
    for name in controller_cells:
        sdc.add(SetDisableTiming(name))
    for name in sorted(set(network.cmuller_instances)):
        inst = module.instances.get(name)
        if inst is None:
            continue
        if "maj3" in name or inst.cell.startswith("MAJ3"):
            sdc.add(SetDisableTiming(name, from_pin="C", to_pin="Z"))

    # min/max constraints on the surviving request segments
    for region, element in sorted(network.delay_elements.items()):
        master = network.controllers.get((region, "master"))
        if master is None:
            continue
        target = network.region_delays.get(region, 0.0)
        if target <= 0:
            continue
        source_pin = f"{element.instances[0]}/A"
        target_pin = f"{master.name}/RI"
        sdc.add(PathDelay("min", target, source_pin, target_pin))
        sdc.add(
            PathDelay(
                "max", target * (1.0 + 2.0 * delay_margin), source_pin, target_pin
            )
        )
    return sdc


def disables_for_sta(network: ControlNetwork, module: Module):
    """Disable tuples for repro.sta: controller cells + C feedback pins."""
    out = []
    for name in network.controller_instances():
        out.append((name, None, None))
    for name in set(network.cmuller_instances):
        inst = module.instances.get(name)
        if inst is not None and inst.cell.startswith("MAJ3"):
            out.append((name, "C", "Z"))
    return out
