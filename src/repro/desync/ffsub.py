"""Flip-flop substitution (sections 2.3, 3.1.2, 3.2.3).

Every D flip-flop is split into its conceptual master/slave latch pair
driven by the per-region master and slave enable nets the controller
network will generate.  Complex flip-flops are handled per Figure 3.1:

- the ``next_state`` function of the liberty ff group (scan muxes,
  synchronous set/reset gating) becomes *front logic* mapped onto
  standard gates before the master latch -- one uniform mechanism for
  Figures 3.1(a) and 3.1(b);
- asynchronous clear/preset forces the data and opens both latches
  while asserted (Figure 3.1(c));
- clock gating turns into AND gates on both latch enables (Fig 3.1(d)).

All cells added here are tagged ``seq_overhead`` so the area reports
can attribute them to sequential logic the way the paper does for the
scan-heavy ARM ("the combinational logic overhead because of the scan
flip-flops substitution is included in the sequential logic overhead").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..liberty.functions import parse_function, expr_inputs
from ..liberty.gatefile import Gatefile, ReplacementRule
from ..liberty.model import Library
from ..liberty.techmap import ExpressionMapper, GateChooser
from ..netlist.core import Module, PortDirection
from ..obs import metrics, trace
from .regions import RegionMap

#: histogram buckets for flip-flops substituted per region
LATCH_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class SubstitutionError(Exception):
    """Raised when a flip-flop cannot be substituted."""


@dataclass
class SubstitutionResult:
    """Bookkeeping of one flip-flop substitution pass."""

    replaced: int = 0
    added_instances: List[str] = field(default_factory=list)
    #: region -> (master enable net, slave enable net)
    enable_nets: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    removed_clock_gates: List[str] = field(default_factory=list)


def master_enable_net(region: str) -> str:
    return f"gm_{region}"


def slave_enable_net(region: str) -> str:
    return f"gs_{region}"


def _clock_gate_enable(
    module: Module, gatefile: Gatefile, clock_net: str
) -> Optional[Tuple[str, str]]:
    """If ``clock_net`` is driven by an integrated clock gate, return
    (gate instance name, enable net)."""
    net = module.nets.get(clock_net)
    if net is None:
        return None
    for ref in net.connections:
        if ref.instance is None:
            continue
        inst = module.instances[ref.instance]
        info = gatefile.cells.get(inst.cell)
        if info is None:
            continue
        pin = info.pins.get(ref.pin)
        if pin is not None and pin.direction == PortDirection.OUTPUT and (
            ref.pin == "GCK"
        ):
            return ref.instance, inst.pins.get("EN", "")
    return None


def substitute_flip_flops(
    module: Module,
    gatefile: Gatefile,
    library: Library,
    region_map: RegionMap,
    chooser: Optional[GateChooser] = None,
    exclude: Optional[Set[str]] = None,
) -> SubstitutionResult:
    """Replace every flip-flop with a master/slave latch pair.

    ``exclude`` lists flip-flops left untouched (foreign clock domains
    in a partial desynchronization).
    """
    chooser = chooser or GateChooser(library)
    result = SubstitutionResult()
    excluded = exclude or set()

    with trace.span("ffsub", instances=len(module.instances)) as span:
        flip_flops = [
            name
            for name, inst in module.instances.items()
            if name not in excluded
            and gatefile.cells.get(inst.cell) is not None
            and gatefile.is_flip_flop(inst.cell)
        ]
        per_region: Dict[str, int] = {}
        for ff_name in flip_flops:
            region = region_map.region_of(ff_name)
            if region is not None:
                per_region[region] = per_region.get(region, 0) + 1
            _substitute_one(
                module, gatefile, library, region_map, chooser, ff_name, result
            )

        _drop_orphan_clock_gates(module, gatefile, result)
        for name in result.removed_clock_gates:
            region = region_map.instance_region.pop(name, None)
            if region is not None and region in region_map.regions:
                region_map.regions[region].instances.discard(name)
        span.set("replaced", result.replaced)

    metrics.counter("desync.ffsub.replaced").inc(result.replaced)
    # each flip-flop splits into a master/slave latch pair
    metrics.counter("desync.ffsub.latches").inc(2 * result.replaced)
    if metrics.enabled():
        histogram = metrics.histogram(
            "desync.ffsub.latches_per_region", buckets=LATCH_BUCKETS
        )
        for count in per_region.values():
            histogram.observe(2 * count)
    return result


def _substitute_one(
    module: Module,
    gatefile: Gatefile,
    library: Library,
    region_map: RegionMap,
    chooser: GateChooser,
    ff_name: str,
    result: SubstitutionResult,
) -> None:
    inst = module.instances[ff_name]
    rule = gatefile.rule_for(inst.cell)
    if rule.latch_cell not in library:
        raise SubstitutionError(
            f"latch {rule.latch_cell!r} for {inst.cell!r} missing from the "
            "library; implement the extra latch first (section 3.1.2)"
        )
    region = region_map.region_of(ff_name) or "G0"
    gm = master_enable_net(region)
    gs = slave_enable_net(region)
    module.ensure_net(gm)
    module.ensure_net(gs)
    result.enable_nets.setdefault(region, (gm, gs))

    info = gatefile.info(inst.cell)
    # bind every rule input either to the connected net or to constant 0
    input_nets: Dict[str, str] = {}
    for pin_name in info.data_inputs:
        net = inst.pins.get(pin_name)
        input_nets[pin_name] = net if net is not None else (
            module.constant_net(0).name
        )

    # clock gating (Figure 3.1 d)
    clock_pins = info.clock_pins
    clock_net = inst.pins.get(clock_pins[0]) if clock_pins else None
    gate_enable: Optional[str] = None
    if clock_net is not None:
        gated = _clock_gate_enable(module, gatefile, clock_net)
        if gated is not None:
            gate_inst, gate_enable = gated
            if gate_inst not in result.removed_clock_gates:
                result.removed_clock_gates.append(gate_inst)

    output_nets = {
        pin: net
        for pin, net in inst.pins.items()
        if pin in info.pins
        and info.pins[pin].direction == PortDirection.OUTPUT
    }
    module.remove_instance(ff_name)

    mapper = ExpressionMapper(module, chooser, prefix=f"ffs_{ff_name}")

    # front logic: the ff next_state function (Figures 3.1 a/b)
    front_expr = parse_function(rule.front_logic)
    needed = expr_inputs(front_expr)
    missing = needed - set(input_nets)
    if missing:
        raise SubstitutionError(
            f"{inst.cell} next_state uses unknown pins {sorted(missing)}"
        )
    front_net = mapper.map_expr(front_expr, input_nets)

    # asynchronous clear / preset (Figure 3.1 c)
    assert_net: Optional[str] = None
    force_kind: Optional[str] = None
    if rule.async_clear:
        assert_net = mapper.map_text(rule.async_clear, input_nets)
        force_kind = "clear"
    elif rule.async_preset:
        assert_net = mapper.map_text(rule.async_preset, input_nets)
        force_kind = "preset"

    def gated_enable(base_net: str, tag: str) -> str:
        net = base_net
        if gate_enable:
            net = _binary(
                module, chooser, "and2", net, gate_enable,
                f"ffs_{ff_name}_{tag}_cg", mapper.added,
            )
        if assert_net is not None:
            net = _binary(
                module, chooser, "or2", net, assert_net,
                f"ffs_{ff_name}_{tag}_as", mapper.added,
            )
        return net

    def forced_data(data_net: str, tag: str) -> str:
        if assert_net is None:
            return data_net
        role = "andn2" if force_kind == "clear" else "or2"
        return _binary(
            module, chooser, role, data_net, assert_net,
            f"ffs_{ff_name}_{tag}_fd", mapper.added,
        )

    mid_net = module.new_name(f"ffs_{ff_name}_m")
    module.ensure_net(mid_net)

    seq = library.cell(rule.latch_cell).sequential
    assert seq is not None
    data_pin = seq.next_state or "D"
    enable_pin = (seq.clocked_on or "G").strip("!() ")
    q_pin = library.cell(rule.latch_cell).output_pins()[0]

    master_name = f"{ff_name}_lm"
    if master_name in module.instances:
        master_name = module.new_name(master_name)
    master = module.add_instance(
        master_name,
        rule.latch_cell,
        {
            data_pin: forced_data(front_net, "m"),
            enable_pin: gated_enable(gm, "m"),
            q_pin: mid_net,
        },
    )
    master.attributes.update({"role": "latch_master", "region": region})

    q_net = output_nets.get("Q")
    if q_net is None:
        q_net = module.new_name(f"ffs_{ff_name}_q")
        module.ensure_net(q_net)
    slave_name = f"{ff_name}_ls"
    if slave_name in module.instances:
        slave_name = module.new_name(slave_name)
    slave = module.add_instance(
        slave_name,
        rule.latch_cell,
        {
            data_pin: forced_data(mid_net, "s"),
            enable_pin: gated_enable(gs, "s"),
            q_pin: q_net,
        },
    )
    slave.attributes.update({"role": "latch_slave", "region": region})

    # inverted / secondary outputs
    for out_pin, net in output_nets.items():
        if out_pin == "Q":
            continue
        function = rule.output_pins.get(out_pin, "IQ")
        if function.replace(" ", "") in ("!IQ", "IQ'"):
            _binary_unary(
                module, chooser, "inv", q_net, net,
                f"ffs_{ff_name}_qn", mapper.added,
            )
        else:
            # an uncommon output function: re-map it over the slave Q
            sub_mapper = ExpressionMapper(
                module, chooser, prefix=f"ffs_{ff_name}_{out_pin}"
            )
            mapped = sub_mapper.map_text(function, {"IQ": q_net})
            module.assigns.append((net, mapped))
            mapper.added.extend(sub_mapper.added)

    added = list(mapper.added) + [master_name, slave_name]
    for name in mapper.added:
        instance = module.instances[name]
        instance.attributes.setdefault("seq_overhead", True)
        instance.attributes.setdefault("region", region)
    result.added_instances.extend(added)
    result.replaced += 1

    # keep the region map consistent for downstream per-region analysis
    region_obj = region_map.regions.get(region)
    if region_obj is not None:
        region_obj.instances.discard(ff_name)
        region_obj.instances.update(added)
        region_map.instance_region.pop(ff_name, None)
        for name in added:
            region_map.instance_region[name] = region


def _binary(module, chooser, role, a, b, prefix, added) -> str:
    cell, pins, out_pin = chooser.gate(role)
    out_net = module.new_name(f"{prefix}_n")
    module.ensure_net(out_net)
    inst_name = module.new_name(prefix)
    module.add_instance(
        inst_name, cell, {pins[0]: a, pins[1]: b, out_pin: out_net}
    )
    added.append(inst_name)
    return out_net


def _binary_unary(module, chooser, role, src, dst, prefix, added) -> None:
    cell, pins, out_pin = chooser.gate(role)
    inst_name = module.new_name(prefix)
    module.add_instance(inst_name, cell, {pins[0]: src, out_pin: dst})
    added.append(inst_name)


def _drop_orphan_clock_gates(
    module: Module, gatefile: Gatefile, result: SubstitutionResult
) -> None:
    """Remove integrated clock gates whose outputs no longer drive pins."""
    from ..netlist.index import ConnectivityIndex

    index = ConnectivityIndex(module, gatefile)
    for name in list(result.removed_clock_gates):
        inst = module.instances.get(name)
        if inst is None:
            continue
        gck = inst.pins.get("GCK")
        if gck is not None and index.sinks_of(gck):
            result.removed_clock_gates.remove(name)
            continue
        module.remove_instance(name)
