"""Automatic region creation -- the grouping algorithm (section 3.2.2).

A *region* is a combinational logic cloud together with the flip-flops
it drives (Figure 2.2).  Regions must be independent: no combinational
connection may cross a region boundary.  The algorithm of Figures
3.3/3.4 finds them as connected components of the gate-connection
graph:

1. every connected component of combinational gates becomes a group,
   pulling in the sequential elements it drives and the combinational
   sources feeding those elements;
2. ungrouped flip-flops directly driven by grouped flip-flops join the
   driver's group (shift-register heuristic);
3. everything still ungrouped (e.g. flip-flops registering primary
   inputs) lands in the extra Group 0.

Heuristics from the paper: connections through clock pins, constants
and designer-marked *false paths* are ignored, and cells driving bits
of one named bus are merged (Figure 3.6) -- which only works while the
synthesis tool has kept ``bus[n]`` names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..liberty.gatefile import Gatefile
from ..netlist.core import Module, PortDirection, bus_base
from ..netlist.index import ConnectivityIndex
from ..obs import metrics, trace

#: histogram buckets for region sizes (instances per region)
REGION_SIZE_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


@dataclass
class Region:
    """One desynchronization region."""

    name: str
    instances: Set[str] = field(default_factory=set)

    def sequential_instances(self, module: Module, gatefile: Gatefile) -> List[str]:
        return [
            name
            for name in sorted(self.instances)
            if gatefile.info(module.instances[name].cell).is_sequential
        ]

    def combinational_instances(
        self, module: Module, gatefile: Gatefile
    ) -> List[str]:
        return [
            name
            for name in sorted(self.instances)
            if not gatefile.info(module.instances[name].cell).is_sequential
        ]


@dataclass
class RegionMap:
    """All regions of a module plus the instance index."""

    regions: Dict[str, Region] = field(default_factory=dict)
    instance_region: Dict[str, str] = field(default_factory=dict)

    def add(self, region: Region) -> None:
        self.regions[region.name] = region
        for instance in region.instances:
            self.instance_region[instance] = region.name

    def region_of(self, instance: str) -> Optional[str]:
        return self.instance_region.get(instance)

    def __len__(self) -> int:
        return len(self.regions)


class GroupingError(Exception):
    """Raised when regions are inconsistent with the netlist."""


class _Connectivity:
    """Pre-computed data-connection maps, heuristics applied."""

    def __init__(
        self,
        module: Module,
        gatefile: Gatefile,
        false_path_nets: Iterable[str] = (),
        index: Optional[ConnectivityIndex] = None,
    ):
        self.module = module
        self.gatefile = gatefile
        #: shared driver/sink cache; reusable across passes on the same
        #: (unmutated) module
        self.index = index if index is not None else ConnectivityIndex(
            module, gatefile
        )
        ignored = set(false_path_nets)
        #: net -> driving instances / reading instances (data pins only)
        self.drivers: Dict[str, List[str]] = {}
        self.readers: Dict[str, List[str]] = {}
        for net_name, net in module.nets.items():
            if net.is_constant or net_name in ignored:
                continue
            driver_refs, sink_refs = self.index.connections_of(net_name)
            for ref in driver_refs:
                if ref.instance is not None:
                    self.drivers.setdefault(net_name, []).append(ref.instance)
            for ref in sink_refs:
                if ref.instance is None:
                    continue
                info = gatefile.info(module.instances[ref.instance].cell)
                pin = info.pins.get(ref.pin)
                if pin is None or pin.is_clock:
                    continue
                self.readers.setdefault(net_name, []).append(ref.instance)
        #: bus base -> all driver instances of any bit
        self.bus_drivers: Dict[str, Set[str]] = {}
        for net_name, drivers in self.drivers.items():
            base = bus_base(net_name)
            if base is not None:
                self.bus_drivers.setdefault(base, set()).update(drivers)

    def is_comb(self, instance: str) -> bool:
        cell = self.module.instances[instance].cell
        return not self.gatefile.info(cell).is_sequential

    def input_nets(self, instance: str) -> List[str]:
        inst = self.module.instances[instance]
        info = self.gatefile.info(inst.cell)
        return [
            net
            for pin, net in inst.pins.items()
            if pin in info.pins
            and info.pins[pin].direction == PortDirection.INPUT
            and not info.pins[pin].is_clock
        ]

    def output_nets(self, instance: str) -> List[str]:
        inst = self.module.instances[instance]
        info = self.gatefile.info(inst.cell)
        return [
            net
            for pin, net in inst.pins.items()
            if pin in info.pins
            and info.pins[pin].direction == PortDirection.OUTPUT
        ]

    def comb_sources(self, instance: str) -> List[str]:
        out: List[str] = []
        for net in self.input_nets(instance):
            out.extend(d for d in self.drivers.get(net, []) if self.is_comb(d))
        return out

    def all_sources(self, instance: str) -> List[str]:
        out: List[str] = []
        for net in self.input_nets(instance):
            out.extend(self.drivers.get(net, []))
        return out

    def targets(self, instance: str) -> List[str]:
        out: List[str] = []
        for net in self.output_nets(instance):
            out.extend(self.readers.get(net, []))
        return out

    def sequential_targets(self, instance: str) -> List[str]:
        return [t for t in self.targets(instance) if not self.is_comb(t)]

    def target_bus_drivers(self, instance: str) -> Set[str]:
        out: Set[str] = set()
        for net in self.output_nets(instance):
            base = bus_base(net)
            if base is not None:
                out.update(self.bus_drivers.get(base, set()))
        return out


class _LocalConnectivity:
    """Lazy, per-net slice of :class:`_Connectivity`.

    :class:`_Connectivity` precomputes driver/reader maps for *every*
    net -- the right trade for a full grouping pass, far too expensive
    for an incremental cone check that touches a handful of nets.  This
    variant answers the same queries (identical classification and
    ordering) through the :class:`ConnectivityIndex`, computing only
    what the caller asks for.
    """

    def __init__(
        self,
        module: Module,
        gatefile: Gatefile,
        false_path_nets: Iterable[str] = (),
        index: Optional[ConnectivityIndex] = None,
    ):
        self.module = module
        self.gatefile = gatefile
        self.index = index if index is not None else ConnectivityIndex(
            module, gatefile
        )
        self.ignored = set(false_path_nets)
        self._bus_memo: Dict[str, Set[str]] = {}

    def _live(self, net_name: str) -> bool:
        net = self.module.nets.get(net_name)
        return net is not None and not net.is_constant and (
            net_name not in self.ignored
        )

    def drivers(self, net_name: str) -> List[str]:
        if not self._live(net_name):
            return []
        return [
            ref.instance
            for ref in self.index.connections_of(net_name)[0]
            if ref.instance is not None
        ]

    def readers(self, net_name: str) -> List[str]:
        if not self._live(net_name):
            return []
        out: List[str] = []
        for ref in self.index.connections_of(net_name)[1]:
            if ref.instance is None:
                continue
            info = self.gatefile.info(
                self.module.instances[ref.instance].cell
            )
            pin = info.pins.get(ref.pin)
            if pin is None or pin.is_clock:
                continue
            out.append(ref.instance)
        return out

    is_comb = _Connectivity.is_comb
    input_nets = _Connectivity.input_nets
    output_nets = _Connectivity.output_nets

    def comb_sources(self, instance: str) -> List[str]:
        out: List[str] = []
        for net in self.input_nets(instance):
            out.extend(d for d in self.drivers(net) if self.is_comb(d))
        return out

    def targets(self, instance: str) -> List[str]:
        out: List[str] = []
        for net in self.output_nets(instance):
            out.extend(self.readers(net))
        return out

    def sequential_targets(self, instance: str) -> List[str]:
        return [t for t in self.targets(instance) if not self.is_comb(t)]

    def target_bus_drivers(self, instance: str) -> Set[str]:
        out: Set[str] = set()
        for net in self.output_nets(instance):
            base = bus_base(net)
            if base is None:
                continue
            members = self._bus_memo.get(base)
            if members is None:
                # classify every bit of the bus through the index,
                # skipping ignored/constant bits like _Connectivity
                members = set()
                for net_name in self.module.nets:
                    if bus_base(net_name) != base:
                        continue
                    members.update(self.drivers(net_name))
                self._bus_memo[base] = members
            out.update(members)
        return out


def copy_region_map(region_map: RegionMap) -> RegionMap:
    """Deep copy of a region map (regions own fresh instance sets)."""
    out = RegionMap()
    for region in region_map.regions.values():
        out.regions[region.name] = Region(region.name, set(region.instances))
    out.instance_region = dict(region_map.instance_region)
    return out


def regroup_incremental(
    module: Module,
    gatefile: Gatefile,
    cached_map: RegionMap,
    dirty_cells: Iterable[str],
    false_path_nets: Iterable[str] = (),
    use_bus_heuristic: bool = True,
) -> Optional[RegionMap]:
    """Revalidate the cached partition around ``dirty_cells`` and splice.

    For edits that preserve connectivity and pin classification (cell
    swaps within a drive-strength family, wire re-annotation), region
    membership cannot change -- but rather than trusting the caller,
    this recomputes the grouping relations *incident to the dirty
    cells* through a lazy connectivity slice and checks they are
    consistent with the cached partition:

    - a dirty combinational cell must share its region with every
      combinational source, every target and (with the bus heuristic)
      every bus-partner driver;
    - every sequential partner it pulls must already be grouped;
    - a dirty sequential cell's sequential targets must be grouped.

    On success returns a deep copy of the cached partition (the splice:
    membership provably unchanged around the edit).  Returns ``None``
    when any relation disagrees -- the caller must rerun the full
    grouping algorithm.  Only sound for connectivity-preserving edits;
    structural edits must go straight to :func:`group_regions`.
    """
    conn = _LocalConnectivity(module, gatefile, false_path_nets)
    cells = sorted(set(dirty_cells))
    with trace.span("regroup_incremental", dirty=len(cells)) as span:
        for cell in cells:
            if cell not in module.instances:
                metrics.counter("desync.grouping.incremental_misses").inc()
                return None
            region = cached_map.region_of(cell)
            if region is None:
                metrics.counter("desync.grouping.incremental_misses").inc()
                return None
            if conn.is_comb(cell):
                partners: Set[str] = set(conn.comb_sources(cell))
                partners.update(conn.targets(cell))
                if use_bus_heuristic:
                    partners.update(conn.target_bus_drivers(cell))
                partners.discard(cell)
                for partner in partners:
                    partner_region = cached_map.region_of(partner)
                    if partner_region is None or (
                        conn.is_comb(partner) and partner_region != region
                    ):
                        metrics.counter(
                            "desync.grouping.incremental_misses"
                        ).inc()
                        return None
            else:
                for target in conn.sequential_targets(cell):
                    if cached_map.region_of(target) is None:
                        metrics.counter(
                            "desync.grouping.incremental_misses"
                        ).inc()
                        return None
        span.set("reused_regions", len(cached_map))
    metrics.counter("desync.grouping.incremental_hits").inc()
    return copy_region_map(cached_map)


def validate_independence_for(
    module: Module,
    gatefile: Gatefile,
    region_map: RegionMap,
    regions: Iterable[str],
    false_path_nets: Iterable[str] = (),
) -> List[str]:
    """:func:`validate_independence`, scoped to the given regions.

    Checks every combinational connection incident to a member of
    ``regions`` (both directions: a member driving out and an outside
    cell driving in are the same edge, so walking members' targets
    covers inbound violations via the source's own membership when the
    source is also in scope; the inbound direction is covered by
    walking members' combinational *sources* too).  Used by the
    incremental flow to re-verify only the edit's membership cone.
    """
    wanted = set(regions)
    conn = _LocalConnectivity(module, gatefile, false_path_nets)
    problems: List[str] = []
    with trace.span("validate_independence_for", regions=len(wanted)) as span:
        for region_name in sorted(wanted):
            region = region_map.regions.get(region_name)
            if region is None:
                continue
            for instance in sorted(region.instances):
                if not conn.is_comb(instance):
                    continue
                for target in conn.targets(instance):
                    if not conn.is_comb(target):
                        continue
                    target_region = region_map.region_of(target)
                    if target_region != region_name:
                        problems.append(
                            f"comb connection {instance} ({region_name}) -> "
                            f"{target} ({target_region})"
                        )
                for source in conn.comb_sources(instance):
                    source_region = region_map.region_of(source)
                    if source_region != region_name and (
                        source_region not in wanted
                    ):
                        problems.append(
                            f"comb connection {source} ({source_region}) -> "
                            f"{instance} ({region_name})"
                        )
        span.set("violations", len(problems))
    return problems


def record_region_metrics(region_map: RegionMap) -> None:
    """Publish region count and size distribution to the registry."""
    metrics.gauge("desync.grouping.regions").set(len(region_map))
    histogram = metrics.histogram(
        "desync.region.size", buckets=REGION_SIZE_BUCKETS
    )
    for region in region_map.regions.values():
        histogram.observe(len(region.instances))


def group_regions(
    module: Module,
    gatefile: Gatefile,
    false_path_nets: Iterable[str] = (),
    use_bus_heuristic: bool = True,
) -> RegionMap:
    """Run the automatic grouping algorithm of Figure 3.4."""
    with trace.span("grouping", instances=len(module.instances)) as span:
        region_map = _group_regions(
            module, gatefile, false_path_nets, use_bus_heuristic
        )
        span.set("regions", len(region_map))
    metrics.counter("desync.grouping.runs").inc()
    record_region_metrics(region_map)
    return region_map


def _group_regions(
    module: Module,
    gatefile: Gatefile,
    false_path_nets: Iterable[str],
    use_bus_heuristic: bool,
) -> RegionMap:
    conn = _Connectivity(module, gatefile, false_path_nets)
    grouped: Dict[str, int] = {}
    groups: List[Set[str]] = []

    def assign(instance: str, group_index: int, worklist: List[str]) -> None:
        if instance in grouped:
            return
        grouped[instance] = group_index
        groups[group_index].add(instance)
        worklist.append(instance)

    # -- step 1: connected components seeded from combinational gates
    for seed in module.instances:
        if seed in grouped or not conn.is_comb(seed):
            continue
        group_index = len(groups)
        groups.append(set())
        worklist: List[str] = []
        assign(seed, group_index, worklist)
        while worklist:
            cell = worklist.pop()
            for source in conn.comb_sources(cell):
                assign(source, group_index, worklist)
            if conn.is_comb(cell):
                for target in conn.targets(cell):
                    assign(target, group_index, worklist)
                if use_bus_heuristic:
                    for driver in conn.target_bus_drivers(cell):
                        assign(driver, group_index, worklist)

    # merge groups that share members through sequential pulls
    # (assign() already prevents double membership, so groups are disjoint)

    # -- step 2: flip-flops directly driven by grouped flip-flops
    changed = True
    while changed:
        changed = False
        for instance, group_index in list(grouped.items()):
            if conn.is_comb(instance):
                continue
            for target in conn.sequential_targets(instance):
                if target not in grouped:
                    grouped[target] = group_index
                    groups[group_index].add(target)
                    changed = True

    # -- step 3: everything else goes to Group 0
    group0: Set[str] = set()
    for instance in module.instances:
        if instance not in grouped:
            group0.add(instance)

    region_map = RegionMap()
    if group0:
        region_map.add(Region("G0", group0))
    for index, members in enumerate(groups, start=1):
        if members:
            region_map.add(Region(f"G{index}", members))
    return region_map


def manual_regions(
    module: Module, assignment: Dict[str, str]
) -> RegionMap:
    """Build a RegionMap from an explicit instance -> region mapping.

    Instances absent from ``assignment`` go to Group 0, mirroring the
    tool's manual-specification mode (section 3.2.2).
    """
    region_map = RegionMap()
    by_region: Dict[str, Set[str]] = {}
    for instance in module.instances:
        region = assignment.get(instance, "G0")
        by_region.setdefault(region, set()).add(instance)
    for name, members in sorted(by_region.items()):
        region_map.add(Region(name, members))
    record_region_metrics(region_map)
    return region_map


def single_region(module: Module, name: str = "G1") -> RegionMap:
    """Whole design as one region (the ARM case, section 5.3)."""
    region_map = RegionMap()
    region_map.add(Region(name, set(module.instances)))
    record_region_metrics(region_map)
    return region_map


def validate_independence(
    module: Module,
    gatefile: Gatefile,
    region_map: RegionMap,
    false_path_nets: Iterable[str] = (),
) -> List[str]:
    """Check no combinational connection crosses region boundaries.

    Returns a list of violation descriptions (empty when regions are
    independent, the precondition of the basic desynchronization
    methodology).
    """
    with trace.span("validate_independence", regions=len(region_map)) as span:
        conn = _Connectivity(module, gatefile, false_path_nets)
        problems: List[str] = []
        for instance in module.instances:
            if not conn.is_comb(instance):
                continue
            source_region = region_map.region_of(instance)
            for target in conn.targets(instance):
                if not conn.is_comb(target):
                    continue
                target_region = region_map.region_of(target)
                if source_region != target_region:
                    problems.append(
                        f"comb connection {instance} ({source_region}) -> "
                        f"{target} ({target_region})"
                    )
        span.set("violations", len(problems))
    return problems
