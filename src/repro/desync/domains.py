"""Clock-domain analysis and partial desynchronization (future work).

Section 4.1: "Currently, the desynchronization flow supports only
single clock circuits"; chapter 6 lists multiple-clock-domain support
as future work.  This module implements it as *partial
desynchronization*:

- :func:`analyze_clock_domains` traces every flip-flop's clock pin back
  through buffers and integrated clock gates to its root port,
  partitioning the sequential elements into domains;
- ``DesyncOptions.clock_domain`` selects one domain to desynchronize.
  Its flip-flops become latch pairs under a handshake network as usual;
  the other domains keep their flip-flops and clocks untouched, and
  every signal crossing from a foreign domain into the desynchronized
  one is treated as an *environment* input (the foreign domain is
  asynchronous to the handshake network by definition -- the usual CDC
  discipline applies, exactly as in a multi-clock synchronous design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..liberty.gatefile import Gatefile
from ..netlist.core import Module, PortDirection, driver_of


@dataclass
class ClockDomains:
    """Result of clock-domain analysis."""

    #: clock root (port bit or net) -> flip-flop instance names
    domains: Dict[str, Set[str]] = field(default_factory=dict)
    #: flip-flops whose clock could not be traced to a root
    unresolved: Set[str] = field(default_factory=set)

    @property
    def is_single(self) -> bool:
        return len(self.domains) <= 1

    def domain_of(self, instance: str) -> Optional[str]:
        for root, members in self.domains.items():
            if instance in members:
                return root
        return None


def _clock_root(
    module: Module,
    gatefile: Gatefile,
    net_name: str,
    max_hops: int = 50,
    index=None,
) -> Optional[str]:
    """Trace a clock net back to its root port through buffers/gates."""
    current = net_name
    port_bits = set(module.port_bits(PortDirection.INPUT))
    for _ in range(max_hops):
        if current in port_bits:
            return current
        if index is not None:
            ref = index.driver_of(current)
        else:
            ref = driver_of(module, current, gatefile)
        if ref is None:
            return current  # internally generated (e.g. divided) clock
        if ref.instance is None:
            return ref.pin
        inst = module.instances[ref.instance]
        info = gatefile.cells.get(inst.cell)
        if info is None:
            return current
        if info.is_buffer or info.is_inverter:
            current = inst.pins[info.data_inputs[0]]
            continue
        # integrated clock gate: follow the CK input
        if "GCK" in info.outputs and "CK" in inst.pins:
            current = inst.pins["CK"]
            continue
        return current  # generated clock: its net is the root
    return None


def analyze_clock_domains(module: Module, gatefile: Gatefile) -> ClockDomains:
    """Partition sequential elements by clock root."""
    from ..netlist.index import ConnectivityIndex

    result = ClockDomains()
    # one shared index: every flip-flop on a clock tree re-traces the
    # same buffer chain, so the driver lookups repeat heavily
    index = ConnectivityIndex(module, gatefile)
    for name, inst in module.instances.items():
        info = gatefile.cells.get(inst.cell)
        if info is None or not info.is_sequential:
            continue
        clock_pins = info.clock_pins
        if not clock_pins:
            continue
        clock_net = inst.pins.get(clock_pins[0])
        if clock_net is None:
            result.unresolved.add(name)
            continue
        root = _clock_root(module, gatefile, clock_net, index=index)
        if root is None:
            result.unresolved.add(name)
            continue
        result.domains.setdefault(root, set()).add(name)
    return result


class MultipleClockError(ValueError):
    """Raised when a multi-clock design is converted without selecting
    a domain (the paper's single-clock restriction, section 4.1)."""


def select_domain(
    domains: ClockDomains, clock_domain: Optional[str]
) -> Optional[Set[str]]:
    """Flip-flops of the selected domain; None when everything converts.

    Raises :class:`MultipleClockError` for multi-clock designs without
    an explicit selection.
    """
    # clock-gate latches trace to the same roots as their flip-flops,
    # so pure ICG pseudo-domains do not count
    real = {
        root: members for root, members in domains.domains.items() if members
    }
    if clock_domain is None:
        if len(real) > 1:
            raise MultipleClockError(
                "design has multiple clock domains "
                f"({sorted(real)}); pass DesyncOptions.clock_domain to "
                "desynchronize one of them (partial desynchronization)"
            )
        return None
    if clock_domain not in real:
        raise MultipleClockError(
            f"unknown clock domain {clock_domain!r}; available: "
            f"{sorted(real)}"
        )
    return set(real[clock_domain])
