"""Post-layout ECO calibration of delay elements (future work, ch. 6).

"After the final layout, Engineering Change Order (ECO) can be used to
calibrate the length of the delay elements taking into consideration
the final delays including full parasitics extraction."

After the backend has annotated wire parasitics, both sides of the
matching equation have moved: the region clouds got slower (wire RC)
and so did the delay elements themselves.  :func:`eco_calibrate`
re-measures both with the layout-aware STA and patches each element in
place -- extending the AND chain where the margin has eroded, trimming
it where the post-layout element is needlessly long.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..liberty.model import Library
from ..liberty.techmap import GateChooser
from ..netlist.core import Module, PinRef
from ..sta.analysis import propagate
from ..sta.graph import build_timing_graph
from .delays import DelayElement
from .network import region_delays


@dataclass
class EcoChange:
    region: str
    cloud_delay: float
    element_delay: float
    old_length: int
    new_length: int

    @property
    def action(self) -> str:
        if self.new_length > self.old_length:
            return "extended"
        if self.new_length < self.old_length:
            return "trimmed"
        return "unchanged"


@dataclass
class EcoReport:
    changes: List[EcoChange] = field(default_factory=list)

    @property
    def extended(self) -> int:
        return sum(1 for c in self.changes if c.action == "extended")

    @property
    def trimmed(self) -> int:
        return sum(1 for c in self.changes if c.action == "trimmed")

    def to_text(self) -> str:
        lines = ["ECO delay-element calibration (post-layout)"]
        lines.append(
            f"{'region':>8s} {'cloud (ns)':>11s} {'element (ns)':>13s} "
            f"{'levels':>13s} {'action':>10s}"
        )
        for change in self.changes:
            lines.append(
                f"{change.region:>8s} {change.cloud_delay:>11.3f} "
                f"{change.element_delay:>13.3f} "
                f"{change.old_length:>5d} -> {change.new_length:<4d} "
                f"{change.action:>10s}"
            )
        return "\n".join(lines)


def measure_element_delay(
    module: Module,
    library: Library,
    element: DelayElement,
    corner: str = "worst",
) -> float:
    """Layout-aware rise delay of a placed delay element's chain.

    Sums the per-stage arc delays at the *annotated* loads (sink pin
    caps plus extracted wire caps) plus annotated wire delays -- the
    "final delays including full parasitics extraction" of chapter 6.
    """
    from ..sta.graph import compute_net_loads

    derate = library.corner(corner).derate
    loads = compute_net_loads(module, library)
    wire_delays = module.attributes.get("net_wire_delay", {})
    total = 0.0
    for name in element.instances:
        inst = module.instances.get(name)
        if inst is None or not inst.cell.startswith("AND"):
            continue
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        out_net = inst.pins.get("Z")
        if out_net is None:
            continue
        arc = cell.delay_arcs()[0]
        total += arc.delay(loads.get(out_net, 0.0), rise=True) * derate
        total += wire_delays.get(out_net, 0.0) * derate
    return total


def _extend_element(
    module: Module,
    chooser: GateChooser,
    element: DelayElement,
    extra_levels: int,
    cell_info=None,
) -> None:
    """Splice ``extra_levels`` AND stages just before the element output.

    ECO style: the existing output net keeps its name (and its sink, the
    controller RI pin); the old final stage now feeds the spliced chain.
    """
    from ..liberty.gatefile import build_gatefile
    from ..netlist.index import ConnectivityIndex

    if cell_info is None:
        cell_info = build_gatefile(chooser.library)
    and_cell, and_pins, and_out = chooser.gate("and2")
    out_net = element.output_net
    driver_ref = ConnectivityIndex(module, cell_info).driver_of(out_net)
    if driver_ref is None or driver_ref.instance is None:
        raise ValueError(f"delay element output {out_net!r} has no driver")
    driver_inst, driver_pin = driver_ref.instance, driver_ref.pin
    previous = module.new_name(f"eco_{element.region}_n")
    module.ensure_net(previous)
    module.connect(driver_inst, driver_pin, previous)
    for level in range(extra_levels):
        is_last = level == extra_levels - 1
        stage_out = out_net if is_last else module.new_name(
            f"eco_{element.region}_n"
        )
        module.ensure_net(stage_out)
        inst_name = module.new_name(f"eco_{element.region}_u")
        inst = module.add_instance(
            inst_name,
            and_cell,
            {
                and_pins[0]: previous,
                and_pins[1]: element.input_net,
                and_out: stage_out,
            },
        )
        inst.attributes.update(
            {"role": "delay_element", "region": element.region,
             "dont_touch": True, "eco": True}
        )
        element.instances.append(inst_name)
        previous = stage_out
    element.length += extra_levels


def eco_calibrate(
    desync_result,
    library: Library,
    corner: str = "worst",
    margin: float = 0.10,
    chooser: Optional[GateChooser] = None,
    backend: str = "compiled",
) -> EcoReport:
    """Re-measure clouds and elements post-layout; extend short elements.

    Elements that are too *long* are reported (``trimmed`` would require
    re-routing the output tap; we record the opportunity but only
    lengthen, the conservative ECO).  Returns the change report.

    With the compiled backend the cloud measurement reuses the module's
    cached flat graph: when the backend annotated parasitics through
    :func:`repro.sta.annotate_wires`, only the touched fanout cones
    were re-propagated, not the whole design.
    """
    module = desync_result.module
    chooser = chooser or GateChooser(library)
    report = EcoReport()

    from ..liberty.gatefile import build_gatefile

    cell_info = build_gatefile(library)
    clouds = region_delays(
        module, library, desync_result.region_map, corner, backend=backend
    )
    per_level = (
        desync_result.ladder.rise_delays[0]
        if desync_result.ladder.rise_delays
        else 0.05
    )
    derate = library.corner(corner).derate
    ladder_derate = library.corner(desync_result.ladder.corner).derate

    for region, element in sorted(desync_result.network.delay_elements.items()):
        cloud = clouds.get(region, 0.0)
        if cloud <= 0:
            continue
        actual = measure_element_delay(module, library, element, corner)
        required = cloud * (1.0 + margin)
        old_length = element.length
        if actual < required:
            level_delay = max(
                per_level / ladder_derate * derate, 1e-6
            )
            missing = required - actual
            extra = max(1, int(missing / level_delay) + 1)
            _extend_element(module, chooser, element, extra, cell_info)
        report.changes.append(
            EcoChange(
                region=region,
                cloud_delay=cloud,
                element_delay=actual,
                old_length=old_length,
                new_length=element.length,
            )
        )
    return report


#: names forwarded lazily from :mod:`repro.flow.incremental` -- the
#: incremental re-flow is the generalisation of this module's
#: element-only ECO to arbitrary netlist edits, so its edit vocabulary
#: lives here too.  Lazy (PEP 562) because ``desync/__init__`` imports
#: this module before ``tool``, which ``flow.incremental`` needs.
_INCREMENTAL_EXPORTS = (
    "EditError",
    "IncrementalSession",
    "NetlistEdit",
    "ReflowOutcome",
    "apply_edit",
    "load_edits",
)


def __getattr__(name):
    if name in _INCREMENTAL_EXPORTS:
        from ..flow import incremental

        return getattr(incremental, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
