"""The desynchronization methodology -- the paper's core contribution."""

from .cmuller import CMullerError, build_cmuller, cmuller_truth_table
from .controllers import (
    C_RESET_CELL,
    C_SET_CELL,
    CONTROL_OVERHEAD_GATES,
    ControllerInstance,
    controller_stg,
    ensure_controller_cell,
    ensure_controller_cells,
    place_controller,
)
from .ddg import ENV, build_ddg, fanin_fanout, predecessors_of, successors_of
from .delays import (
    DelayElement,
    DelayElementError,
    DelayLadder,
    build_delay_element,
    characterize_ladder,
    choose_length,
    mux_selection_delay,
)
from .ffsub import (
    SubstitutionError,
    SubstitutionResult,
    master_enable_net,
    slave_enable_net,
    substitute_flip_flops,
)
from .network import (
    ControlNetwork,
    NetworkError,
    insert_control_network,
    region_delays,
)
from .regions import (
    GroupingError,
    Region,
    RegionMap,
    group_regions,
    manual_regions,
    single_region,
    validate_independence,
)
from .constraints import disables_for_sta, generate_constraints
from .eco import EcoChange, EcoReport, eco_calibrate, measure_element_delay
from .domains import (
    ClockDomains,
    MultipleClockError,
    analyze_clock_domains,
    select_domain,
)
from .tool import DesyncOptions, DesyncResult, Drdesync, desynchronize

__all__ = [
    "CMullerError",
    "CONTROL_OVERHEAD_GATES",
    "C_RESET_CELL",
    "C_SET_CELL",
    "ControlNetwork",
    "ControllerInstance",
    "DelayElement",
    "DelayElementError",
    "DelayLadder",
    "DesyncOptions",
    "DesyncResult",
    "Drdesync",
    "ENV",
    "GroupingError",
    "NetworkError",
    "Region",
    "RegionMap",
    "SubstitutionError",
    "SubstitutionResult",
    "build_cmuller",
    "build_ddg",
    "build_delay_element",
    "characterize_ladder",
    "choose_length",
    "cmuller_truth_table",
    "controller_stg",
    "desynchronize",
    "ClockDomains",
    "MultipleClockError",
    "analyze_clock_domains",
    "select_domain",
    "EcoChange",
    "EcoReport",
    "eco_calibrate",
    "measure_element_delay",
    "disables_for_sta",
    "ensure_controller_cell",
    "ensure_controller_cells",
    "fanin_fanout",
    "generate_constraints",
    "group_regions",
    "insert_control_network",
    "manual_regions",
    "master_enable_net",
    "mux_selection_delay",
    "place_controller",
    "predecessors_of",
    "region_delays",
    "single_region",
    "slave_enable_net",
    "substitute_flip_flops",
    "successors_of",
    "validate_independence",
]
