"""C-Muller (rendezvous) element construction (sections 2.4.3 / 3.1.5).

A C-element waits for *all* inputs high before raising its output and
all inputs low before lowering it (Table 2.1).  The paper synthesises
multi-input C-elements (2 to 10 inputs) from Verilog HDL with a
conventional synthesis tool; here we do the equivalent mapping onto
standard cells directly:

    y = AND(inputs) + y * OR(inputs)
      = MAJ3( AND(inputs), OR(inputs), y )      [since AND implies OR]

so every C-element is an AND tree + OR tree + one MAJ3 gate closed in
feedback.  The 2-input case degenerates to a single MAJ3 (the textbook
C-element).  A reset input forces the output low through an ANDN2 on
the feedback/output path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..liberty.techmap import GateChooser
from ..netlist.core import Module
from ..obs import metrics

#: histogram buckets for C-element input counts and tree depths
CMULLER_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16)


class CMullerError(Exception):
    """Raised for invalid C-element requests."""


def build_cmuller(
    module: Module,
    inputs: Sequence[str],
    output: str,
    chooser: GateChooser,
    prefix: str = "cm",
    reset: Optional[str] = None,
    attributes: Optional[Dict[str, object]] = None,
) -> List[str]:
    """Instantiate an n-input C-element; returns created instance names.

    ``inputs`` are existing net names, ``output`` the (created) output
    net.  With ``reset`` given, the output is forced low while the
    reset net is high.  ``attributes`` are stamped on every created
    instance (role/region bookkeeping for constraints and reports).
    """
    if len(inputs) < 2:
        raise CMullerError("a C-element needs at least two inputs")
    if len(set(inputs)) != len(inputs):
        raise CMullerError(f"duplicate C-element inputs: {inputs}")
    module.ensure_net(output)
    created: List[str] = []
    attrs = dict(attributes or {})
    attrs.setdefault("role", "cmuller")

    def emit(role: str, pin_nets: Dict[str, str]) -> str:
        cell, pins, out_pin = chooser.gate(role)
        inst_name = module.new_name(f"{prefix}_{role}")
        inst = module.add_instance(inst_name, cell, pin_nets)
        inst.attributes.update(attrs)
        created.append(inst_name)
        return inst_name

    def tree(role: str, nets: List[str]) -> str:
        """Reduce nets with 2-input gates; returns the final net."""
        nets = list(nets)
        while len(nets) > 1:
            a = nets.pop(0)
            b = nets.pop(0)
            out_net = module.new_name(f"{prefix}_n")
            module.ensure_net(out_net)
            cell, pins, out_pin = chooser.gate(role)
            bindings = {pins[0]: a, pins[1]: b, out_pin: out_net}
            emit(role, bindings)
            nets.append(out_net)
        return nets[0]

    # with reset, the MAJ3 drives a raw net and the reset gate produces
    # the output; the feedback is taken from the *gated* output so a
    # reset pulse truly empties the element
    if reset is None:
        raw = output
    else:
        raw = module.new_name(f"{prefix}_raw")
        module.ensure_net(raw)

    if len(inputs) == 2:
        first, second = inputs[0], inputs[1]
    else:
        first = tree("and2", list(inputs))
        second = tree("or2", list(inputs))
    cell, pins, out_pin = chooser.gate("maj3")
    emit(
        "maj3",
        {pins[0]: first, pins[1]: second, pins[2]: output, out_pin: raw},
    )

    if reset is not None:
        cell, pins, out_pin = chooser.gate("andn2")
        emit("andn2", {pins[0]: raw, pins[1]: reset, out_pin: output})
    metrics.counter("desync.cmuller.elements").inc()
    metrics.histogram("desync.cmuller.inputs", buckets=CMULLER_BUCKETS).observe(
        len(inputs)
    )
    # the 2-input reduce trees (AND + OR) are log2-deep; +1 for the MAJ3
    metrics.histogram(
        "desync.cmuller.tree_depth", buckets=CMULLER_BUCKETS
    ).observe(math.ceil(math.log2(len(inputs))) + 1)
    return created


def cmuller_truth_table() -> List[Dict[str, object]]:
    """Table 2.1 of the paper, as data (used by tests and the bench)."""
    return [
        {"inputs": "all 0's", "output": 0},
        {"inputs": "all 1's", "output": 1},
        {"inputs": "other", "output": "unchanged"},
    ]
