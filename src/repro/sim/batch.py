"""Bit-parallel lane simulator: one sweep services a whole MC batch.

The Monte-Carlo variability study (fig 5.4) needs gate-level evidence,
but simulating thousands of chips one at a time is unaffordable even on
the compiled event kernel.  This module packs ``lanes`` chips into the
bit positions of Python's arbitrary-width ints: every net carries a
*two-plane* encoding -- a value plane and an x plane, one bit per lane,
with the invariant ``value & x == 0`` -- and every cell evaluation is a
handful of bitwise ops produced by the lane codegen tier in
:mod:`repro.liberty.functions`.  Evaluating 64 chips therefore costs
about the same as evaluating one.

The kernel is *cycle-based* rather than event-driven: the combinational
cloud is levelized once through :meth:`ConnectivityIndex.topo_order`
(sequential elements are the sources), so settling a clock phase is a
single ordered sweep over the dirty subset, and FF/latch state machines
run vectorized under lane masks (reset, enable and clock are plane
pairs, so one machine evaluation can simultaneously clock some lanes,
hold others in reset and leave the rest idle).

Semantics match the event kernel for clocked designs driven through
:class:`~repro.sim.testbench.SyncTestbench`: stimulus settles before the
rising edge, all flip-flops sample their pre-edge data cone (machine
evaluation is two-pass: every machine reads its inputs before any
output commits), and captured sequences are bit-identical to a solo
:class:`~repro.sim.simulator.Simulator` run of the same chip -- the
per-chip compiled kernel stays the parity oracle, enforced by
:func:`assert_lane_parity` in tests and the MC-throughput benchmark.

One documented divergence: while an asynchronous clear/preset is held,
the event kernel records a capture per *event* that re-evaluates the
machine (including data-cone ripples), whereas the batch kernel records
one per *phase boundary* whose trigger planes changed.  Async lanes are
therefore compared on state trajectories, not capture counts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..liberty.functions import (
    compile_function_lanes_indexed,
    pack_lanes,
    unpack_lane,
    unpack_lanes,
)
from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection
from ..netlist.index import ConnectivityIndex
from ..obs import metrics, prof
from .simulator import SimulationError, Simulator, Value

#: a (value plane, x plane) pair
Planes = Tuple[int, int]


class _LibraryCellInfo:
    """Adapt a :class:`Library` to the ``CellInfoProvider`` protocol.

    ``ConnectivityIndex`` classifies pins through ``pin_direction``;
    the gate-level netlist file implements it, a bare :class:`Library`
    does not, so the batch simulator bridges the two.
    """

    __slots__ = ("library",)

    def __init__(self, library: Library):
        self.library = library

    def pin_direction(self, cell: str, pin: str) -> Optional[PortDirection]:
        library_cell = self.library.cells.get(cell)
        if library_cell is None:
            return None
        library_pin = library_cell.pins.get(pin)
        return library_pin.direction if library_pin is not None else None


def _cell_lane_data(cell) -> dict:
    """Per-cell-type lane-kernel data, cached on the cell itself.

    Same discipline as the event kernel's ``_cell_kernel_data``: slot
    layout and compiled lane evaluators depend only on the library cell,
    so every instance -- across every batch simulator a study builds --
    shares one entry under the ``"lanes"`` key of the cell's
    ``_sim_kernel_cache``.
    """
    cache = cell.__dict__.setdefault("_sim_kernel_cache", {})
    data = cache.get("lanes")
    if data is not None:
        return data
    seq = cell.sequential
    state_pin = seq.state_pin if seq is not None else "IQ"
    slots = tuple(sorted(set(cell.pins) | {state_pin}))
    slot_index = {pin: i for i, pin in enumerate(slots)}
    out_specs = []
    for pin in cell.output_pins():
        function = cell.pins[pin].function
        if function is not None:
            out_specs.append((pin, compile_function_lanes_indexed(function, slots)))
    if seq is not None:
        seq_fns = tuple(
            compile_function_lanes_indexed(text, slots) if text else None
            for text in (seq.next_state, seq.clocked_on, seq.clear, seq.preset)
        )
    else:
        seq_fns = (None, None, None, None)
    trigger_pins = set()
    for fn in seq_fns[1:]:
        if fn is not None:
            trigger_pins |= fn.inputs  # type: ignore[attr-defined]
    data = {
        "state_pin": state_pin,
        "slots": slots,
        "slot_index": slot_index,
        "state_base": 2 * slot_index[state_pin],
        "out_specs": tuple(out_specs),
        "seq_fns": seq_fns,
        "trigger_pins": frozenset(trigger_pins),
        "drive_data": any(
            fn.inputs - {state_pin}  # type: ignore[attr-defined]
            for _, fn in out_specs
        ),
        "input_pins": tuple(cell.input_pins()),
        "is_ff": cell.kind == CellKind.FLIP_FLOP,
        "is_latch": cell.kind == CellKind.LATCH,
    }
    cache["lanes"] = data
    return data


class _LaneModel:
    """Pre-compiled lane behaviour of one instance."""

    __slots__ = (
        "name",
        "is_ff",
        "is_latch",
        "dirty",
        "trig_dirty",
        "data_dirty",
        "env",
        "outputs",
        "state_base",
        "prev_clock",
        "captures",
        "seq_next",
        "seq_clock",
        "seq_clear",
        "seq_preset",
        "drive_data",
    )

    def __init__(self, name: str):
        self.name = name
        self.is_ff = False
        self.is_latch = False
        #: combinational/latch re-evaluation pending (an input committed)
        self.dirty = False
        #: a trigger net (clock / clear / preset cone) committed
        self.trig_dirty = False
        #: a non-trigger input committed on a ``drive_data`` sequential
        self.data_dirty = False
        #: flat plane list: slot ``k``'s value plane at ``2k``, x at ``2k+1``
        self.env: List[int] = []
        #: (lane evaluator, output net record) drive list
        self.outputs: List[Tuple[Callable, list]] = []
        self.state_base = 0
        #: previous clock/enable planes; the simulator re-initializes
        #: this to all-lanes-X (the event kernel's ``prev_clock = None``)
        self.prev_clock: Planes = (0, 0)
        #: capture log: (lane mask, value plane, x plane) per event
        self.captures: List[Tuple[int, int, int]] = []
        self.seq_next = None
        self.seq_clock = None
        self.seq_clear = None
        self.seq_preset = None
        self.drive_data = False


class _LaneValuesView:
    """Read-only ``net_values``-style mapping decoding one lane.

    Lets reactive stimulus closures written against the event
    simulator's ``sim.net_values.get(net)`` API drive a batch run
    unchanged -- under broadcast stimulus every lane sees the same
    values, so decoding lane 0 is representative.
    """

    __slots__ = ("_sim", "lane")

    def __init__(self, sim: "BatchSimulator", lane: int = 0):
        self._sim = sim
        self.lane = lane

    def get(self, net: str, default: Value = None) -> Value:
        rec = self._sim._net_rec.get(net)
        if rec is None:
            return default
        return unpack_lane((rec[0], rec[1]), self.lane)

    def __getitem__(self, net: str) -> Value:
        rec = self._sim._net_rec.get(net)
        if rec is None:
            raise KeyError(net)
        return unpack_lane((rec[0], rec[1]), self.lane)

    def __contains__(self, net: str) -> bool:
        return net in self._sim._net_rec

    def __iter__(self):
        return iter(self._sim._net_rec)

    def __len__(self) -> int:
        return len(self._sim._net_rec)


class BatchSimulator:
    """Cycle-based functional simulator evaluating ``lanes`` chips at once.

    Drop-in enough for :class:`SyncTestbench` (which detects the
    ``is_batch`` marker) and :func:`initialize_registers`.  Inputs can
    be broadcast (a scalar 0/1/None reaches every lane) or per-lane (a
    sequence of ``lanes`` scalars); captures are read back per lane
    through :meth:`capture_sequences` and compared against solo event
    -kernel runs by :func:`assert_lane_parity`.
    """

    #: duck-typing marker SyncTestbench uses to pick the batch path
    is_batch = True

    def __init__(
        self,
        module: Module,
        library: Library,
        lanes: int = 64,
    ):
        if lanes < 1:
            raise SimulationError("lane count must be >= 1")
        self.module = module
        self.library = library
        self.lanes = lanes
        #: full lane mask: bit i = lane i
        self.mask = (1 << lanes) - 1
        #: untimed kernel; kept for stimulus-closure compatibility
        self.now = 0.0
        self.cycles = 0
        self.cell_evals = 0
        self.seq_evals = 0
        self.commits = 0
        self._models: Dict[str, _LaneModel] = {}
        #: net -> record ``[value plane, x plane, bindings, fans, name]``
        self._net_rec: Dict[str, list] = {}

        mask = self.mask
        for net_name, net in module.nets.items():
            if net.is_constant:
                value = mask if net.constant_value else 0
                self._net_rec[net_name] = [value, 0, [], [], net_name]
            else:
                self._net_rec[net_name] = [0, mask, [], [], net_name]

        net_rec = self._net_rec
        drivers: Dict[str, str] = {}
        comb_models: Dict[str, _LaneModel] = {}
        self._ffs: List[_LaneModel] = []
        self._latches: List[_LaneModel] = []
        for inst in module.instances.values():
            cell = library.cells.get(inst.cell)
            if cell is None:
                raise SimulationError(
                    f"cell {inst.cell!r} of {inst.name!r} not in library"
                )
            data = _cell_lane_data(cell)
            model = _LaneModel(inst.name)
            model.prev_clock = (0, mask)
            model.is_ff = data["is_ff"]
            model.is_latch = data["is_latch"]
            is_seq = model.is_ff or model.is_latch
            state_pin = data["state_pin"]
            model.state_base = data["state_base"]
            (
                model.seq_next,
                model.seq_clock,
                model.seq_clear,
                model.seq_preset,
            ) = data["seq_fns"]
            model.drive_data = data["drive_data"]
            inst_pins = inst.pins
            for pin, fn in data["out_specs"]:
                net = inst_pins.get(pin)
                if net is None:
                    continue
                previous = drivers.get(net)
                if previous is not None:
                    raise SimulationError(
                        f"net {net!r} driven by both {previous!r} and "
                        f"{inst.name!r}: the batch kernel has no event "
                        "ordering to resolve multiple drivers"
                    )
                drivers[net] = inst.name
                model.outputs.append((fn, net_rec[net]))
            trigger_pins = data["trigger_pins"]
            for pin in data["input_pins"]:
                net = inst_pins.get(pin)
                if net is None:
                    continue
                fans = net_rec[net][3]
                if not is_seq:
                    entry = (model, 0)
                elif pin in trigger_pins:
                    entry = (model, 1)
                elif model.is_latch or model.drive_data:
                    entry = (model, 2)
                else:
                    continue  # a plain FF data pin is read lazily at the edge
                if entry not in fans:
                    fans.append(entry)
            slot_index = data["slot_index"]
            env = [0, mask] * len(data["slots"])
            for pin, net in inst_pins.items():
                index = slot_index.get(pin)
                if index is None:
                    continue
                base = 2 * index
                rec = net_rec[net]
                env[base] = rec[0]
                env[base + 1] = rec[1]
                if is_seq and pin == state_pin:
                    continue  # the state planes always win
                rec[2].append((env, base))
            model.env = env
            self._models[inst.name] = model
            if model.is_ff:
                self._ffs.append(model)
            elif model.is_latch:
                self._latches.append(model)
            else:
                comb_models[inst.name] = model

        sources = [name for name, m in self._models.items() if name not in comb_models]
        index = ConnectivityIndex(module, _LibraryCellInfo(library))
        try:
            order = index.topo_order(sources)
        except ValueError as exc:
            raise SimulationError(str(exc)) from exc
        self._comb_order: List[_LaneModel] = [comb_models[name] for name in order]
        #: lane-0 decoded view for reactive stimulus closures
        self.net_values = _LaneValuesView(self, lane=0)
        metrics.counter("sim.batch.built").inc()

    # ------------------------------------------------------------------
    # plane plumbing
    # ------------------------------------------------------------------
    def _planes_of(self, value) -> Planes:
        """Broadcast a scalar or pack a per-lane sequence into planes."""
        if isinstance(value, (list, tuple)):
            if len(value) != self.lanes:
                raise SimulationError(
                    f"per-lane value has {len(value)} entries, "
                    f"simulator has {self.lanes} lanes"
                )
            return pack_lanes(value)
        if value is None:
            return (0, self.mask)
        return (self.mask if value else 0, 0)

    def _commit(self, rec: list, value_plane: int, x_plane: int) -> bool:
        """Write planes to a net record, patch bound envs, mark fanout."""
        if rec[0] == value_plane and rec[1] == x_plane:
            return False
        rec[0] = value_plane
        rec[1] = x_plane
        for env, base in rec[2]:
            env[base] = value_plane
            env[base + 1] = x_plane
        for model, mode in rec[3]:
            if mode == 0:
                model.dirty = True
            elif mode == 1:
                model.trig_dirty = True
                model.dirty = True  # latches re-run their machine too
            else:
                model.data_dirty = True
                model.dirty = True
        self.commits += 1
        return True

    def _drive(self, model: _LaneModel) -> bool:
        """Evaluate the model's output functions and commit the planes."""
        changed = False
        env = model.env
        mask = self.mask
        commit = self._commit
        for fn, rec in model.outputs:
            value_plane, x_plane = fn(env, mask)
            if commit(rec, value_plane, x_plane):
                changed = True
        return changed

    # ------------------------------------------------------------------
    # public state / stimulus API (initialize_registers-compatible)
    # ------------------------------------------------------------------
    def set_input(self, port_bit: str, value, at: Optional[float] = None) -> None:
        """Drive a primary input: scalar broadcast or per-lane sequence.

        ``at`` is accepted (and ignored) for stimulus-closure
        compatibility with the event simulator -- the batch kernel is
        untimed, inputs take effect at the next phase boundary.
        """
        rec = self._net_rec.get(port_bit)
        if rec is None:
            raise SimulationError(f"unknown input net {port_bit!r}")
        value_plane, x_plane = self._planes_of(value)
        self._commit(rec, value_plane, x_plane)

    def set_state(self, instance: str, value) -> None:
        """Force a sequential element's state in every lane (reset init)."""
        model = self._models[instance]
        if not (model.is_ff or model.is_latch):
            raise SimulationError(f"{instance!r} is not sequential")
        value_plane, x_plane = self._planes_of(value)
        base = model.state_base
        model.env[base] = value_plane
        model.env[base + 1] = x_plane
        self._drive(model)

    def value(self, net: str, lane: int = 0) -> Value:
        rec = self._net_rec[net]
        return unpack_lane((rec[0], rec[1]), lane)

    def lane_values(self, net: str) -> List[Value]:
        """Per-lane scalars of a net (LSB lane first)."""
        rec = self._net_rec[net]
        return unpack_lanes((rec[0], rec[1]), self.lanes)

    def bus_value(self, bits: Sequence[str], lane: int = 0) -> Optional[int]:
        """Integer value of an LSB-first bit list, None if any bit is X."""
        out = 0
        for position, bit in enumerate(bits):
            value = self.value(bit, lane)
            if value is None:
                return None
            out |= value << position
        return out

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _sweep_comb(self) -> None:
        """One levelized pass: the cloud is acyclic, so this is a fixpoint."""
        evals = 0
        for model in self._comb_order:
            if model.dirty:
                model.dirty = False
                self._drive(model)
                evals += 1
        self.cell_evals += evals

    def _settle(self) -> None:
        """Comb sweep plus latch machines until nothing moves."""
        for _ in range(len(self._latches) + 8):
            self._sweep_comb()
            moved = False
            for model in self._latches:
                if model.dirty or model.trig_dirty or model.data_dirty:
                    model.dirty = model.trig_dirty = model.data_dirty = False
                    if self._eval_latch(model):
                        moved = True
            if not moved:
                return
        raise SimulationError("latch network failed to settle (oscillation?)")

    def _eval_latch(self, model: _LaneModel) -> bool:
        """Vectorized latch machine: per-lane transparency under masks."""
        self.seq_evals += 1
        env = model.env
        mask = self.mask
        clear = model.seq_clear(env, mask)[0] if model.seq_clear else 0
        preset = model.seq_preset(env, mask)[0] if model.seq_preset else 0
        preset &= ~clear
        if model.seq_clock is not None:
            enable_v, enable_x = model.seq_clock(env, mask)
        else:
            enable_v, enable_x = mask, 0
        normal = mask & ~(clear | preset)
        transparent = enable_v & normal
        to_x = enable_x & normal
        prev_v, prev_x = model.prev_clock
        closing = normal & prev_v & mask & ~(enable_v | enable_x)
        if model.seq_next is not None:
            next_v, next_x = model.seq_next(env, mask)
        else:
            next_v, next_x = 0, mask
        base = model.state_base
        state_v, state_x = env[base], env[base + 1]
        keep = mask & ~(clear | preset | transparent | to_x)
        new_v = (state_v & keep) | preset | (next_v & transparent)
        new_x = (state_x & keep) | to_x | (next_x & transparent)
        env[base] = new_v
        env[base + 1] = new_x
        if closing:
            # closing edge: the value just latched is the capture; async
            # clear/preset lanes record nothing (event-kernel semantics)
            model.captures.append((closing, new_v & closing, new_x & closing))
        # async lanes hold their previous enable view (the event kernel's
        # latch machine returns before updating prev_clock on clear/preset)
        held = clear | preset
        model.prev_clock = (
            (prev_v & held) | (enable_v & normal),
            (prev_x & held) | (enable_x & normal),
        )
        return self._drive(model)

    def _eval_ff_machine(self, model: _LaneModel) -> None:
        """Vectorized FF machine: clock some lanes, reset others, at once.

        Reads the pre-edge env and updates only the private state slot;
        outputs are driven in a second pass so every machine samples
        its data cone before any Q commits (the event kernel gets the
        same guarantee from output delays).
        """
        self.seq_evals += 1
        env = model.env
        mask = self.mask
        clear = model.seq_clear(env, mask)[0] if model.seq_clear else 0
        preset = model.seq_preset(env, mask)[0] if model.seq_preset else 0
        preset &= ~clear
        if model.seq_clock is not None:
            clock_v, clock_x = model.seq_clock(env, mask)
        else:
            clock_v, clock_x = 0, mask
        normal = mask & ~(clear | preset)
        prev_v, prev_x = model.prev_clock
        was_low = mask & ~(prev_v | prev_x)
        rising = was_low & clock_v & normal
        # unknown -> 1 transition: state becomes unknown, no capture
        to_x = prev_x & clock_v & normal
        if rising and model.seq_next is not None:
            next_v, next_x = model.seq_next(env, mask)
        else:
            next_v, next_x = 0, mask
        base = model.state_base
        state_v, state_x = env[base], env[base + 1]
        keep = mask & ~(clear | preset | rising | to_x)
        new_v = (state_v & keep) | preset | (next_v & rising)
        new_x = (state_x & keep) | to_x | (next_x & rising)
        env[base] = new_v
        env[base + 1] = new_x
        captured = clear | preset | rising
        if captured:
            model.captures.append((captured, new_v & captured, new_x & captured))
        model.prev_clock = (clock_v, clock_x)

    def _eval_ffs(self) -> bool:
        """Run pending FF machines (pass 1), then drive outputs (pass 2)."""
        pending: List[_LaneModel] = []
        redrive: List[_LaneModel] = []
        for model in self._ffs:
            if model.trig_dirty:
                model.trig_dirty = model.data_dirty = model.dirty = False
                pending.append(model)
            elif model.data_dirty:
                model.data_dirty = model.dirty = False
                redrive.append(model)
        for model in pending:
            self._eval_ff_machine(model)
        for model in pending:
            self._drive(model)
        for model in redrive:
            self._drive(model)
        return bool(pending or redrive)

    def _phase(self) -> None:
        """Settle one clock phase, iterating for rippled/gated clocks."""
        for _ in range(len(self._ffs) + 4):
            self._settle()
            if not self._eval_ffs():
                return
        raise SimulationError("clock network failed to settle (ripple loop?)")

    def step_cycle(
        self,
        inputs: Optional[Dict[str, object]] = None,
        clock: str = "clk",
    ) -> None:
        """One full clock cycle: stimulus, rising edge, falling edge.

        Matches the :class:`SyncTestbench` schedule -- inputs settle
        while the clock is low, every FF samples at the rising edge,
        the falling phase serves gated clocks and transparent latches.
        """
        for port, value in (inputs or {}).items():
            self.set_input(port, value)
        self._phase()
        self.set_input(clock, 1)
        self._phase()
        self.set_input(clock, 0)
        self._phase()
        self.cycles += 1
        self.now = float(self.cycles)
        metrics.counter("sim.batch.cycles").inc()
        if prof.enabled():
            # cumulative kernel counters max-merge to their latest
            # value; lane occupancy is live lanes over lane capacity
            prof.add_counters(batch_cycles=1)
            prof.peak_counters(
                batch_cell_evals=self.cell_evals,
                batch_seq_evals=self.seq_evals,
                batch_commits=self.commits,
                batch_lanes=self.lanes,
                batch_lane_occupancy=round(
                    bin(self.mask).count("1") / max(1, self.lanes), 4
                ),
            )

    # ------------------------------------------------------------------
    # capture readback
    # ------------------------------------------------------------------
    def capture_planes(self) -> Dict[str, List[Tuple[int, int, int]]]:
        """Raw per-instance capture log: (lane mask, value, x) tuples."""
        return {
            model.name: list(model.captures)
            for model in self._models.values()
            if model.captures
        }

    def capture_sequences(self, lane: int = 0) -> Dict[str, List[Value]]:
        """One lane's captured data sequences per sequential instance.

        Same shape as :meth:`Simulator.capture_sequences`, so a lane can
        be diffed 1:1 against a solo event-kernel run of that chip.
        """
        bit = 1 << lane
        out: Dict[str, List[Value]] = {}
        for model in self._models.values():
            sequence: List[Value] = []
            for mask, value_plane, x_plane in model.captures:
                if mask & bit:
                    if x_plane & bit:
                        sequence.append(None)
                    else:
                        sequence.append(1 if value_plane & bit else 0)
            if sequence:
                out[model.name] = sequence
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "lanes": self.lanes,
            "cycles": self.cycles,
            "cell_evals": self.cell_evals,
            "seq_evals": self.seq_evals,
            "commits": self.commits,
        }


# ----------------------------------------------------------------------
# parity oracle helpers
# ----------------------------------------------------------------------
def solo_capture_sequences(
    module: Module,
    library: Library,
    cycles: int,
    stimulus_factory: Optional[Callable] = None,
    clock: str = "clk",
    period: float = 20.0,
    corner: str = "worst",
    derate_map: Optional[Dict[str, float]] = None,
    kernel: str = "compiled",
) -> Dict[str, List[Value]]:
    """Captured sequences of one chip on the per-chip event kernel.

    ``stimulus_factory(sim)`` may build a reactive stimulus closure
    against the simulator (the DLX memory responder does); the same
    factory drives the batch run, so oracle and subject see identical
    stimulus.  ``derate_map`` carries the chip's instance delay factors
    -- with an adequate period they change timing, never function,
    which is exactly what lane parity demonstrates.

    Registers start at 0 here (``initialize_registers``); a hand-built
    :class:`BatchSimulator` compared against this oracle must be
    initialized the same way -- ``batch_capture_run`` already is.
    """
    from .testbench import SyncTestbench, initialize_registers

    sim = Simulator(
        module, library, corner=corner, derate_map=derate_map, kernel=kernel
    )
    initialize_registers(sim, 0)
    bench = SyncTestbench(sim, clock=clock, period=period)
    stimulus = stimulus_factory(sim) if stimulus_factory is not None else None
    bench.run_cycles(cycles, stimulus)
    return sim.capture_sequences()


def batch_capture_run(
    module: Module,
    library: Library,
    cycles: int,
    lanes: int = 64,
    stimulus_factory: Optional[Callable] = None,
    clock: str = "clk",
) -> BatchSimulator:
    """Run one lane-batched testbench pass and return the simulator."""
    from .testbench import SyncTestbench, initialize_registers

    sim = BatchSimulator(module, library, lanes=lanes)
    initialize_registers(sim, 0)
    bench = SyncTestbench(sim, clock=clock)
    stimulus = stimulus_factory(sim) if stimulus_factory is not None else None
    bench.run_cycles(cycles, stimulus)
    return sim


def assert_lane_parity(
    batch: BatchSimulator,
    lane: int,
    solo_sequences: Dict[str, List[Value]],
) -> None:
    """Raise unless a lane's captures are bit-identical to a solo run."""
    mine = batch.capture_sequences(lane)
    if mine == solo_sequences:
        return
    for name in sorted(set(mine) | set(solo_sequences)):
        if mine.get(name) != solo_sequences.get(name):
            raise SimulationError(
                f"lane {lane} parity mismatch at {name!r}: "
                f"batch={mine.get(name)!r} solo={solo_sequences.get(name)!r}"
            )
    raise SimulationError(f"lane {lane} parity mismatch")  # pragma: no cover
