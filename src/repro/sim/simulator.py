"""Event-driven gate-level simulator with per-arc timing.

Simulates a flat module against a technology library using 3-valued
logic (0 / 1 / X).  Sequential cells follow their liberty ``ff`` /
``latch`` groups: flip-flops capture on the rising edge of their clock
expression, latches are transparent while their enable expression is
true and *capture on the closing edge* -- the event the flow-equivalence
checker records.  Combinational cells with feedback (C-elements, the
controller complex gate) work naturally because output pins may appear
in their own functions and feedback nets re-trigger evaluation.

Delays come from the liberty linear model at a chosen corner, so the
same netlist can be simulated at best case, worst case, or with a
Monte-Carlo instance-level derate map (variability experiments).

Two kernels share the same semantics:

* ``kernel="compiled"`` (default) -- the incremental kernel.  Every
  cell keeps a persistent *encoded slot list* (pin values as base-3
  ints, see :mod:`repro.liberty.functions`) that the event loop patches
  in place when a net commits, so evaluating a cell is a few list
  indexes instead of rebuilding a pin->value dict per evaluation
  (twice -- once for the sequential update, once for output driving --
  as the pre-optimization code did).  Cell functions are the
  slot-indexed LUT/codegen evaluators; 1-2 input truth tables are
  inlined into the event loop without any function call.  Fanout
  entries carry a ``needs_seq`` flag so a flip-flop's data cone
  rippling does not re-run its state machine, and opaque latches skip
  theirs; both skips are applied only where the reference semantics
  provably make them no-ops.

* ``kernel="reference"`` -- the original behaviour, kept verbatim:
  AST-walking evaluators, per-evaluation env rebuilds and repeated
  clock-expression evaluation.  It is the baseline
  ``benchmarks/bench_sim_hotpath.py`` measures speedups against, and
  the oracle the kernel-parity tests compare the compiled kernel to
  (results are identical either way).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..liberty.functions import compile_function_indexed, reference_function
from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection
from ..obs import metrics, prof
from ..sta.graph import compute_net_loads

Value = Optional[int]

#: sentinel distinguishing "pin never scheduled" from a scheduled None
_MISS = object()

#: fanout-entry modes (compiled kernel): what a net change means to the
#: reading cell.  Trigger variants (the net feeds the clock / clear /
#: preset expression) always run the state machine; data variants may
#: skip it.  Lower wins when one cell reads a net through several pins.
_COMB = 0
_FF_SEQ = 1
_FF_DATA = 2
_LATCH_SEQ = 3
_LATCH_DATA = 4


@dataclass
class CaptureEvent:
    """A sequential element storing a datum (FF clock edge / latch close)."""

    __slots__ = ("time", "instance", "value")

    time: float
    instance: str
    value: Value


def _spec1(fn) -> Optional[Tuple[int, Tuple[Value, ...]]]:
    """(slot, table) of a 1-input LUT, for call-free inline evaluation."""
    if fn is not None and getattr(fn, "kind", None) == "lut":
        slots = fn.lut_slots
        if len(slots) == 1 and slots[0] is not None:
            return (slots[0], fn.table)
    return None


def _cell_kernel_data(cell, kernel: str) -> dict:
    """Per-cell-type kernel data, cached on the cell itself.

    Everything that depends only on the library cell -- slot layout,
    compiled evaluators, filtered timing arcs, trigger pins -- is
    computed once per cell and shared by every instance of it, across
    simulators (the Monte-Carlo study builds thousands).  Cached in
    ``cell.__dict__`` like :meth:`LibraryCell.compiled_function`.
    """
    cache = cell.__dict__.setdefault("_sim_kernel_cache", {})
    data = cache.get(kernel)
    if data is None:
        data = _build_cell_kernel_data(cell, kernel)
        cache[kernel] = data
    return data


def _build_cell_kernel_data(cell, kernel: str) -> dict:
    compiled = kernel == "compiled"
    seq = cell.sequential
    state_pin = seq.state_pin if seq is not None else "IQ"
    if compiled:
        # slot order is per cell type, so every instance of a cell
        # shares the memoized slot-indexed evaluators
        slots = tuple(sorted(set(cell.pins) | {state_pin}))
        slot_index = {pin: i for i, pin in enumerate(slots)}

        def fn_compile(text):
            return compile_function_indexed(text, slots)

    else:
        slots = ()
        slot_index = {state_pin: 0}
        fn_compile = reference_function
    output_fns: Dict[str, Callable] = {}
    out_specs = []
    for pin in cell.output_pins():
        function = cell.pins[pin].function
        fn = s1 = s2 = table = None
        if function is not None:
            fn = fn_compile(function)
            output_fns[pin] = fn
            s1 = s2 = -1
            if compiled and fn.kind == "lut":  # type: ignore[attr-defined]
                lut_slots = fn.lut_slots  # type: ignore[attr-defined]
                if len(lut_slots) == 1 and lut_slots[0] is not None:
                    s1, table = lut_slots[0], fn.table  # type: ignore[attr-defined]
                elif (
                    len(lut_slots) == 2
                    and lut_slots[0] is not None
                    and lut_slots[1] is not None
                ):
                    s1, s2 = lut_slots
                    table = fn.table  # type: ignore[attr-defined]
        arcs = [
            a
            for a in cell.arcs_to(pin)
            if not a.timing_type.startswith(("setup", "hold"))
        ]
        out_specs.append((pin, fn, s1, s2, table, arcs))
    if seq is not None:
        seq_fns = (
            fn_compile(seq.next_state) if seq.next_state else None,
            fn_compile(seq.clocked_on) if seq.clocked_on else None,
            fn_compile(seq.clear) if seq.clear else None,
            fn_compile(seq.preset) if seq.preset else None,
        )
    else:
        seq_fns = (None, None, None, None)
    # A sequential cell's state machine only reacts to its clock /
    # clear / preset expressions: input changes elsewhere (the data
    # cone rippling) need at most the output drive pass, so
    # compiled-kernel fanout entries carry a needs_seq flag.
    trigger_pins = set()
    if compiled:
        for fn in seq_fns[1:]:
            if fn is not None:
                trigger_pins |= fn.inputs  # type: ignore[attr-defined]
    return {
        "state_pin": state_pin,
        "slots": slots,
        "slot_index": slot_index,
        "state_slot": slot_index[state_pin],
        "output_fns": output_fns,
        "out_specs": tuple(out_specs),
        "seq_fns": seq_fns,
        "seq_specs": tuple(_spec1(fn) for fn in seq_fns) if compiled
        else (None, None, None, None),
        "trigger_pins": frozenset(trigger_pins),
        "drive_data": any(
            spec[1].inputs - {state_pin}  # type: ignore[attr-defined]
            for spec in out_specs
            if spec[1] is not None
        ),
        "input_pins": tuple(cell.input_pins()),
        "is_ff": cell.kind == CellKind.FLIP_FLOP,
        "is_latch": cell.kind == CellKind.LATCH,
    }


class _CellModel:
    """Pre-compiled behaviour of one instance."""

    __slots__ = (
        "name",
        "cell",
        "kind",
        "pin_nets",
        "output_fns",
        "output_delays",
        "outputs",
        "single",
        "seq_next",
        "seq_clock",
        "seq_clear",
        "seq_preset",
        "seq_next_s",
        "seq_clock_s",
        "seq_clear_s",
        "seq_preset_s",
        "state_pin",
        "state_slot",
        "state",
        "prev_clock",
        "is_ff",
        "is_latch",
        "scheduled",
        "env",
        "async_active",
        "drive_data",
    )

    def __init__(self, name: str):
        self.name = name
        self.state: Value = None
        self.prev_clock: Value = None
        #: last value scheduled per output pin (transport-delay model:
        #: comparing against the *current* net value would silently drop
        #: a change that reconverges while an earlier event is in flight)
        self.scheduled: Dict[str, Value] = {}
        #: persistent encoded pin-value slot list (incremental kernel);
        #: patched in place by the event loop on every net commit
        self.env: List[int] = []
        #: flattened (pin, fn, net, delay, s1, s2, table) drive list;
        #: s1/s2/table inline 1-2 input truth tables into the loop
        self.outputs: List[Tuple] = []
        #: the sole drive entry when the cell has exactly one output --
        #: lets the event loop skip building an iterator per evaluation
        self.single: Optional[Tuple] = None
        self.state_slot = 0
        #: (slot, table) fast paths for 1-input sequential expressions
        self.seq_next_s = None
        self.seq_clock_s = None
        self.seq_clear_s = None
        self.seq_preset_s = None
        #: an async clear/preset is currently asserted (the reference
        #: semantics record a capture on *every* evaluation while one
        #: is held, so data-cone skips must not apply then)
        self.async_active = False
        #: some output function reads a pin other than the state pin,
        #: so a data-cone touch can change an output even when the
        #: state machine is skipped
        self.drive_data = True


class SimulationError(Exception):
    """Raised for unusable simulation setups."""


class Simulator:
    """Event-driven simulator for one module."""

    def __init__(
        self,
        module: Module,
        library: Library,
        corner: str = "worst",
        derate_map: Optional[Dict[str, float]] = None,
        timing: bool = True,
        kernel: str = "compiled",
    ):
        if kernel not in ("compiled", "reference"):
            raise SimulationError(f"unknown simulator kernel {kernel!r}")
        self.module = module
        self.library = library
        self.corner = corner
        self.timing = timing
        self.kernel = kernel
        self.now = 0.0
        self._seq = 0
        #: heap of (time, seq, payload, value); the payload is the net
        #: *record* list for the compiled kernel and the net name for the
        #: reference kernel
        self._queue: List[Tuple[float, int, object, Value]] = []
        self.net_values: Dict[str, Value] = {}
        #: reference kernel: net -> bare models, as the original code had
        self._fanout: Dict[str, List] = defaultdict(list)
        self._models: Dict[str, _CellModel] = {}
        self.captures: List[CaptureEvent] = []
        self.toggle_counts: Dict[str, int] = defaultdict(int)
        #: nets pinned to a value (stuck-at fault injection)
        self.forced_nets: Dict[str, Value] = {}
        self._watchers: List[Callable[[float, str, Value], None]] = []
        #: selective subscriptions: net -> callbacks (reference kernel;
        #: the compiled kernel stores them on the net record itself)
        self._net_watchers: Dict[str, List] = {}
        self._capture_watchers: List[Callable[[CaptureEvent], None]] = []
        self.event_count = 0
        self.evaluation_count = 0

        incremental = kernel == "compiled"
        self._incremental = incremental
        derate = library.corner(corner).derate
        loads = compute_net_loads(module, library)
        derate_map = derate_map or {}

        for net_name, net in module.nets.items():
            if net.is_constant:
                self.net_values[net_name] = net.constant_value
            else:
                self.net_values[net_name] = None

        #: compiled kernel: per-net record ``[value, bindings, fanout,
        #: name, watchers]`` carried directly in queue entries, so a
        #: commit touches one list instead of probing three dicts by
        #: name; slot 4 holds selective per-net watcher callbacks (None
        #: until someone subscribes).  ``net_values`` is kept in sync
        #: for the public read API.
        if incremental:
            self._net_rec: Dict[str, list] = {
                name: [value, [], [], name, None]
                for name, value in self.net_values.items()
            }
        else:
            self._net_rec = {}

        net_values = self.net_values
        net_rec = self._net_rec
        fanout = self._fanout
        for inst in module.instances.values():
            cell = library.cells.get(inst.cell)
            if cell is None:
                raise SimulationError(
                    f"cell {inst.cell!r} of {inst.name!r} not in library"
                )
            data = _cell_kernel_data(cell, kernel)
            inst_pins = inst.pins
            model = _CellModel(inst.name)
            model.cell = cell
            model.kind = cell.kind
            model.pin_nets = dict(inst_pins)
            model.is_ff = data["is_ff"]
            model.is_latch = data["is_latch"]
            is_seq = model.is_ff or model.is_latch
            state_pin = data["state_pin"]
            model.state_pin = state_pin
            model.output_fns = data["output_fns"]  # shared, read-only
            model.output_delays = {}
            (
                model.seq_next,
                model.seq_clock,
                model.seq_clear,
                model.seq_preset,
            ) = data["seq_fns"]
            local_derate = derate * derate_map.get(inst.name, 1.0)
            outputs = model.outputs
            for pin, fn, s1, s2, table, arcs in data["out_specs"]:
                net = inst_pins.get(pin)
                if net is None:
                    continue
                if arcs and timing:
                    load = loads.get(net, 0.0)
                    delay = max(a.worst_delay(load) for a in arcs)
                else:
                    delay = 0.001 if timing else 0.0
                delay *= local_derate
                model.output_delays[pin] = delay
                if fn is not None and incremental:
                    rec = net_rec.get(net)
                    if rec is None:
                        rec = net_rec[net] = [None, [], [], net, None]
                    outputs.append(
                        [pin, fn, rec, delay, s1, s2, table, _MISS]
                    )
            if len(outputs) == 1:
                model.single = outputs[0]
            self._models[inst.name] = model
            if incremental:
                (
                    model.seq_next_s,
                    model.seq_clock_s,
                    model.seq_clear_s,
                    model.seq_preset_s,
                ) = data["seq_specs"]
                if is_seq:
                    model.drive_data = data["drive_data"]
                trigger_pins = data["trigger_pins"]
                if model.is_ff:
                    seq_modes = (_FF_SEQ, _FF_DATA)
                elif model.is_latch:
                    seq_modes = (_LATCH_SEQ, _LATCH_DATA)
                else:
                    seq_modes = (_COMB, _COMB)
                for pin in data["input_pins"]:
                    net = inst_pins.get(pin)
                    if net is None:
                        continue
                    mode = seq_modes[pin not in trigger_pins]
                    rec = net_rec.get(net)
                    if rec is None:
                        rec = net_rec[net] = [None, [], [], net, None]
                    entries = rec[2]
                    for i, entry in enumerate(entries):
                        # two pins of one cell on the same net: merge so
                        # a net's fanout holds each model exactly once
                        # (the trigger variant -- lower mode -- wins)
                        if entry[0] is model:
                            if mode < entry[1]:
                                entries[i] = (model, mode)
                            break
                    else:
                        entries.append((model, mode))
                slot_index = data["slot_index"]
                state_slot = data["state_slot"]
                env = [2] * len(data["slots"])
                for pin, net in inst_pins.items():
                    index = slot_index.get(pin)
                    if index is None:
                        continue
                    value = net_values.get(net)
                    env[index] = 2 if value is None else value
                    if is_seq and pin == state_pin:
                        continue  # the state value always wins
                    rec = net_rec.get(net)
                    if rec is None:
                        rec = net_rec[net] = [None, [], [], net, None]
                    rec[1].append((env, index))
                model.state_slot = state_slot
                state = model.state
                env[state_slot] = 2 if state is None else state
                model.env = env
            else:
                for pin in data["input_pins"]:
                    net = inst_pins.get(pin)
                    if net is not None:
                        fanout[net].append(model)

    # ------------------------------------------------------------------
    # observation hooks
    # ------------------------------------------------------------------
    def watch_nets(
        self,
        callback: Callable[[float, str, Value], None],
        nets: Optional[Iterable[str]] = None,
    ) -> None:
        """Subscribe ``callback(time, net, value)`` to net commits.

        Without ``nets`` the callback sees every committed change (the
        historical behaviour).  With ``nets`` the subscription is
        *selective*: the callback fires only for the named nets, and
        the dispatch cost rides on the net record itself, so heavy
        unwatched activity (the datapath, while only handshake nets are
        probed) pays a single pointer test per commit.  Both kernels
        deliver identical ``(time, net, value)`` sequences.
        """
        if nets is None:
            self._watchers.append(callback)
            return
        for net in nets:
            if self._incremental:
                rec = self._net_rec.get(net)
                if rec is None:
                    rec = self._net_rec[net] = [
                        self.net_values.get(net), [], [], net, None
                    ]
                if rec[4] is None:
                    rec[4] = []
                rec[4].append(callback)
            else:
                self._net_watchers.setdefault(net, []).append(callback)

    def watch_captures(self, callback: Callable[[CaptureEvent], None]) -> None:
        self._capture_watchers.append(callback)

    # ------------------------------------------------------------------
    # state setup
    # ------------------------------------------------------------------
    def set_state(self, instance: str, value: Value) -> None:
        """Force the internal state of a sequential element (reset init)."""
        model = self._models[instance]
        if not (model.is_ff or model.is_latch):
            raise SimulationError(f"{instance!r} is not sequential")
        model.state = value
        if self._incremental:
            model.env[model.state_slot] = 2 if value is None else value
        self._drive_outputs(model, immediate=True)

    def set_input(self, port_bit: str, value: Value, at: Optional[float] = None) -> None:
        """Schedule a primary-input change (default: now)."""
        self._schedule(at if at is not None else self.now, port_bit, value)

    def force_net(self, net: str, value: Value) -> None:
        """Pin a net to a value (stuck-at fault injection for ATPG)."""
        self.forced_nets[net] = value
        self.net_values[net] = value
        encoded = 2 if value is None else value
        if self._incremental:
            rec = self._net_rec.get(net)
            if rec is not None:
                rec[0] = value
                for env, slot in rec[1]:
                    env[slot] = encoded
                for entry in rec[2]:
                    self._evaluate(entry[0])
        else:
            for entry in self._fanout.get(net, ()):
                self._evaluate(entry)

    def release_net(self, net: str) -> None:
        self.forced_nets.pop(net, None)

    def value(self, net: str) -> Value:
        return self.net_values[net]

    def bus_value(self, bits: List[str]) -> Optional[int]:
        """Integer value of an LSB-first bit list, None if any bit is X."""
        out = 0
        for index, bit in enumerate(bits):
            value = self.net_values.get(bit)
            if value is None:
                return None
            out |= value << index
        return out

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _schedule(self, time: float, net: str, value: Value) -> None:
        self._seq += 1
        if self._incremental:
            # compiled queue entries carry the net *record*, not the name
            rec = self._net_rec.get(net)
            if rec is None:
                rec = self._net_rec[net] = [
                    self.net_values.get(net), [], [], net, None
                ]
            heapq.heappush(self._queue, (time, self._seq, rec, value))
        else:
            heapq.heappush(self._queue, (time, self._seq, net, value))

    def run_until(self, end_time: float, max_events: int = 5_000_000) -> None:
        """Advance simulation time to ``end_time``."""
        if self._incremental:
            self._run_compiled(end_time, max_events)
        else:
            self._run_reference(end_time, max_events)

    def _run_compiled(self, end_time: float, max_events: int) -> None:
        """Incremental event loop.

        Slot patch on commit, inlined output drive, and the FF / latch
        state machines unrolled into the loop body (they are the two
        hottest call sites; the standalone methods remain for the
        out-of-loop ``force_net`` path).  Single-event time steps -- the
        dominant case in self-timed circuits -- bypass the multi-net
        collection entirely.
        """
        events = 0
        evaluations = 0
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        net_values = self.net_values
        forced_nets = self.forced_nets
        watchers = self._watchers
        captures = self.captures
        capture_watchers = self._capture_watchers
        toggle_counts = self.toggle_counts
        seq_no = self._seq
        miss = _MISS
        # queue-depth high-water for stage profiles; when profiling is
        # off the per-event cost is one short-circuited bool check
        profiling = prof.enabled()
        queue_hw = len(queue) if profiling else 0
        try:
            while queue and queue[0][0] <= end_time:
                if profiling and len(queue) > queue_hw:
                    queue_hw = len(queue)
                now = queue[0][0]
                self.now = now
                _, _, rec, value = heappop(queue)
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"event limit exceeded at t={now:.3f} "
                        "(oscillation or runaway activity)"
                    )
                if queue and queue[0][0] == now:
                    # several events share this timestamp: collect every
                    # committed net's fanout, then dedup models
                    changed: List[list] = []
                    while True:
                        if rec[0] != value and rec[3] not in forced_nets:
                            rec[0] = value
                            name = rec[3]
                            net_values[name] = value
                            bindings = rec[1]
                            if bindings:
                                encoded = 2 if value is None else value
                                for env, slot in bindings:
                                    env[slot] = encoded
                            fans = rec[2]
                            if fans:
                                changed.append(fans)
                            if value is not None:
                                toggle_counts[name] += 1
                            if watchers:
                                for watcher in watchers:
                                    watcher(now, name, value)
                            subscribed = rec[4]
                            if subscribed:
                                for watcher in subscribed:
                                    watcher(now, name, value)
                        if queue and queue[0][0] == now:
                            _, _, rec, value = heappop(queue)
                            events += 1
                            if events > max_events:
                                raise SimulationError(
                                    f"event limit exceeded at t={now:.3f} "
                                    "(oscillation or runaway activity)"
                                )
                            continue
                        break
                    if not changed:
                        continue
                    if len(changed) == 1:
                        work = changed[0]
                        evaluations += len(work)
                    else:
                        touched: Dict[_CellModel, int] = {}
                        for fans in changed:
                            for model, mode in fans:
                                prev = touched.get(model)
                                if prev is None or mode < prev:
                                    touched[model] = mode
                        work = touched.items()
                        evaluations += len(touched)
                else:
                    # single event at this timestamp: the dominant case
                    if rec[0] == value or rec[3] in forced_nets:
                        continue
                    rec[0] = value
                    name = rec[3]
                    net_values[name] = value
                    bindings = rec[1]
                    if bindings:
                        encoded = 2 if value is None else value
                        for env, slot in bindings:
                            env[slot] = encoded
                    if value is not None:
                        toggle_counts[name] += 1
                    if watchers:
                        for watcher in watchers:
                            watcher(now, name, value)
                    subscribed = rec[4]
                    if subscribed:
                        for watcher in subscribed:
                            watcher(now, name, value)
                    work = rec[2]
                    if not work:
                        continue
                    evaluations += len(work)
                for model, mode in work:
                    env = model.env
                    if mode:
                        if mode < 3:  # flip-flop
                            # data-cone touches are no-ops unless an
                            # async clear/preset is held (reference
                            # records a capture per evaluation then) or
                            # the clock value is still unknown
                            if (
                                mode == 1
                                or model.async_active
                                or model.prev_clock is None
                            ):
                                # --- FF machine (see _evaluate_ff) ---
                                spec = model.seq_clock_s
                                if spec is not None:
                                    clock = spec[1][env[spec[0]]]
                                elif model.seq_clock is not None:
                                    clock = model.seq_clock(env)
                                else:
                                    clock = None
                                spec = model.seq_clear_s
                                if spec is not None:
                                    async_on = spec[1][env[spec[0]]] == 1
                                else:
                                    async_on = (
                                        model.seq_clear is not None
                                        and model.seq_clear(env) == 1
                                    )
                                if async_on:
                                    model.state = 0
                                    env[model.state_slot] = 0
                                else:
                                    spec = model.seq_preset_s
                                    if spec is not None:
                                        async_on = spec[1][env[spec[0]]] == 1
                                    else:
                                        async_on = (
                                            model.seq_preset is not None
                                            and model.seq_preset(env) == 1
                                        )
                                    if async_on:
                                        model.state = 1
                                        env[model.state_slot] = 1
                                if async_on:
                                    model.async_active = True
                                    event = CaptureEvent(
                                        now, model.name, model.state
                                    )
                                    captures.append(event)
                                    for cw in capture_watchers:
                                        cw(event)
                                else:
                                    model.async_active = False
                                    prev = model.prev_clock
                                    if prev == 0 and clock == 1:
                                        spec = model.seq_next_s
                                        if spec is not None:
                                            state = spec[1][env[spec[0]]]
                                        else:
                                            state = (
                                                model.seq_next(env)
                                                if model.seq_next
                                                else None
                                            )
                                        model.state = state
                                        env[model.state_slot] = (
                                            2 if state is None else state
                                        )
                                        event = CaptureEvent(
                                            now, model.name, state
                                        )
                                        captures.append(event)
                                        for cw in capture_watchers:
                                            cw(event)
                                    elif clock == 1 and prev is None:
                                        # unknown -> 1: state unknown
                                        model.state = None
                                        env[model.state_slot] = 2
                                model.prev_clock = clock
                            elif not model.drive_data:
                                continue
                        else:  # latch
                            # an opaque latch (enable known low) ignores
                            # its data cone; transparent or unknown must
                            # track it
                            if mode == 3 or model.prev_clock != 0:
                                # --- latch machine (see
                                # _evaluate_latch_compiled) ---
                                spec = model.seq_clear_s
                                if spec is not None:
                                    async_on = spec[1][env[spec[0]]] == 1
                                else:
                                    async_on = (
                                        model.seq_clear is not None
                                        and model.seq_clear(env) == 1
                                    )
                                if async_on:
                                    model.state = 0
                                    env[model.state_slot] = 0
                                else:
                                    spec = model.seq_preset_s
                                    if spec is not None:
                                        async_on = spec[1][env[spec[0]]] == 1
                                    else:
                                        async_on = (
                                            model.seq_preset is not None
                                            and model.seq_preset(env) == 1
                                        )
                                    if async_on:
                                        model.state = 1
                                        env[model.state_slot] = 1
                                    else:
                                        spec = model.seq_clock_s
                                        if spec is not None:
                                            enable = spec[1][env[spec[0]]]
                                        elif model.seq_clock is not None:
                                            enable = model.seq_clock(env)
                                        else:
                                            enable = 1
                                        if enable == 1:
                                            spec = model.seq_next_s
                                            if spec is not None:
                                                state = spec[1][env[spec[0]]]
                                            else:
                                                state = (
                                                    model.seq_next(env)
                                                    if model.seq_next
                                                    else None
                                                )
                                            model.state = state
                                            env[model.state_slot] = (
                                                2 if state is None else state
                                            )
                                        elif enable == 0:
                                            if model.prev_clock == 1:
                                                # closing edge: the value
                                                # just latched is the
                                                # capture
                                                event = CaptureEvent(
                                                    now,
                                                    model.name,
                                                    model.state,
                                                )
                                                captures.append(event)
                                                for cw in capture_watchers:
                                                    cw(event)
                                        elif enable is None:
                                            model.state = None
                                            env[model.state_slot] = 2
                                        model.prev_clock = enable
                            elif not model.drive_data:
                                continue
                    out = model.single
                    if out is not None:
                        pin, fn, orec, delay, s1, s2, table, last = out
                        if table is None:
                            val = fn(env)
                        elif s2 < 0:
                            val = table[env[s1]]
                        else:
                            val = table[env[s1] * 3 + env[s2]]
                        if last is miss:
                            last = orec[0]
                        if val == last:
                            continue
                        out[7] = val
                        seq_no += 1
                        heappush(queue, (now + delay, seq_no, orec, val))
                        continue
                    for out in model.outputs:
                        pin, fn, orec, delay, s1, s2, table, last = out
                        if table is None:
                            val = fn(env)
                        elif s2 < 0:
                            val = table[env[s1]]
                        else:
                            val = table[env[s1] * 3 + env[s2]]
                        if last is miss:
                            last = orec[0]
                        if val == last:
                            continue
                        out[7] = val
                        seq_no += 1
                        heappush(queue, (now + delay, seq_no, orec, val))
        finally:
            self._seq = seq_no
        self.now = end_time
        self.event_count += events
        self.evaluation_count += evaluations
        if events:
            metrics.counter("sim.events").inc(events)
            metrics.counter("sim.evaluations").inc(evaluations)
            if profiling:
                prof.add_counters(
                    sim_events=events, sim_evaluations=evaluations
                )
                prof.peak_counters(sim_queue_high_water=queue_hw)

    def _run_reference(self, end_time: float, max_events: int) -> None:
        """Original event loop, kept verbatim as the measured baseline
        (plus the selective-watcher dispatch both kernels share)."""
        events = 0
        evaluations = 0
        profiling = prof.enabled()
        queue_hw = len(self._queue) if profiling else 0
        net_watchers = self._net_watchers
        while self._queue and self._queue[0][0] <= end_time:
            if profiling and len(self._queue) > queue_hw:
                queue_hw = len(self._queue)
            time = self._queue[0][0]
            self.now = time
            changed: List[str] = []
            while self._queue and self._queue[0][0] == time:
                _, _, net, value = heapq.heappop(self._queue)
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"event limit exceeded at t={time:.3f} "
                        "(oscillation or runaway activity)"
                    )
                if net in self.forced_nets:
                    continue
                if self.net_values.get(net) == value:
                    continue
                self.net_values[net] = value
                if value is not None:
                    self.toggle_counts[net] += 1
                for watcher in self._watchers:
                    watcher(time, net, value)
                if net_watchers:
                    subscribed = net_watchers.get(net)
                    if subscribed:
                        for watcher in subscribed:
                            watcher(time, net, value)
                changed.append(net)
            touched: Dict[str, _CellModel] = {}
            for net in changed:
                for model in self._fanout.get(net, ()):
                    touched[model.name] = model
            evaluations += len(touched)
            for model in touched.values():
                self._evaluate(model)
        self.now = end_time
        self.event_count += events
        self.evaluation_count += evaluations
        if events:
            metrics.counter("sim.events").inc(events)
            metrics.counter("sim.evaluations").inc(evaluations)
            if profiling:
                prof.add_counters(
                    sim_events=events, sim_evaluations=evaluations
                )
                prof.peak_counters(sim_queue_high_water=queue_hw)

    def run_for(self, duration: float, **kwargs) -> None:
        self.run_until(self.now + duration, **kwargs)

    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _pin_env(self, model: _CellModel) -> Dict[str, Value]:
        """Reference-kernel path: rebuild the env from net values."""
        env: Dict[str, Value] = {}
        for pin, net in model.pin_nets.items():
            env[pin] = self.net_values.get(net)
        if model.is_ff or model.is_latch:
            env[model.state_pin] = model.state
        return env

    def _evaluate(self, model: _CellModel) -> None:
        """Out-of-loop evaluation (``force_net``); loop bodies inline this."""
        if self._incremental:
            env = model.env
            if model.is_ff:
                self._evaluate_ff(model, env)
            elif model.is_latch:
                self._evaluate_latch_compiled(model, env)
            self._drive_outputs(model)
            return
        env = self._pin_env(model)
        if model.is_ff:
            self._evaluate_ff_reference(model, env)
        elif model.is_latch:
            self._evaluate_latch(model, env)
        self._drive_outputs(model)

    def _evaluate_ff(self, model: _CellModel, env: List[int]) -> None:
        """Compiled FF machine: encoded env, one clock eval, state-slot
        maintenance and capture recording inlined."""
        spec = model.seq_clock_s
        if spec is not None:
            clock = spec[1][env[spec[0]]]
        elif model.seq_clock is not None:
            clock = model.seq_clock(env)
        else:
            clock = None
        # asynchronous clear / preset dominate
        spec = model.seq_clear_s
        if spec is not None:
            clear_on = spec[1][env[spec[0]]] == 1
        else:
            clear_on = model.seq_clear is not None and model.seq_clear(env) == 1
        if clear_on:
            model.state = 0
            env[model.state_slot] = 0
        else:
            spec = model.seq_preset_s
            if spec is not None:
                preset_on = spec[1][env[spec[0]]] == 1
            else:
                preset_on = (
                    model.seq_preset is not None and model.seq_preset(env) == 1
                )
            if preset_on:
                model.state = 1
                env[model.state_slot] = 1
            else:
                model.async_active = False
                prev = model.prev_clock
                if prev == 0 and clock == 1:
                    spec = model.seq_next_s
                    if spec is not None:
                        state = spec[1][env[spec[0]]]
                    else:
                        state = model.seq_next(env) if model.seq_next else None
                    model.state = state
                    env[model.state_slot] = 2 if state is None else state
                    event = CaptureEvent(self.now, model.name, state)
                    self.captures.append(event)
                    for watcher in self._capture_watchers:
                        watcher(event)
                elif clock == 1 and prev is None:
                    # unknown -> 1 transition: state becomes unknown
                    model.state = None
                    env[model.state_slot] = 2
                model.prev_clock = clock
                return
        model.async_active = True
        self._record_capture(model)
        model.prev_clock = clock

    def _evaluate_ff_reference(
        self, model: _CellModel, env: Dict[str, Value]
    ) -> None:
        """Original FF update: re-evaluates the clock expression per use."""
        if model.seq_clear is not None and model.seq_clear(env) == 1:
            model.state = 0
        elif model.seq_preset is not None and model.seq_preset(env) == 1:
            model.state = 1
        else:
            clock = model.seq_clock(env) if model.seq_clock else None
            if model.prev_clock == 0 and clock == 1:
                model.state = model.seq_next(env) if model.seq_next else None
                self._record_capture(model)
            elif clock == 1 and model.prev_clock is None:
                # unknown -> 1 transition: state becomes unknown
                model.state = None
            model.prev_clock = (
                model.seq_clock(env) if model.seq_clock else None
            )
            return
        self._record_capture(model)
        if model.seq_clock is not None:
            model.prev_clock = model.seq_clock(env)

    def _evaluate_latch_compiled(self, model: _CellModel, env: List[int]) -> None:
        """Compiled latch machine: encoded env, state-slot maintenance
        and capture recording inlined."""
        spec = model.seq_clear_s
        if spec is not None:
            if spec[1][env[spec[0]]] == 1:
                model.state = 0
                env[model.state_slot] = 0
                return
        elif model.seq_clear is not None and model.seq_clear(env) == 1:
            model.state = 0
            env[model.state_slot] = 0
            return
        spec = model.seq_preset_s
        if spec is not None:
            if spec[1][env[spec[0]]] == 1:
                model.state = 1
                env[model.state_slot] = 1
                return
        elif model.seq_preset is not None and model.seq_preset(env) == 1:
            model.state = 1
            env[model.state_slot] = 1
            return
        spec = model.seq_clock_s
        if spec is not None:
            enable = spec[1][env[spec[0]]]
        elif model.seq_clock is not None:
            enable = model.seq_clock(env)
        else:
            enable = 1
        if enable == 1:
            spec = model.seq_next_s
            if spec is not None:
                state = spec[1][env[spec[0]]]
            else:
                state = model.seq_next(env) if model.seq_next else None
            model.state = state
            env[model.state_slot] = 2 if state is None else state
        elif enable == 0:
            if model.prev_clock == 1:
                # closing edge: the value just latched is the capture
                event = CaptureEvent(self.now, model.name, model.state)
                self.captures.append(event)
                for watcher in self._capture_watchers:
                    watcher(event)
        elif enable is None:
            model.state = None
            env[model.state_slot] = 2
        model.prev_clock = enable

    def _evaluate_latch(self, model: _CellModel, env: Dict[str, Value]) -> None:
        """Original latch update (reference kernel)."""
        if model.seq_clear is not None and model.seq_clear(env) == 1:
            model.state = 0
            return
        if model.seq_preset is not None and model.seq_preset(env) == 1:
            model.state = 1
            return
        enable = model.seq_clock(env) if model.seq_clock else 1
        if enable == 1:
            model.state = model.seq_next(env) if model.seq_next else None
        elif enable == 0 and model.prev_clock == 1:
            # closing edge: the value just latched is the capture
            self._record_capture(model)
        elif enable is None:
            model.state = None
        model.prev_clock = enable

    def _record_capture(self, model: _CellModel) -> None:
        event = CaptureEvent(self.now, model.name, model.state)
        self.captures.append(event)
        for watcher in self._capture_watchers:
            watcher(event)

    def _drive_outputs(self, model: _CellModel, immediate: bool = False) -> None:
        if self._incremental:
            env = model.env
            zero_delay = immediate or not self.timing
            for out in model.outputs:
                pin, fn, rec, delay, s1, s2, table, last = out
                if table is None:
                    value = fn(env)
                elif s2 < 0:
                    value = table[env[s1]]
                else:
                    value = table[env[s1] * 3 + env[s2]]
                if last is _MISS:
                    last = rec[0]
                if value == last:
                    continue
                out[7] = value
                self._seq += 1
                heapq.heappush(
                    self._queue,
                    (
                        self.now + (0.0 if zero_delay else delay),
                        self._seq,
                        rec,
                        value,
                    ),
                )
            return
        env = self._pin_env(model)
        for pin, fn in model.output_fns.items():
            net = model.pin_nets.get(pin)
            if net is None:
                continue
            value = fn(env)
            last = model.scheduled.get(pin, self.net_values.get(net))
            if value == last:
                continue
            if immediate or not self.timing:
                delay = 0.0
            else:
                delay = model.output_delays.get(pin, 0.0)
            model.scheduled[pin] = value
            self._schedule(self.now + delay, net, value)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def settle(self, max_time: float = 1000.0, step: float = 5.0) -> float:
        """Run until the event queue drains (or ``max_time``)."""
        start = self.now
        while self._queue and self.now < start + max_time:
            self.run_for(step)
        return self.now

    def capture_sequences(self) -> Dict[str, List[Value]]:
        """Captured data sequences per sequential instance."""
        out: Dict[str, List[Value]] = defaultdict(list)
        for event in self.captures:
            out[event.instance].append(event.value)
        return dict(out)

    def total_toggles(self) -> int:
        return sum(self.toggle_counts.values())
