"""Event-driven gate-level simulator with per-arc timing.

Simulates a flat module against a technology library using 3-valued
logic (0 / 1 / X).  Sequential cells follow their liberty ``ff`` /
``latch`` groups: flip-flops capture on the rising edge of their clock
expression, latches are transparent while their enable expression is
true and *capture on the closing edge* -- the event the flow-equivalence
checker records.  Combinational cells with feedback (C-elements, the
controller complex gate) work naturally because output pins may appear
in their own functions and feedback nets re-trigger evaluation.

Delays come from the liberty linear model at a chosen corner, so the
same netlist can be simulated at best case, worst case, or with a
Monte-Carlo instance-level derate map (variability experiments).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..liberty.functions import compile_function
from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection
from ..sta.graph import compute_net_loads

Value = Optional[int]


@dataclass
class CaptureEvent:
    """A sequential element storing a datum (FF clock edge / latch close)."""

    time: float
    instance: str
    value: Value


class _CellModel:
    """Pre-compiled behaviour of one instance."""

    __slots__ = (
        "name",
        "cell",
        "kind",
        "pin_nets",
        "output_fns",
        "output_delays",
        "seq_next",
        "seq_clock",
        "seq_clear",
        "seq_preset",
        "state_pin",
        "state",
        "prev_clock",
        "is_ff",
        "is_latch",
        "scheduled",
    )

    def __init__(self, name: str):
        self.name = name
        self.state: Value = None
        self.prev_clock: Value = None
        #: last value scheduled per output pin (transport-delay model:
        #: comparing against the *current* net value would silently drop
        #: a change that reconverges while an earlier event is in flight)
        self.scheduled: Dict[str, Value] = {}


class SimulationError(Exception):
    """Raised for unusable simulation setups."""


class Simulator:
    """Event-driven simulator for one module."""

    def __init__(
        self,
        module: Module,
        library: Library,
        corner: str = "worst",
        derate_map: Optional[Dict[str, float]] = None,
        timing: bool = True,
    ):
        self.module = module
        self.library = library
        self.corner = corner
        self.timing = timing
        self.now = 0.0
        self._seq = 0
        self._queue: List[Tuple[float, int, str, Value]] = []
        self.net_values: Dict[str, Value] = {}
        self._fanout: Dict[str, List[_CellModel]] = defaultdict(list)
        self._models: Dict[str, _CellModel] = {}
        self.captures: List[CaptureEvent] = []
        self.toggle_counts: Dict[str, int] = defaultdict(int)
        #: nets pinned to a value (stuck-at fault injection)
        self.forced_nets: Dict[str, Value] = {}
        self._watchers: List[Callable[[float, str, Value], None]] = []
        self._capture_watchers: List[Callable[[CaptureEvent], None]] = []

        derate = library.corner(corner).derate
        loads = compute_net_loads(module, library)
        derate_map = derate_map or {}

        for net_name, net in module.nets.items():
            if net.is_constant:
                self.net_values[net_name] = net.constant_value
            else:
                self.net_values[net_name] = None

        for inst in module.instances.values():
            cell = library.cells.get(inst.cell)
            if cell is None:
                raise SimulationError(
                    f"cell {inst.cell!r} of {inst.name!r} not in library"
                )
            model = _CellModel(inst.name)
            model.cell = cell
            model.kind = cell.kind
            model.pin_nets = dict(inst.pins)
            model.is_ff = cell.kind == CellKind.FLIP_FLOP
            model.is_latch = cell.kind == CellKind.LATCH
            model.output_fns = {}
            model.output_delays = {}
            local_derate = derate * derate_map.get(inst.name, 1.0)
            for pin in cell.output_pins():
                net = inst.pins.get(pin)
                if net is None:
                    continue
                function = cell.pins[pin].function
                if function is not None:
                    model.output_fns[pin] = compile_function(function)
                arcs = [a for a in cell.arcs_to(pin) if not a.timing_type.startswith(("setup", "hold"))]
                load = loads.get(net, 0.0)
                if arcs and timing:
                    delay = max(a.worst_delay(load) for a in arcs)
                else:
                    delay = 0.001 if timing else 0.0
                model.output_delays[pin] = delay * local_derate
            seq = cell.sequential
            if seq is not None:
                model.seq_next = (
                    compile_function(seq.next_state) if seq.next_state else None
                )
                model.seq_clock = (
                    compile_function(seq.clocked_on) if seq.clocked_on else None
                )
                model.seq_clear = (
                    compile_function(seq.clear) if seq.clear else None
                )
                model.seq_preset = (
                    compile_function(seq.preset) if seq.preset else None
                )
                model.state_pin = seq.state_pin
            else:
                model.seq_next = model.seq_clock = None
                model.seq_clear = model.seq_preset = None
                model.state_pin = "IQ"
            self._models[inst.name] = model
            for pin in cell.input_pins():
                net = inst.pins.get(pin)
                if net is not None:
                    self._fanout[net].append(model)

    # ------------------------------------------------------------------
    # observation hooks
    # ------------------------------------------------------------------
    def watch_nets(self, callback: Callable[[float, str, Value], None]) -> None:
        self._watchers.append(callback)

    def watch_captures(self, callback: Callable[[CaptureEvent], None]) -> None:
        self._capture_watchers.append(callback)

    # ------------------------------------------------------------------
    # state setup
    # ------------------------------------------------------------------
    def set_state(self, instance: str, value: Value) -> None:
        """Force the internal state of a sequential element (reset init)."""
        model = self._models[instance]
        if not (model.is_ff or model.is_latch):
            raise SimulationError(f"{instance!r} is not sequential")
        model.state = value
        self._drive_outputs(model, immediate=True)

    def set_input(self, port_bit: str, value: Value, at: Optional[float] = None) -> None:
        """Schedule a primary-input change (default: now)."""
        self._schedule(at if at is not None else self.now, port_bit, value)

    def force_net(self, net: str, value: Value) -> None:
        """Pin a net to a value (stuck-at fault injection for ATPG)."""
        self.forced_nets[net] = value
        self.net_values[net] = value
        for model in self._fanout.get(net, ()):
            self._evaluate(model)

    def release_net(self, net: str) -> None:
        self.forced_nets.pop(net, None)

    def value(self, net: str) -> Value:
        return self.net_values[net]

    def bus_value(self, bits: List[str]) -> Optional[int]:
        """Integer value of an LSB-first bit list, None if any bit is X."""
        out = 0
        for index, bit in enumerate(bits):
            value = self.net_values.get(bit)
            if value is None:
                return None
            out |= value << index
        return out

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _schedule(self, time: float, net: str, value: Value) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, net, value))

    def run_until(self, end_time: float, max_events: int = 5_000_000) -> None:
        """Advance simulation time to ``end_time``."""
        events = 0
        while self._queue and self._queue[0][0] <= end_time:
            time = self._queue[0][0]
            self.now = time
            changed: List[str] = []
            while self._queue and self._queue[0][0] == time:
                _, _, net, value = heapq.heappop(self._queue)
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"event limit exceeded at t={time:.3f} "
                        "(oscillation or runaway activity)"
                    )
                if net in self.forced_nets:
                    continue
                if self.net_values.get(net) == value:
                    continue
                self.net_values[net] = value
                if value is not None:
                    self.toggle_counts[net] += 1
                for watcher in self._watchers:
                    watcher(time, net, value)
                changed.append(net)
            touched: Dict[str, _CellModel] = {}
            for net in changed:
                for model in self._fanout.get(net, ()):
                    touched[model.name] = model
            for model in touched.values():
                self._evaluate(model)
        self.now = end_time

    def run_for(self, duration: float, **kwargs) -> None:
        self.run_until(self.now + duration, **kwargs)

    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _pin_env(self, model: _CellModel) -> Dict[str, Value]:
        env: Dict[str, Value] = {}
        for pin, net in model.pin_nets.items():
            env[pin] = self.net_values.get(net)
        if model.is_ff or model.is_latch:
            env[model.state_pin] = model.state
        return env

    def _evaluate(self, model: _CellModel) -> None:
        env = self._pin_env(model)
        if model.is_ff:
            self._evaluate_ff(model, env)
        elif model.is_latch:
            self._evaluate_latch(model, env)
        self._drive_outputs(model)

    def _evaluate_ff(self, model: _CellModel, env: Dict[str, Value]) -> None:
        # asynchronous clear / preset dominate
        if model.seq_clear is not None and model.seq_clear(env) == 1:
            model.state = 0
        elif model.seq_preset is not None and model.seq_preset(env) == 1:
            model.state = 1
        else:
            clock = model.seq_clock(env) if model.seq_clock else None
            if model.prev_clock == 0 and clock == 1:
                model.state = model.seq_next(env) if model.seq_next else None
                self._record_capture(model)
            elif clock == 1 and model.prev_clock is None:
                # unknown -> 1 transition: state becomes unknown
                model.state = None
            model.prev_clock = (
                model.seq_clock(env) if model.seq_clock else None
            )
            return
        self._record_capture(model)
        if model.seq_clock is not None:
            model.prev_clock = model.seq_clock(env)

    def _evaluate_latch(self, model: _CellModel, env: Dict[str, Value]) -> None:
        if model.seq_clear is not None and model.seq_clear(env) == 1:
            model.state = 0
            return
        if model.seq_preset is not None and model.seq_preset(env) == 1:
            model.state = 1
            return
        enable = model.seq_clock(env) if model.seq_clock else 1
        if enable == 1:
            model.state = model.seq_next(env) if model.seq_next else None
        elif enable == 0 and model.prev_clock == 1:
            # closing edge: the value just latched is the capture
            self._record_capture(model)
        elif enable is None:
            model.state = None
        model.prev_clock = enable

    def _record_capture(self, model: _CellModel) -> None:
        event = CaptureEvent(self.now, model.name, model.state)
        self.captures.append(event)
        for watcher in self._capture_watchers:
            watcher(event)

    def _drive_outputs(self, model: _CellModel, immediate: bool = False) -> None:
        env = self._pin_env(model)
        for pin, fn in model.output_fns.items():
            net = model.pin_nets.get(pin)
            if net is None:
                continue
            value = fn(env)
            last = model.scheduled.get(pin, self.net_values.get(net))
            if value == last:
                continue
            if immediate or not self.timing:
                delay = 0.0
            else:
                delay = model.output_delays.get(pin, 0.0)
            model.scheduled[pin] = value
            self._schedule(self.now + delay, net, value)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def settle(self, max_time: float = 1000.0, step: float = 5.0) -> float:
        """Run until the event queue drains (or ``max_time``)."""
        start = self.now
        while self._queue and self.now < start + max_time:
            self.run_for(step)
        return self.now

    def capture_sequences(self) -> Dict[str, List[Value]]:
        """Captured data sequences per sequential instance."""
        out: Dict[str, List[Value]] = defaultdict(list)
        for event in self.captures:
            out[event.instance].append(event.value)
        return dict(out)

    def total_toggles(self) -> int:
        return sum(self.toggle_counts.values())
