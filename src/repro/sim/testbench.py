"""Testbench drivers: synchronous clocked runs and handshake environments.

Section 4.8: "testbenches for the desynchronized versions are almost
identical to those for the synchronous designs.  The only change needed
is the replacement of the clock references by corresponding
request/acknowledge signals" -- which is precisely the difference
between :class:`SyncTestbench` and :class:`HandshakeTestbench`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..liberty.model import CellKind, Library
from ..netlist.core import Module
from .simulator import SimulationError, Simulator, Value

#: per-cycle stimulus: cycle index -> {port bit: value}
StimulusFn = Callable[[int], Dict[str, Value]]


def initialize_registers(
    simulator: Simulator, value: int = 0, overrides: Optional[Dict[str, int]] = None
) -> None:
    """Force every sequential element to a known state (reset modelling)."""
    overrides = overrides or {}
    for name, model in simulator._models.items():
        if model.is_ff or model.is_latch:
            simulator.set_state(name, overrides.get(name, value))


class SyncTestbench:
    """Drives a clocked design: clock generation plus per-cycle inputs."""

    def __init__(
        self,
        simulator: Simulator,
        clock: str = "clk",
        period: float = 4.0,
    ):
        self.simulator = simulator
        self.clock = clock
        self.period = period
        self.cycle = 0
        simulator.set_input(clock, 0)

    def run_cycles(self, n: int, stimulus: Optional[StimulusFn] = None) -> None:
        """Run ``n`` clock cycles; inputs change shortly after each edge.

        A :class:`~repro.sim.batch.BatchSimulator` (detected by its
        ``is_batch`` marker) takes the cycle-based path: the same
        stimulus schedule -- inputs settle while the clock is low --
        collapsed to one ``step_cycle`` per clock, driving every lane.
        """
        sim = self.simulator
        if getattr(sim, "is_batch", False):
            for _ in range(n):
                inputs = stimulus(self.cycle) if stimulus is not None else None
                sim.step_cycle(inputs, clock=self.clock)
                self.cycle += 1
            return
        for _ in range(n):
            if stimulus is not None:
                for port, value in stimulus(self.cycle).items():
                    sim.set_input(port, value, at=sim.now + 0.01 * self.period)
            sim.run_for(self.period / 2.0)
            sim.set_input(self.clock, 1)
            sim.run_for(self.period / 2.0)
            sim.set_input(self.clock, 0)
            self.cycle += 1
        sim.run_for(self.period / 4.0)


@dataclass
class HandshakeResult:
    items_sent: int = 0
    items_received: Dict[str, int] = field(default_factory=dict)
    #: per output region: values of watched buses at each acknowledge
    output_values: Dict[str, List[Optional[int]]] = field(default_factory=dict)


class HandshakeTestbench:
    """Environment for a desynchronized design's req/ack ports.

    ``env_ports`` comes from ``DesyncResult.network.env_ports``:
    region -> {"ri": .., "ai": .., "ro": .., "ao": ..} (subsets).
    The input side presents one data item per 4-phase cycle; the output
    side acknowledges every request and can sample output buses.
    """

    def __init__(
        self,
        simulator: Simulator,
        env_ports: Dict[str, Dict[str, str]],
        reset_port: str = "rst",
        timeout: float = 10000.0,
    ):
        self.simulator = simulator
        self.env_ports = env_ports
        self.reset_port = reset_port
        self.timeout = timeout
        self.watch_buses: Dict[str, List[str]] = {}
        self._in_regions = [r for r, p in env_ports.items() if "ri" in p]
        self._out_regions = [r for r, p in env_ports.items() if "ao" in p]
        self.result = HandshakeResult()
        for region in self._out_regions:
            self.result.items_received[region] = 0
            self.result.output_values[region] = []

    # ------------------------------------------------------------------
    def apply_reset(
        self,
        registers_value: int = 0,
        duration: float = 2.0,
        overrides: Optional[Dict[str, int]] = None,
        initial_inputs: Optional[Dict[str, Value]] = None,
    ) -> None:
        """Reset the controllers and registers.

        ``initial_inputs`` are the data values present *at* reset
        release -- like a synchronous testbench applying its first
        vector before the first clock edge, the masters capture these
        as item 0 when the reset-high master x elements fire.
        """
        sim = self.simulator
        sim.set_input(self.reset_port, 1)
        for region in self._in_regions:
            sim.set_input(self.env_ports[region]["ri"], 0)
        for region in self._out_regions:
            sim.set_input(self.env_ports[region]["ao"], 0)
        sim.run_for(duration)
        initialize_registers(sim, registers_value, overrides)
        sim.run_for(duration)
        # data applied after register init so the transparent masters
        # (reset = synchronous clock-low state) track it before capture
        for port, value in (initial_inputs or {}).items():
            sim.set_input(port, value)
        sim.run_for(duration)
        sim.set_input(self.reset_port, 0)
        sim.run_for(duration)

    # ------------------------------------------------------------------
    def _service_output_acks(self) -> None:
        """4-phase responder on every output channel."""
        sim = self.simulator
        for region in self._out_regions:
            ports = self.env_ports[region]
            request = sim.value(ports["ro"])
            ack_value = sim.value(ports["ao"])
            if request == 1 and ack_value != 1:
                bus = self.watch_buses.get(region)
                if bus is not None:
                    self.result.output_values[region].append(
                        sim.bus_value(bus)
                    )
                self.result.items_received[region] += 1
                sim.set_input(ports["ao"], 1)
            elif request == 0 and ack_value != 0:
                sim.set_input(ports["ao"], 0)

    def _step(self, dt: float = 0.5) -> None:
        self.simulator.run_for(dt)
        self._service_output_acks()

    def _wait(self, condition: Callable[[], bool], what: str) -> None:
        start = self.simulator.now
        while not condition():
            self._step()
            if self.simulator.now - start > self.timeout:
                raise SimulationError(
                    f"handshake timeout waiting for {what} at t="
                    f"{self.simulator.now:.1f}"
                )

    # ------------------------------------------------------------------
    def run_items(
        self,
        n_items: int,
        stimulus: Optional[StimulusFn] = None,
        settle: float = 50.0,
        first_item: int = 1,
    ) -> HandshakeResult:
        """Push data items ``first_item .. first_item+n_items-1``.

        Item 0 is captured at reset release (see :meth:`apply_reset`),
        so the handshake normally starts at item 1.  Data on the input
        buses only changes once every input acknowledge is low -- the
        masters have closed on the previous item.
        """
        sim = self.simulator
        for item in range(first_item, first_item + n_items):
            self._wait(
                lambda: all(
                    sim.value(self.env_ports[r]["ai"]) == 0
                    for r in self._in_regions
                ),
                "input acknowledge low before new data",
            )
            if stimulus is not None:
                for port, value in stimulus(item).items():
                    sim.set_input(port, value)
                sim.run_for(0.1)
            for region in self._in_regions:
                sim.set_input(self.env_ports[region]["ri"], 1)
            self._wait(
                lambda: all(
                    sim.value(self.env_ports[r]["ai"]) == 1
                    for r in self._in_regions
                ),
                "input acknowledge high",
            )
            for region in self._in_regions:
                sim.set_input(self.env_ports[region]["ri"], 0)
            self.result.items_sent += 1
        # drain: keep servicing output acks for a while
        end = sim.now + settle
        while sim.now < end:
            self._step()
        return self.result

    def run_free(self, duration: float) -> HandshakeResult:
        """Let a design without input channels free-run (counters)."""
        end = self.simulator.now + duration
        while self.simulator.now < end:
            self._step()
        return self.result
