"""Event-driven simulation, testbenches and flow-equivalence checking."""

from .simulator import CaptureEvent, SimulationError, Simulator, Value
from .batch import (
    BatchSimulator,
    assert_lane_parity,
    batch_capture_run,
    solo_capture_sequences,
)
from .testbench import (
    HandshakeResult,
    HandshakeTestbench,
    StimulusFn,
    SyncTestbench,
    initialize_registers,
)
from .flowequiv import (
    FlowEquivalenceReport,
    check_flow_equivalence,
    run_desynchronized,
    run_synchronous,
)
from .probes import (
    DeadlockWatchdog,
    HandshakeProbe,
    handshake_report,
)

__all__ = [
    "BatchSimulator",
    "CaptureEvent",
    "DeadlockWatchdog",
    "FlowEquivalenceReport",
    "HandshakeProbe",
    "HandshakeResult",
    "HandshakeTestbench",
    "SimulationError",
    "Simulator",
    "StimulusFn",
    "SyncTestbench",
    "Value",
    "assert_lane_parity",
    "batch_capture_run",
    "check_flow_equivalence",
    "handshake_report",
    "initialize_registers",
    "solo_capture_sequences",
    "run_desynchronized",
    "run_synchronous",
]
