"""Event-driven simulation, testbenches and flow-equivalence checking."""

from .simulator import CaptureEvent, SimulationError, Simulator, Value
from .testbench import (
    HandshakeResult,
    HandshakeTestbench,
    StimulusFn,
    SyncTestbench,
    initialize_registers,
)
from .flowequiv import (
    FlowEquivalenceReport,
    check_flow_equivalence,
    run_desynchronized,
    run_synchronous,
)
from .probes import (
    DeadlockWatchdog,
    HandshakeProbe,
    handshake_report,
)

__all__ = [
    "CaptureEvent",
    "DeadlockWatchdog",
    "FlowEquivalenceReport",
    "HandshakeProbe",
    "HandshakeResult",
    "HandshakeTestbench",
    "SimulationError",
    "Simulator",
    "StimulusFn",
    "SyncTestbench",
    "Value",
    "check_flow_equivalence",
    "handshake_report",
    "initialize_registers",
    "run_desynchronized",
    "run_synchronous",
]
