"""Reactive handshake environment: memories behind req/ack channels.

A design like the DLX closes combinational loops *through the
environment*: ``pc`` goes out, ``instr = imem[pc]`` comes back.  For
the synchronous testbench that is trivial (everything is in lockstep);
for the desynchronized circuit the environment must respect the
handshake discipline per channel, because internal regions may run
ahead of each other by their token capacity:

- every *output* region announces item ``k`` with its ``ro_<region>``;
  the environment snapshots that region's output ports **before**
  acknowledging, so late consumers still see item ``k``'s values;
- an *input* region is given item ``k`` (data computed by a user
  ``respond`` callback from the item-k snapshots) only once every
  output region has produced item ``k`` -- the memory cannot answer a
  fetch that has not happened yet.

This is the faithful version of the paper's remark that
desynchronized testbenches equal the synchronous ones with clock
references replaced by request/acknowledge signals (section 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netlist.core import Module, PortDirection
from .simulator import SimulationError, Simulator, Value
from .testbench import initialize_registers

#: respond(k, snapshot) -> input port-bit values for item k;
#: snapshot maps output port bits to their item-k values
RespondFn = Callable[[int, Dict[str, Value]], Dict[str, Value]]


def _port_bit_regions(module: Module, region_map, gatefile) -> Dict[str, str]:
    """Map each output port bit to the *sequential* region sourcing it.

    Output ports are combinationally derived from latches; the handshake
    item that validates a port value is the one announced by the region
    owning those latches.  We trace backwards through combinational
    cells until a sequential element is reached.
    """
    from ..netlist.index import ConnectivityIndex

    out: Dict[str, str] = {}
    # the traces from different port bits overlap heavily in the shared
    # combinational cone, so one index serves every bit
    index = ConnectivityIndex(module, gatefile)
    for port in module.ports.values():
        if port.direction != PortDirection.OUTPUT:
            continue
        for bit in port.bit_names():
            region = _trace_sequential_region(
                module, region_map, gatefile, bit, index=index
            )
            if region is not None:
                out[bit] = region
    return out


def _trace_sequential_region(
    module: Module,
    region_map,
    gatefile,
    net_name: str,
    max_cells: int = 500,
    index=None,
) -> Optional[str]:
    from ..netlist.core import driver_of

    seen = set()
    frontier = [net_name]
    while frontier and len(seen) < max_cells:
        net = frontier.pop()
        if index is not None:
            ref = index.driver_of(net)
        else:
            ref = driver_of(module, net, gatefile)
        if ref is None or ref.instance is None or ref.instance in seen:
            continue
        seen.add(ref.instance)
        inst = module.instances[ref.instance]
        info = gatefile.cells.get(inst.cell)
        if info is None:
            continue
        if info.is_sequential:
            return region_map.region_of(ref.instance)
        for pin, in_net in inst.pins.items():
            gate_pin = info.pins.get(pin)
            if gate_pin is not None and gate_pin.direction == PortDirection.INPUT:
                frontier.append(in_net)
    return None


@dataclass
class ReactiveEnvironment:
    """Drives a desynchronized design whose inputs answer its outputs."""

    simulator: Simulator
    env_ports: Dict[str, Dict[str, str]]
    respond: RespondFn
    reset_port: str = "rst"
    timeout: float = 50000.0
    #: polling granularity (ns): the environment's reaction latency
    poll_step: float = 0.1
    #: settle time between applying data and raising the request
    data_setup: float = 0.1
    #: output port bit -> producing region (auto-built by ``attach``)
    port_regions: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._in_regions = [r for r, p in self.env_ports.items() if "ri" in p]
        self._out_regions = [r for r, p in self.env_ports.items() if "ao" in p]
        self._snapshots: Dict[str, List[Dict[str, Value]]] = {
            region: [] for region in self._out_regions
        }
        self._consumed = 0
        self._ri_high = False

    @classmethod
    def attach(cls, simulator: Simulator, desync_result, respond: RespondFn
               ) -> "ReactiveEnvironment":
        env = cls(
            simulator,
            desync_result.network.env_ports,
            respond,
            desync_result.network.reset_net,
        )
        env.port_regions = _port_bit_regions(
            desync_result.module,
            desync_result.region_map,
            desync_result.gatefile,
        )
        return env

    # ------------------------------------------------------------------
    def _region_outputs(self, region: str) -> List[str]:
        handshake = set()
        for ports in self.env_ports.values():
            handshake.update(ports.values())
        return [
            bit
            for bit, owner in self.port_regions.items()
            if owner == region and bit not in handshake
        ]

    def _snapshot(self, region: str) -> Dict[str, Value]:
        return {
            bit: self.simulator.value(bit)
            for bit in self._region_outputs(region)
        }

    def _item_snapshot(self, item: int) -> Dict[str, Value]:
        """Merged output values as of item ``item``."""
        merged: Dict[str, Value] = {}
        for region in self._out_regions:
            history = self._snapshots[region]
            if item == 0 or not history:
                merged.update(self._reset_snapshot.get(region, {}))
            else:
                merged.update(history[min(item, len(history)) - 1])
        return merged

    # ------------------------------------------------------------------
    def reset(self, registers_value: int = 0) -> None:
        sim = self.simulator
        sim.set_input(self.reset_port, 1)
        for region in self._in_regions:
            sim.set_input(self.env_ports[region]["ri"], 0)
        for region in self._out_regions:
            sim.set_input(self.env_ports[region]["ao"], 0)
        sim.run_for(2.0)
        initialize_registers(sim, registers_value)
        sim.run_for(2.0)
        self._reset_snapshot = {
            region: self._snapshot(region) for region in self._out_regions
        }
        # item 0: computed from the reset-state outputs
        for bit, value in self.respond(0, self._item_snapshot(0)).items():
            sim.set_input(bit, value)
        self._consumed = 1
        sim.run_for(2.0)
        sim.set_input(self.reset_port, 0)
        sim.run_for(2.0)

    # ------------------------------------------------------------------
    def _poll(self) -> None:
        sim = self.simulator
        # output side: snapshot + acknowledge
        for region in self._out_regions:
            ports = self.env_ports[region]
            request = sim.value(ports["ro"])
            ack = sim.value(ports["ao"])
            if request == 1 and ack != 1:
                self._snapshots[region].append(self._snapshot(region))
                sim.set_input(ports["ao"], 1)
            elif request == 0 and ack == 1:
                sim.set_input(ports["ao"], 0)

        # input side: common item pacing across all input channels
        if not self._in_regions:
            return
        ai_values = [
            sim.value(self.env_ports[r]["ai"]) for r in self._in_regions
        ]
        if self._ri_high:
            if all(v == 1 for v in ai_values):
                for region in self._in_regions:
                    sim.set_input(self.env_ports[region]["ri"], 0)
                self._ri_high = False
            return
        if any(v != 0 for v in ai_values):
            return
        produced = min(
            (len(self._snapshots[r]) for r in self._out_regions),
            default=self._consumed,
        )
        if self._consumed > produced or self._consumed > self._max_items - 1:
            return
        values = self.respond(self._consumed, self._item_snapshot(self._consumed))
        for bit, value in values.items():
            sim.set_input(bit, value)
        sim.run_for(self.data_setup)
        for region in self._in_regions:
            sim.set_input(self.env_ports[region]["ri"], 1)
        self._ri_high = True
        self._consumed += 1

    def run_items(self, n_items: int, settle: float = 50.0) -> int:
        """Feed items 1..n_items-1 (item 0 went in at reset)."""
        self._max_items = n_items
        sim = self.simulator
        start = sim.now
        while self._consumed < n_items:
            sim.run_for(self.poll_step)
            self._poll()
            if sim.now - start > self.timeout:
                raise SimulationError(
                    f"reactive environment stalled at item {self._consumed}"
                )
        end = sim.now + settle
        while sim.now < end:
            sim.run_for(self.poll_step)
            self._poll()
        return self._consumed
