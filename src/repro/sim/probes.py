"""Handshake observability: token-flow probe, stall attribution, watchdog.

The desynchronized circuit's behaviour lives in its controller network:
tokens ripple around the ``x``/``y`` C-element ring, the matched delay
elements pace each request, and back-pressure shows up as a high
acknowledge that keeps ``y`` from returning.  :class:`HandshakeProbe`
watches exactly those nets (auto-discovered through
:meth:`repro.desync.network.ControlNetwork.handshake_nets`), decodes the
4-phase protocol into per-region **token events** and splits every
handshake cycle into attribution segments:

``blocked_on_predecessor``
    from the previous capture until the *joined* request (the C-Muller
    output feeding the delay element) rises -- waiting for upstream
    tokens.
``waiting_on_delay``
    from the joined request to the delayed ``req_<r>`` -- the matched
    delay element covering the region's combinational cloud.
``blocked_on_successor_ack``
    from the delayed request until the master admission element ``xm``
    rises -- ``xm = C(req, !ym)`` cannot fire while the y-element is
    still held by the un-acknowledged previous token, i.e. downstream
    back-pressure.
``pulse``
    the remainder, through the enable pulse to the capture itself.

A **token** is counted at every falling edge of the master enable
``gm`` -- the instant the region's master latches capture -- so probe
token counts equal ``capture_sequences()`` lengths for the region's
master latches and steady-state cycle times are directly comparable to
:func:`repro.perf.cycle.measure_effective_period`.

:class:`DeadlockWatchdog` flags windows with no handshake progress and,
on a terminal stall, names the blocked controller cycle by following
wait edges (waiting-request -> predecessors, blocked-on-ack ->
successors) over the data-dependency graph.

Everything here is pull-based over :meth:`Simulator.watch_nets`
selective subscriptions: an un-probed simulation pays nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.metrics import Histogram, NS_BUCKETS

__all__ = [
    "HandshakeProbe",
    "DeadlockWatchdog",
    "handshake_report",
    "STALL_KEYS",
]

#: attribution segment names, in within-cycle order
STALL_KEYS = (
    "blocked_on_predecessor",
    "waiting_on_delay",
    "blocked_on_successor_ack",
    "pulse",
)


class _RegionState:
    """Mutable per-region decode state."""

    __slots__ = (
        "values", "rise", "token_times", "cycles",
        "xm_high_since", "xm_high_total", "histogram",
    )

    def __init__(self, name: str):
        self.values: Dict[str, Any] = {}
        #: last rise time per net key ("req_src", "req", "xm", ...)
        self.rise: Dict[str, float] = {}
        self.token_times: List[float] = []
        #: per-cycle records: {"start", "end", "segments": {...}}
        self.cycles: List[Dict[str, Any]] = []
        self.xm_high_since: Optional[float] = None
        self.xm_high_total = 0.0
        self.histogram = Histogram(f"handshake.cycle.{name}", NS_BUCKETS)


class HandshakeProbe:
    """Decode controller-network activity into per-region token flow.

    ``source`` is a :class:`repro.desync.tool.DesyncResult` (preferred:
    brings the DDG for blocked-cycle search) or a bare
    :class:`repro.desync.network.ControlNetwork`.
    """

    def __init__(self, simulator, source):
        network = getattr(source, "network", source)
        self.network = network
        self.ddg = getattr(source, "ddg", None)
        self.nets: Dict[str, Dict[str, str]] = network.handshake_nets()
        #: net name -> [(region, key)] -- one net can matter to two
        #: regions (a predecessor's ys is the successor's joined request)
        self._dispatch: Dict[str, List[Tuple[str, str]]] = {}
        self.regions: Dict[str, _RegionState] = {}
        for region, keyed in self.nets.items():
            self.regions[region] = _RegionState(region)
            for key, net in keyed.items():
                self._dispatch.setdefault(net, []).append((region, key))
        self.simulator = simulator
        self.start_time = simulator.now
        self.last_event_time: Optional[float] = None
        self.event_count = 0
        self._listeners: List[Callable[[float], None]] = []
        # seed decode state from the current net values so edges are
        # recognised from the very first change
        for region, keyed in self.nets.items():
            state = self.regions[region]
            for key, net in keyed.items():
                state.values[key] = simulator.net_values.get(net)
        simulator.watch_nets(self._on_change, nets=list(self._dispatch))

    # ------------------------------------------------------------------
    # event decode
    # ------------------------------------------------------------------
    def _on_change(self, now: float, net: str, value: Any) -> None:
        self.event_count += 1
        previous_event = self.last_event_time
        self.last_event_time = now
        for region, key in self._dispatch[net]:
            state = self.regions[region]
            old = state.values.get(key)
            state.values[key] = value
            if value == 1 and old != 1:
                state.rise[key] = now
                if key == "xm" and state.xm_high_since is None:
                    state.xm_high_since = now
            elif old == 1 and value != 1:
                if key == "xm" and state.xm_high_since is not None:
                    state.xm_high_total += now - state.xm_high_since
                    state.xm_high_since = None
                if key == "gm":
                    self._token(state, now)
        for listener in self._listeners:
            listener(now)
        del previous_event  # gap analysis lives in the watchdog

    def _token(self, state: _RegionState, now: float) -> None:
        """A gm falling edge: the master latches captured a token."""
        times = state.token_times
        if times:
            start = times[-1]
            cycle = now - start
            state.histogram.observe(cycle)
            rise = state.rise
            cursor = start
            segments: Dict[str, float] = {}
            for key, net_key in (
                ("blocked_on_predecessor", "req_src"),
                ("waiting_on_delay", "req"),
                ("blocked_on_successor_ack", "xm"),
            ):
                at = rise.get(net_key)
                if at is None or at > now:
                    segments[key] = 0.0
                    continue
                segments[key] = max(at - cursor, 0.0)
                cursor = max(at, cursor)
            segments["pulse"] = max(now - cursor, 0.0)
            state.cycles.append(
                {"start": start, "end": now, "segments": segments}
            )
        times.append(now)

    def watched_nets(self) -> List[str]:
        """Every net the probe subscribed to, sorted."""
        return sorted(self._dispatch)

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Call ``listener(now)`` on every handshake net change."""
        self._listeners.append(listener)

    def finalize(self, now: Optional[float] = None) -> None:
        """Close open occupancy intervals at ``now`` (default: sim.now)."""
        if now is None:
            now = self.simulator.now
        for state in self.regions.values():
            if state.xm_high_since is not None:
                state.xm_high_total += max(now - state.xm_high_since, 0.0)
                state.xm_high_since = now

    # ------------------------------------------------------------------
    # per-region statistics
    # ------------------------------------------------------------------
    def token_counts(self) -> Dict[str, int]:
        return {
            region: len(state.token_times)
            for region, state in self.regions.items()
        }

    def cycle_stats(
        self, region: str, warmup: int = 3
    ) -> Optional[Dict[str, float]]:
        """Steady-state cycle time for ``region``.

        The mean is computed exactly like
        :func:`repro.perf.cycle.measure_effective_period`: drop the
        first ``warmup`` tokens, average the remaining intervals.
        """
        times = self.regions[region].token_times
        if len(times) < warmup + 2:
            return None
        steady = times[warmup:]
        intervals = [b - a for a, b in zip(steady, steady[1:])]
        return {
            "count": len(intervals),
            "mean": (steady[-1] - steady[0]) / (len(steady) - 1),
            "min": min(intervals),
            "max": max(intervals),
        }

    def occupancy(self, region: str) -> float:
        """Fraction of the observed window the admission element held
        a token (``xm`` high).  Call :meth:`finalize` first."""
        window = (self.last_event_time or self.start_time) - self.start_time
        if window <= 0:
            return 0.0
        return min(self.regions[region].xm_high_total / window, 1.0)

    def stall_totals(self, region: str) -> Dict[str, float]:
        """Summed attribution segments over every recorded cycle."""
        totals = {key: 0.0 for key in STALL_KEYS}
        for cycle in self.regions[region].cycles:
            for key, value in cycle["segments"].items():
                totals[key] += value
        return totals

    # ------------------------------------------------------------------
    # live phase / blocked-cycle analysis
    # ------------------------------------------------------------------
    def region_phase(self, region: str) -> str:
        """Classify a region's controller state from current values.

        - ``waiting-request``: no request pending -- starved by the
          predecessors or still inside the delay element.
        - ``blocked-on-successor-ack``: a request is pending but the
          admission element cannot fire (y held by an un-acked token),
          or the y-element is held high by the acknowledge itself.
        - ``capturing``: the enable pulse is open.
        - ``advancing``: a request has been admitted and is moving
          through the pipeline normally.
        """
        values = self.regions[region].values
        req, xm, ym = values.get("req"), values.get("xm"), values.get("ym")
        ack, gm = values.get("ack"), values.get("gm")
        if gm == 1:
            return "capturing"
        if xm != 1:
            if req == 1:
                return "blocked-on-successor-ack" if ym == 1 else "advancing"
            return "waiting-request"
        if ym == 1 and ack == 1:
            return "blocked-on-successor-ack"
        return "advancing"

    def blocked_regions(self) -> Dict[str, str]:
        """Regions currently in a blocked phase, with the phase name."""
        out: Dict[str, str] = {}
        for region in self.regions:
            phase = self.region_phase(region)
            if phase in ("waiting-request", "blocked-on-successor-ack"):
                out[region] = phase
        return out

    def blocked_cycle(self) -> List[str]:
        """A controller cycle of mutually waiting regions, if one exists.

        Follows wait edges over the DDG -- a starved region waits on
        its predecessors, a back-pressured one on its successors -- and
        returns the first cycle found (the deadlocked controller ring),
        or an empty list.
        """
        if self.ddg is None:
            return []
        from ..desync.ddg import predecessors_of, successors_of

        blocked = self.blocked_regions()
        edges: Dict[str, List[str]] = {}
        for region, phase in blocked.items():
            if phase == "waiting-request":
                neighbours = predecessors_of(self.ddg, region)
            else:
                neighbours = successors_of(self.ddg, region)
            edges[region] = [n for n in neighbours if n in blocked]
        # DFS cycle search over the wait graph
        for start in sorted(edges):
            stack = [(start, [start])]
            seen = set()
            while stack:
                node, path = stack.pop()
                for neighbour in edges.get(node, ()):
                    if neighbour == start:
                        return path
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append((neighbour, path + [neighbour]))
        return []


class DeadlockWatchdog:
    """Flag no-handshake-progress windows on a probed simulation.

    Passive mode: every handshake event checks the gap since the
    previous one; gaps above ``window_ns`` are recorded retroactively
    as stall windows.  Call :meth:`poll` after the run (or after a
    simulator timeout) to detect a *terminal* stall -- that is when the
    blocked controller cycle gets named, since the net values still
    hold the deadlocked state.
    """

    def __init__(self, probe: HandshakeProbe, window_ns: float = 100.0):
        self.probe = probe
        self.window_ns = window_ns
        #: retroactive no-progress windows: {"start", "end", "gap_ns"}
        self.stalls: List[Dict[str, float]] = []
        self.deadlock: Optional[Dict[str, Any]] = None
        self._last: Optional[float] = probe.last_event_time
        probe.add_listener(self._on_event)

    def _on_event(self, now: float) -> None:
        last = self._last
        if last is not None and now - last > self.window_ns:
            self.stalls.append(
                {"start": last, "end": now, "gap_ns": now - last}
            )
        self._last = now

    def poll(self, now: Optional[float] = None) -> bool:
        """Check for a terminal stall at ``now`` (default: sim.now).

        Returns True (and fills :attr:`deadlock`) when no handshake
        event happened for at least ``window_ns`` before ``now``.
        """
        if now is None:
            now = self.probe.simulator.now
        last = self._last if self._last is not None else self.probe.start_time
        gap = now - last
        if gap < self.window_ns:
            return False
        blocked = self.probe.blocked_regions()
        self.deadlock = {
            "since": last,
            "detected_at": now,
            "gap_ns": gap,
            "blocked_regions": blocked,
            "blocked_cycle": self.probe.blocked_cycle(),
        }
        return True

    def report(self) -> Dict[str, Any]:
        return {
            "window_ns": self.window_ns,
            "stall_windows": list(self.stalls),
            "deadlock": self.deadlock,
        }


def handshake_report(
    probe: HandshakeProbe,
    result=None,
    library=None,
    corner: str = "worst",
    warmup: int = 3,
    watchdog: Optional[DeadlockWatchdog] = None,
) -> Dict[str, Any]:
    """Aggregate a probe into a JSON-serialisable token-flow report.

    When ``result`` (a ``DesyncResult``) and ``library`` are given the
    measured numbers are cross-validated against the analytical
    :func:`repro.perf.cycle.effective_period_model`: the report gains a
    ``model`` section and an ``agreement`` ratio
    (measured / modelled effective period).
    """
    probe.finalize()
    regions: Dict[str, Any] = {}
    worst: Optional[Tuple[float, str]] = None
    for region in sorted(probe.regions):
        state = probe.regions[region]
        stats = probe.cycle_stats(region, warmup=warmup)
        totals = probe.stall_totals(region)
        stalled = sum(totals.values())
        regions[region] = {
            "tokens": len(state.token_times),
            "cycle_ns": stats,
            "occupancy": round(probe.occupancy(region), 6),
            "stall_ns": {k: round(v, 6) for k, v in totals.items()},
            "stall_fraction": {
                k: round(v / stalled, 6) if stalled > 0 else 0.0
                for k, v in totals.items()
            },
            "histogram": state.histogram.snapshot(),
        }
        if stats is not None:
            if worst is None or stats["mean"] > worst[0]:
                worst = (stats["mean"], region)
    report: Dict[str, Any] = {
        "window_ns": round(
            (probe.last_event_time or probe.start_time) - probe.start_time, 6
        ),
        "events": probe.event_count,
        "regions": regions,
        "effective_period_measured_ns": worst[0] if worst else None,
        "critical_region_measured": worst[1] if worst else None,
    }
    if result is not None and library is not None:
        from ..perf.cycle import effective_period_model

        model = effective_period_model(result, library, corner=corner)
        report["model"] = {
            "corner": corner,
            "effective_period_ns": model.effective_period,
            "critical_region": model.critical_region,
            "critical_cycle": model.critical_cycle,
            "per_region_ns": dict(model.per_region),
        }
        if worst is not None and model.effective_period > 0:
            ratio = worst[0] / model.effective_period
            report["agreement"] = {
                "measured_over_model": round(ratio, 6),
                "within_5pct": abs(ratio - 1.0) <= 0.05,
            }
    if watchdog is not None:
        report["watchdog"] = watchdog.report()
    return report
