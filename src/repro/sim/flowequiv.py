"""Gate-level flow-equivalence validation (sections 2.1, 4.8).

Desynchronization preserves *flow-equivalence*: every sequential element
of the desynchronized circuit stores exactly the data sequence of its
synchronous counterpart.  This module checks the property empirically:
it simulates the synchronous design under a clocked testbench and the
desynchronized design under the handshake environment, then compares,
flip-flop by flip-flop, the captured sequence of the flip-flop against
the captured sequence of its slave latch (named ``<ff>_ls`` by the
substitution pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..desync.tool import DesyncResult
from ..liberty.model import Library
from ..netlist.core import Module
from .simulator import Simulator, Value
from .testbench import (
    HandshakeTestbench,
    StimulusFn,
    SyncTestbench,
    initialize_registers,
)


@dataclass
class FlowEquivalenceReport:
    """Outcome of one sync-vs-desync data-sequence comparison."""

    compared: int = 0
    cycles: int = 0
    mismatches: List[str] = field(default_factory=list)
    sync_sequences: Dict[str, List[Value]] = field(default_factory=dict)
    desync_sequences: Dict[str, List[Value]] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return self.compared > 0 and not self.mismatches


def run_synchronous(
    module: Module,
    library: Library,
    cycles: int,
    stimulus: Optional[StimulusFn] = None,
    clock: str = "clk",
    period: Optional[float] = None,
    corner: str = "worst",
    kernel: str = "compiled",
) -> Simulator:
    """Clocked reference run with all registers initialised to zero."""
    from ..sta.analysis import min_clock_period

    if period is None:
        period = min_clock_period(module, library, corner) * 1.5 + 0.5
    simulator = Simulator(module, library, corner, kernel=kernel)
    initialize_registers(simulator, 0)
    bench = SyncTestbench(simulator, clock=clock, period=period)
    bench.run_cycles(cycles, stimulus)
    return simulator


def run_desynchronized(
    result: DesyncResult,
    library: Library,
    items: int,
    stimulus: Optional[StimulusFn] = None,
    corner: str = "worst",
    free_run_time: Optional[float] = None,
    kernel: str = "compiled",
) -> Tuple[Simulator, HandshakeTestbench]:
    """Handshake run of a desynchronized design, zero-initialised."""
    simulator = Simulator(result.module, library, corner, kernel=kernel)
    bench = HandshakeTestbench(
        simulator, result.network.env_ports, result.network.reset_net
    )
    initial = stimulus(0) if stimulus is not None else None
    bench.apply_reset(0, initial_inputs=initial)
    has_inputs = any("ri" in p for p in result.network.env_ports.values())
    if has_inputs:
        bench.run_items(max(items - 1, 0), stimulus, first_item=1)
    else:
        bench.run_free(free_run_time if free_run_time is not None else 500.0)
    return simulator, bench


def check_flow_equivalence_reactive(
    sync_module: Module,
    desync_result: DesyncResult,
    library: Library,
    cycles: int,
    respond_factory,
    clock: str = "clk",
    corner: str = "worst",
    kernel: str = "compiled",
) -> FlowEquivalenceReport:
    """Flow-equivalence with a *reactive* environment (e.g. memories).

    ``respond_factory(simulator)`` must return a fresh
    ``respond(item, outputs_snapshot) -> inputs`` function with its own
    state per run.  The synchronous run evaluates it on live outputs
    each cycle; the desynchronized run goes through
    :class:`repro.sim.reactive.ReactiveEnvironment` so output snapshots
    stay item-aligned even when regions run ahead of each other.
    """
    from ..sta.analysis import min_clock_period
    from .reactive import ReactiveEnvironment

    report = FlowEquivalenceReport(cycles=cycles)

    period = min_clock_period(sync_module, library, corner) * 1.5 + 0.5
    sync_sim = Simulator(sync_module, library, corner, kernel=kernel)
    sync_respond = respond_factory(sync_sim)
    output_bits = sync_module.port_bits()

    def sync_stimulus(cycle: int):
        snapshot = {
            bit: sync_sim.net_values.get(bit) for bit in output_bits
        }
        return sync_respond(cycle, snapshot)

    initialize_registers(sync_sim, 0)
    bench = SyncTestbench(sync_sim, clock=clock, period=period)
    bench.run_cycles(cycles, sync_stimulus)
    sync_sequences = sync_sim.capture_sequences()

    desync_sim = Simulator(desync_result.module, library, corner, kernel=kernel)
    desync_respond = respond_factory(desync_sim)
    env = ReactiveEnvironment.attach(desync_sim, desync_result, desync_respond)
    env.reset(0)
    env.run_items(cycles)
    desync_sequences = desync_sim.capture_sequences()

    _compare_sequences(report, sync_sequences, desync_sequences, desync_sim)
    return report


def check_flow_equivalence(
    sync_module: Module,
    desync_result: DesyncResult,
    library: Library,
    cycles: int,
    stimulus: Optional[StimulusFn] = None,
    clock: str = "clk",
    corner: str = "worst",
    stimulus_factory=None,
    kernel: str = "compiled",
) -> FlowEquivalenceReport:
    """Compare FF capture sequences against slave-latch capture sequences.

    ``sync_module`` must be the design *before* desynchronization (the
    caller keeps a clone).  The same ``stimulus`` drives cycle ``k`` of
    the synchronous run and item ``k`` of the handshake run.

    ``stimulus_factory`` supports *reactive* environments (e.g. the DLX
    memories): it is called once per run with that run's simulator and
    must return the stimulus closure -- which may read the simulator's
    current outputs when producing the next inputs.
    """
    report = FlowEquivalenceReport(cycles=cycles)

    if stimulus_factory is not None:
        from ..sta.analysis import min_clock_period

        period = min_clock_period(sync_module, library, corner) * 1.5 + 0.5
        sync_sim = Simulator(sync_module, library, corner, kernel=kernel)
        sync_stimulus = stimulus_factory(sync_sim)
        initialize_registers(sync_sim, 0)
        bench = SyncTestbench(sync_sim, clock=clock, period=period)
        bench.run_cycles(cycles, sync_stimulus)
        sync_sequences = sync_sim.capture_sequences()

        desync_sim = Simulator(desync_result.module, library, corner, kernel=kernel)
        desync_stimulus = stimulus_factory(desync_sim)
        hs_bench = HandshakeTestbench(
            desync_sim,
            desync_result.network.env_ports,
            desync_result.network.reset_net,
        )
        hs_bench.apply_reset(0, initial_inputs=desync_stimulus(0))
        hs_bench.run_items(max(cycles - 1, 0), desync_stimulus, first_item=1)
        desync_sequences = desync_sim.capture_sequences()
    else:
        sync_sim = run_synchronous(
            sync_module, library, cycles, stimulus, clock=clock,
            corner=corner, kernel=kernel,
        )
        sync_sequences = sync_sim.capture_sequences()

        desync_sim, _bench = run_desynchronized(
            desync_result, library, cycles, stimulus, corner=corner,
            kernel=kernel,
        )
        desync_sequences = desync_sim.capture_sequences()

    _compare_sequences(report, sync_sequences, desync_sequences, desync_sim)
    return report


def _compare_sequences(
    report: FlowEquivalenceReport,
    sync_sequences: Dict[str, List[Value]],
    desync_sequences: Dict[str, List[Value]],
    desync_sim: Simulator,
) -> None:
    for ff_name, sync_seq in sorted(sync_sequences.items()):
        slave_name = f"{ff_name}_ls"
        if slave_name not in desync_sim._models:
            continue  # e.g. a flip-flop outside the desynchronized scope
        desync_seq = desync_sequences.get(slave_name, [])
        length = min(len(sync_seq), len(desync_seq))
        if length == 0:
            report.mismatches.append(
                f"{ff_name}: no comparable captures "
                f"(sync={len(sync_seq)}, desync={len(desync_seq)})"
            )
            continue
        report.compared += 1
        report.sync_sequences[ff_name] = sync_seq[:length]
        report.desync_sequences[ff_name] = desync_seq[:length]
        if sync_seq[:length] != desync_seq[:length]:
            first_bad = next(
                i
                for i in range(length)
                if sync_seq[i] != desync_seq[i]
            )
            report.mismatches.append(
                f"{ff_name}: diverges at capture {first_bad}: "
                f"sync={sync_seq[:length]} desync={desync_seq[:length]}"
            )
