"""repro.obs -- tracing, metrics and flow profiling.

The observability layer of the reproduction: a hierarchical span
tracer (:mod:`repro.obs.trace`), a metrics registry of counters,
gauges and fixed-bucket histograms (:mod:`repro.obs.metrics`), the
exporters that turn them into Chrome trace-event JSON / text reports /
``metrics.json`` (:mod:`repro.obs.export`), and the ``logging``
configuration for the ``repro`` logger hierarchy
(:mod:`repro.obs.logsetup`).

Both tracing and metrics are disabled by default and near-zero-cost in
that state; the CLI's ``--trace`` / ``--metrics`` flags (or an explicit
``set_tracer`` / ``set_registry``) opt in::

    from repro.obs import trace, metrics
    from repro.obs.export import write_chrome_trace, write_metrics

    trace.set_tracer(trace.Tracer())
    metrics.set_registry(metrics.MetricsRegistry())
    ...run the flow...
    write_chrome_trace("trace.json")      # open in ui.perfetto.dev
    write_metrics("metrics.json")
"""

from . import export, logsetup, metrics, timeseries, trace, vcd
from .export import (
    aggregate_spans,
    chrome_trace_events,
    handshake_trace_events,
    phase_times,
    prometheus_text,
    summary_report,
    trace_document,
    write_chrome_trace,
    write_handshake_trace,
    write_metrics,
)
from .logsetup import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NS_BUCKETS
from .timeseries import (
    RingBuffer,
    TimeSeriesSampler,
    TimeSeriesStore,
    quantile_from_buckets,
)
from .trace import NULL_SPAN, Span, Tracer
from .vcd import VcdWriter, read_vcd

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NS_BUCKETS",
    "NULL_SPAN",
    "RingBuffer",
    "Span",
    "TimeSeriesSampler",
    "TimeSeriesStore",
    "Tracer",
    "VcdWriter",
    "aggregate_spans",
    "chrome_trace_events",
    "configure_logging",
    "export",
    "get_logger",
    "handshake_trace_events",
    "logsetup",
    "metrics",
    "phase_times",
    "prometheus_text",
    "quantile_from_buckets",
    "read_vcd",
    "summary_report",
    "timeseries",
    "trace",
    "trace_document",
    "vcd",
    "write_chrome_trace",
    "write_handshake_trace",
    "write_metrics",
]
