"""repro.obs -- tracing, metrics, profiling and benchmarking.

The observability layer of the reproduction: a hierarchical span
tracer (:mod:`repro.obs.trace`), a metrics registry of counters,
gauges and fixed-bucket histograms (:mod:`repro.obs.metrics`), an
opt-in per-stage profiler with cProfile + tracemalloc capture
(:mod:`repro.obs.prof`), the unified benchmark-result schema, history
store and statistical regression detector (:mod:`repro.obs.bench`),
the exporters that turn them into Chrome trace-event JSON / speedscope
profiles / text reports / ``metrics.json`` (:mod:`repro.obs.export`),
and the ``logging`` configuration for the ``repro`` logger hierarchy
(:mod:`repro.obs.logsetup`).

Tracing, metrics and profiling are disabled by default and
near-zero-cost in that state; the CLI's ``--trace`` / ``--metrics`` /
``--profile`` flags (or an explicit ``set_tracer`` / ``set_registry``
/ ``set_profiler``) opt in::

    from repro.obs import trace, metrics, prof
    from repro.obs.export import write_chrome_trace, write_profile

    trace.set_tracer(trace.Tracer())
    prof.set_profiler(prof.Profiler())
    ...run the flow...
    write_chrome_trace("trace.json")      # open in ui.perfetto.dev
    write_profile("profile-out")          # open in speedscope.app
"""

from . import bench, export, logsetup, metrics, prof, timeseries, trace, vcd
from .bench import BenchResult, check_regression, machine_metadata
from .export import (
    aggregate_spans,
    chrome_trace_events,
    collapsed_stacks,
    handshake_trace_events,
    phase_times,
    profile_document,
    profile_report,
    prometheus_text,
    speedscope_document,
    summary_report,
    trace_document,
    write_chrome_trace,
    write_handshake_trace,
    write_metrics,
    write_profile,
)
from .logsetup import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NS_BUCKETS
from .prof import Profiler, StageProfile
from .timeseries import (
    RingBuffer,
    TimeSeriesSampler,
    TimeSeriesStore,
    quantile_from_buckets,
)
from .trace import NULL_SPAN, Span, Tracer
from .vcd import VcdWriter, read_vcd

__all__ = [
    "BenchResult",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NS_BUCKETS",
    "NULL_SPAN",
    "Profiler",
    "RingBuffer",
    "Span",
    "StageProfile",
    "TimeSeriesSampler",
    "TimeSeriesStore",
    "Tracer",
    "VcdWriter",
    "aggregate_spans",
    "bench",
    "check_regression",
    "chrome_trace_events",
    "collapsed_stacks",
    "configure_logging",
    "export",
    "get_logger",
    "handshake_trace_events",
    "logsetup",
    "machine_metadata",
    "metrics",
    "phase_times",
    "prof",
    "profile_document",
    "profile_report",
    "prometheus_text",
    "quantile_from_buckets",
    "read_vcd",
    "speedscope_document",
    "summary_report",
    "timeseries",
    "trace",
    "trace_document",
    "vcd",
    "write_chrome_trace",
    "write_handshake_trace",
    "write_metrics",
    "write_profile",
]
