"""Exporters: Chrome trace-event JSON, text summaries, metrics files.

``write_chrome_trace`` emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:
one complete (``"ph": "X"``) event per finished span, with timestamps
in microseconds, plus thread-name metadata so engine worker threads
are labelled.  Perfetto reconstructs the span tree from the per-thread
ts/dur nesting, so the exported file shows in-stage spans stacked
under their engine stage exactly as they ran.

``summary_report`` renders the aggregated tree as text (the poor
operator's flame graph), with a footer admitting bounded-retention
span drops and the profiler's machinery overhead when either is
non-zero; ``write_metrics`` persists a
:class:`repro.obs.metrics.MetricsRegistry` snapshot; ``phase_times``
extracts per-stage wall times (the ``BENCH_obs.json`` payload) from a
tracer or from a previously written trace file.

Profiler exports live here too: :func:`speedscope_document` folds a
:class:`repro.obs.prof.Profiler`'s per-stage call graphs into one
`speedscope <https://www.speedscope.app>`_ JSON file (one sampled
profile per stage, weights in seconds), :func:`collapsed_stacks`
emits Brendan Gregg collapsed-stack text for ``flamegraph.pl``-style
tooling, and :func:`profile_document` bundles the per-stage
hot-function tables with the speedscope payload -- the body of the
service daemon's ``GET /jobs/<id>/profile``.  cProfile records a call
*graph*, not stack samples; each function's self time is attributed
to one representative stack built by following its heaviest caller
chain, so widths are exact per function and approximate per path.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry
from .prof import Profiler, get_profiler
from .prof import _func_label as _frame_label
from .trace import Span, Tracer, get_tracer

#: speedscope's published file-format schema URL
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: span-name prefix the engine gives to stage spans
STAGE_PREFIX = "stage:"


def chrome_trace_events(tracer: Optional[Tracer] = None) -> List[Dict[str, Any]]:
    """Finished spans as a list of Chrome trace-event dicts."""
    tracer = tracer or get_tracer()
    pid = os.getpid()
    trace_id = getattr(tracer, "trace_id", None)
    events: List[Dict[str, Any]] = []
    thread_names: Dict[int, str] = {}
    for span in tracer.finished():
        thread_names.setdefault(span.thread_id, span.thread_name)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": round((tracer.epoch + span.start) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": span.thread_id,
        }
        if span.attrs or trace_id is not None:
            args = {k: _jsonable(v) for k, v in span.attrs.items()}
            if trace_id is not None:
                args["trace_id"] = trace_id
            event["args"] = args
        events.append(event)
    for tid, name in sorted(thread_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return events


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def trace_document(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """A tracer's spans as one Perfetto-loadable trace-event document.

    ``otherData`` carries the tracer's ``trace_id`` and dropped-span
    count when present, so a service trace names the job it belongs to
    and admits when its ring buffer clipped history.
    """
    tracer = tracer or get_tracer()
    other: Dict[str, Any] = {"producer": "repro.obs"}
    trace_id = getattr(tracer, "trace_id", None)
    if trace_id is not None:
        other["trace_id"] = trace_id
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        other["dropped_spans"] = dropped
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """Write the tracer's spans as a Chrome trace-event JSON file."""
    document = trace_document(tracer)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def aggregate_spans(tracer: Optional[Tracer] = None) -> Dict[str, Dict[str, Any]]:
    """Per-path aggregation: count, total/self wall time, mean.

    Self time is the span's duration minus its direct children's, i.e.
    where the wall clock actually went.
    """
    tracer = tracer or get_tracer()
    spans = tracer.finished()
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            key = id(span.parent)
            child_time[key] = child_time.get(key, 0.0) + span.duration
    out: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        entry = out.setdefault(
            span.path,
            {"count": 0, "total_s": 0.0, "self_s": 0.0, "depth": span.depth},
        )
        entry["count"] += 1
        entry["total_s"] += span.duration
        entry["self_s"] += span.duration - child_time.get(id(span), 0.0)
    for entry in out.values():
        entry["total_s"] = round(entry["total_s"], 6)
        entry["self_s"] = round(max(entry["self_s"], 0.0), 6)
        entry["mean_s"] = round(entry["total_s"] / entry["count"], 6)
    return out


def _retention_footer(
    tracer: Tracer, profiler: Optional[Profiler]
) -> List[str]:
    """Truncation/overhead admissions for :func:`summary_report`."""
    lines: List[str] = []
    dropped = getattr(tracer, "dropped", 0)
    if dropped:
        lines.append(
            f"(dropped {dropped} span(s) beyond the "
            f"max_spans={tracer.max_spans} retention ring)"
        )
    if profiler is not None and len(profiler):
        overhead = profiler.overhead_estimate()
        lines.append(
            f"(profiler: {len(profiler)} stage profile(s), machinery "
            f"overhead {overhead['machinery_s']:.4f}s, "
            f"{overhead['fraction'] * 100:.2f}% of profiled wall"
        )
        if profiler.dropped:
            lines[-1] += f", {profiler.dropped} profile(s) dropped"
        lines[-1] += ")"
    return lines


def summary_report(
    tracer: Optional[Tracer] = None,
    profiler: Optional[Profiler] = None,
) -> str:
    """Aggregated span tree as indented text, heaviest paths first.

    The footer surfaces the tracer's dropped-span count and the
    profiler's overhead estimate so bounded retention is visible
    instead of silent.  ``profiler`` defaults to the effective one.
    """
    tracer = tracer or get_tracer()
    if profiler is None:
        profiler = get_profiler()
    footer = _retention_footer(tracer, profiler)
    aggregated = aggregate_spans(tracer)
    if not aggregated:
        return "\n".join(["(no spans recorded)"] + footer)
    lines = [
        f"{'span':44s} {'count':>6s} {'total (s)':>10s} "
        f"{'self (s)':>10s} {'mean (s)':>10s}"
    ]
    # depth-first over the path hierarchy, siblings by total time
    def children_of(path: Optional[str]) -> List[str]:
        prefix = f"{path}/" if path else ""
        depth = path.count("/") + 1 if path else 0
        found = [
            p
            for p in aggregated
            if p.startswith(prefix) and p.count("/") == depth
        ]
        return sorted(found, key=lambda p: -aggregated[p]["total_s"])

    def emit(path: str) -> None:
        entry = aggregated[path]
        label = "  " * entry["depth"] + path.rsplit("/", 1)[-1]
        lines.append(
            f"{label:44s} {entry['count']:>6d} {entry['total_s']:>10.4f} "
            f"{entry['self_s']:>10.4f} {entry['mean_s']:>10.4f}"
        )
        for child in children_of(path):
            emit(child)

    for root in children_of(None):
        emit(root)
    return "\n".join(lines + footer)


def phase_times(
    tracer: Optional[Tracer] = None,
    trace_file: Optional[str] = None,
    prefix: str = STAGE_PREFIX,
) -> Dict[str, float]:
    """Wall seconds per engine stage (``stage:*`` spans).

    Reads either a live tracer or a Chrome trace file written earlier
    by :func:`write_chrome_trace` -- the CI smoke job uses the latter
    to build ``BENCH_obs.json`` from the uploaded trace artifact.
    """
    totals: Dict[str, float] = {}
    if trace_file is not None:
        with open(trace_file) as handle:
            document = json.load(handle)
        for event in document.get("traceEvents", []):
            name = event.get("name", "")
            if event.get("ph") == "X" and name.startswith(prefix):
                totals[name[len(prefix):]] = (
                    totals.get(name[len(prefix):], 0.0)
                    + event.get("dur", 0.0) / 1e6
                )
    else:
        for span in (tracer or get_tracer()).finished():
            if span.name.startswith(prefix):
                totals[span.name[len(prefix):]] = (
                    totals.get(span.name[len(prefix):], 0.0) + span.duration
                )
    return {name: round(total, 6) for name, total in sorted(totals.items())}


def handshake_trace_events(probe) -> List[Dict[str, Any]]:
    """Token-flow slices from a :class:`repro.sim.probes.HandshakeProbe`.

    One Perfetto track (tid) per region: each handshake cycle is a
    ``token`` complete-event slice and its stall-attribution segments
    nest underneath it (same tid, contained ts/dur), so the waterfall
    shows *why* each region's cycle took as long as it did.  Timestamps
    map simulation nanoseconds to trace microseconds 1:1000, i.e. the
    viewer's "1 ms" is one simulated microsecond.
    """
    pid = 1
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "handshake"},
        }
    ]
    for tid, region in enumerate(sorted(probe.regions), start=1):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"region {region}"},
            }
        )
        state = probe.regions[region]
        for index, cycle in enumerate(state.cycles):
            start, end = cycle["start"], cycle["end"]
            events.append(
                {
                    "name": "token",
                    "cat": "handshake",
                    "ph": "X",
                    "ts": round(start * 1e3, 3),
                    "dur": round((end - start) * 1e3, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": {"region": region, "index": index},
                }
            )
            cursor = start
            for key, duration in cycle["segments"].items():
                if duration <= 0:
                    continue
                events.append(
                    {
                        "name": key,
                        "cat": "handshake.stall",
                        "ph": "X",
                        "ts": round(cursor * 1e3, 3),
                        "dur": round(duration * 1e3, 3),
                        "pid": pid,
                        "tid": tid,
                        "args": {"region": region},
                    }
                )
                cursor += duration
    return events


def write_handshake_trace(path: str, probe) -> Dict[str, Any]:
    """Write a probe's token flow as a Chrome/Perfetto trace file."""
    document = {
        "traceEvents": handshake_trace_events(probe),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.sim.probes"},
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def _prom_name(name: str) -> str:
    """Instrument name -> Prometheus metric name (dots to underscores)."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _labelled(metric: str, label_body: Optional[str], extra: str = "") -> str:
    """``metric{labels,extra}`` with either part optional."""
    body = ",".join(part for part in (label_body, extra) if part)
    return f"{metric}{{{body}}}" if body else metric


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Emits ``# HELP`` (from :meth:`MetricsRegistry.describe`, with a
    generic fallback) and ``# TYPE`` lines once per metric family;
    counters map to ``counter``, gauges to ``gauge`` and fixed-bucket
    histograms to cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``.  Labelled instruments (``repro_jobs{state=
    "queued"}``) group under one family header, so the output is
    scrapeable by a real Prometheus, not just greppable.
    """
    from .metrics import split_name

    registry = registry or get_registry()
    snapshot = registry.snapshot()
    help_texts = (
        registry.help_texts() if hasattr(registry, "help_texts") else {}
    )
    lines: List[str] = []
    seen_families: set = set()

    def family_header(base: str, kind: str) -> None:
        metric = _prom_name(base)
        if metric in seen_families:
            return
        seen_families.add(metric)
        help_text = help_texts.get(base, f"repro metric {base}")
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")

    for name, value in snapshot.get("counters", {}).items():
        base, label_body = split_name(name)
        family_header(base, "counter")
        lines.append(f"{_labelled(_prom_name(base), label_body)} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        base, label_body = split_name(name)
        family_header(base, "gauge")
        lines.append(f"{_labelled(_prom_name(base), label_body)} {value}")
    for name, hist in snapshot.get("histograms", {}).items():
        base, label_body = split_name(name)
        family_header(base, "histogram")
        metric = _prom_name(base)
        cumulative = 0
        for bound, count in hist["buckets"].items():
            if not bound.startswith("<="):
                continue  # the overflow bucket folds into +Inf below
            cumulative += count
            bucket = _labelled(
                f"{metric}_bucket", label_body, f'le="{bound[2:]}"'
            )
            lines.append(f"{bucket} {cumulative}")
        bucket = _labelled(f"{metric}_bucket", label_body, 'le="+Inf"')
        lines.append(f'{bucket} {hist["count"]}')
        lines.append(f"{_labelled(metric + '_sum', label_body)} {hist['sum']}")
        lines.append(
            f"{_labelled(metric + '_count', label_body)} {hist['count']}"
        )
    return "\n".join(lines) + "\n"


def write_metrics(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Persist a metrics snapshot (plus ``extra`` fields) as JSON."""
    snapshot = (registry or get_registry()).snapshot()
    if extra:
        snapshot.update(extra)
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot


# ----------------------------------------------------------------------
# profiler exports: folded stacks, speedscope, hot-function tables
# ----------------------------------------------------------------------
_FuncKey = Tuple[str, int, str]


def _representative_stack(
    raw_stats: Dict[_FuncKey, Any], func: _FuncKey, max_depth: int = 64
) -> List[_FuncKey]:
    """Leaf-to-root chain for ``func`` via its heaviest caller edges.

    cProfile keeps a call graph, so a function may have many callers;
    the fold follows the caller contributing the most cumulative time
    at each step (ties broken by the pstats sort order), guarding
    against recursion cycles and runaway depth.  Returned root-first.
    """
    chain = [func]
    seen = {func}
    current = func
    for _ in range(max_depth):
        entry = raw_stats.get(current)
        if entry is None:
            break
        callers = entry[4]
        if not callers:
            break
        best = None
        best_weight = -1.0
        for caller in sorted(callers):
            stats = callers[caller]
            weight = stats[3] if isinstance(stats, tuple) else float(stats)
            if weight > best_weight:
                best = caller
                best_weight = weight
        if best is None or best in seen:
            break
        chain.append(best)
        seen.add(best)
        current = best
    chain.reverse()
    return chain


def folded_stacks(
    profiler: Optional[Profiler] = None,
) -> List[Tuple[str, List[_FuncKey], float]]:
    """``(stage, root-first frames, self seconds)`` per hot function."""
    profiler = profiler or get_profiler()
    out: List[Tuple[str, List[_FuncKey], float]] = []
    for record in profiler.profiles():
        for func in sorted(record.raw_stats):
            tt = record.raw_stats[func][2]
            if tt <= 0.0:
                continue
            out.append(
                (record.name, _representative_stack(record.raw_stats, func), tt)
            )
    return out


def collapsed_stacks(profiler: Optional[Profiler] = None) -> str:
    """Brendan Gregg collapsed-stack text (counts in microseconds).

    Each line is ``stage;frame;...;frame weight`` -- pipe into
    ``flamegraph.pl`` or drag onto speedscope to get a flame graph.
    Stacks are prefixed with their stage so per-stage flames separate.
    """
    lines: List[str] = []
    for stage_name, frames, seconds in folded_stacks(profiler):
        weight = int(round(seconds * 1e6))
        if weight <= 0:
            continue
        path = ";".join(
            [stage_name] + [_frame_label(frame) for frame in frames]
        )
        lines.append(f"{path} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(
    profiler: Optional[Profiler] = None, name: str = "repro profile"
) -> Dict[str, Any]:
    """The profiler's stage call graphs as one speedscope JSON document.

    One ``"sampled"``-type profile per stage (weights in seconds, one
    sample per hot function's representative stack), sharing a global
    frame table.  Validates against speedscope's published schema and
    opens directly at https://www.speedscope.app.
    """
    profiler = profiler or get_profiler()
    frames: List[Dict[str, Any]] = []
    frame_index: Dict[_FuncKey, int] = {}

    def intern(func: _FuncKey) -> int:
        index = frame_index.get(func)
        if index is None:
            index = len(frames)
            frame_index[func] = index
            filename, line, funcname = func
            frame: Dict[str, Any] = {"name": _frame_label(func)}
            if filename != "~":
                frame["file"] = filename
                frame["line"] = line
            frames.append(frame)
        return index

    profiles: List[Dict[str, Any]] = []
    for record in profiler.profiles():
        samples: List[List[int]] = []
        weights: List[float] = []
        for func in sorted(record.raw_stats):
            tt = record.raw_stats[func][2]
            if tt <= 0.0:
                continue
            stack = _representative_stack(record.raw_stats, func)
            samples.append([intern(frame) for frame in stack])
            weights.append(round(tt, 9))
        total = round(sum(weights), 9)
        profiles.append(
            {
                "type": "sampled",
                "name": f"stage:{record.name}",
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.obs",
        "activeProfileIndex": 0 if profiles else None,
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def profile_document(
    profiler: Optional[Profiler] = None, name: str = "repro profile"
) -> Dict[str, Any]:
    """Hot-function tables plus the speedscope payload, JSON-shaped.

    This is the body served by the daemon's ``GET /jobs/<id>/profile``
    and written by the CLI's ``--profile-out``: everything a human (or
    a flame-graph tool) needs to answer *where the time went*.
    """
    profiler = profiler or get_profiler()
    document = profiler.to_dict()
    document["schema"] = "repro-profile/v1"
    document["speedscope"] = speedscope_document(profiler, name=name)
    return document


def profile_report(profiler: Optional[Profiler] = None) -> str:
    """Per-stage hot-function tables as plain text."""
    profiler = profiler or get_profiler()
    records = profiler.profiles()
    if not records:
        return "(no stage profiles captured)"
    lines: List[str] = []
    for record in records:
        header = (
            f"stage {record.name}: wall {record.wall_s:.4f}s, "
            f"cpu {record.cpu_s:.4f}s, {record.calls} calls"
        )
        if record.mem_peak_kb is not None:
            header += (
                f", mem peak {record.mem_peak_kb:.0f} KB "
                f"(delta {record.mem_delta_kb:+.0f} KB)"
            )
        lines.append(header)
        lines.append(
            f"  {'self (s)':>10s} {'cum (s)':>10s} {'calls':>8s}  function"
        )
        for row in record.hot:
            lines.append(
                f"  {row['self_s']:>10.4f} {row['cum_s']:>10.4f} "
                f"{row['calls']:>8d}  {row['func']}"
            )
        if record.counters:
            counters = " ".join(
                f"{key}={record.counters[key]}"
                for key in sorted(record.counters)
            )
            lines.append(f"  counters: {counters}")
        lines.append("")
    overhead = profiler.overhead_estimate()
    lines.append(
        f"profiler machinery overhead: {overhead['machinery_s']:.4f}s "
        f"({overhead['fraction'] * 100:.2f}% of profiled wall)"
    )
    if profiler.dropped:
        lines.append(
            f"dropped {profiler.dropped} stage profile(s) beyond "
            f"max_profiles={profiler.max_profiles}"
        )
    return "\n".join(lines)


def write_profile(
    out_dir: str,
    profiler: Optional[Profiler] = None,
    name: str = "repro profile",
    prefix: str = "profile",
) -> Dict[str, str]:
    """Write every profile artifact into ``out_dir``.

    Emits ``<prefix>.json`` (the :func:`profile_document`),
    ``<prefix>.speedscope.json``, ``<prefix>.collapsed.txt`` and
    ``<prefix>.txt`` (hot tables); returns ``{kind: path}``.
    """
    profiler = profiler or get_profiler()
    os.makedirs(out_dir, exist_ok=True)
    document = profile_document(profiler, name=name)
    paths = {
        "profile": os.path.join(out_dir, f"{prefix}.json"),
        "speedscope": os.path.join(out_dir, f"{prefix}.speedscope.json"),
        "collapsed": os.path.join(out_dir, f"{prefix}.collapsed.txt"),
        "report": os.path.join(out_dir, f"{prefix}.txt"),
    }
    with open(paths["profile"], "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    with open(paths["speedscope"], "w") as handle:
        json.dump(document["speedscope"], handle, indent=1)
        handle.write("\n")
    with open(paths["collapsed"], "w") as handle:
        handle.write(collapsed_stacks(profiler))
    with open(paths["report"], "w") as handle:
        handle.write(profile_report(profiler))
        handle.write("\n")
    return paths
