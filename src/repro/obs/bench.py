"""Unified benchmark schema, history store and regression detection.

Every ``benchmarks/bench_*.py`` emits one :class:`BenchResult`: a
named bag of scalar metrics (speedup ratios, overhead percentages,
wall seconds) stamped with :func:`machine_metadata` -- platform,
Python version, CPU count, git revision and a UTC timestamp -- so
points recorded on different runners stay comparable.  Results append
to an **append-only history** (``benchmarks/results/history.jsonl``,
one JSON object per line) that the ``repro bench`` CLI verb records,
compares and reports over.

:func:`check_regression` is the single gate every benchmark and the
CI ``perf-gate`` job go through.  It has two modes per metric:

- **legacy ratio gate** -- exactly the arithmetic the five hand-rolled
  per-benchmark gates used: fail when the fresh value drops strictly
  below ``baseline * (1 - tolerance)`` (or rises above
  ``baseline * (1 + tolerance)`` for lower-is-better metrics such as
  overhead percentages).  This is the default, so swapping the
  benchmarks onto the shared helper is bit-identical on the committed
  baselines.
- **statistical gate** -- once the history holds ``min_history``
  points for a metric, the reference becomes the **median** of the
  last N points and the tolerance band becomes ``mad_k`` scaled median
  absolute deviations (MAD x 1.4826 estimates sigma under normality),
  floored at ``min_rel_band`` of the median so a dead-flat history
  (MAD = 0) is not a hair trigger.  Medians shrug off one noisy CI
  runner; the band adapts to how noisy each metric actually is.

Absolute floors and ceilings (the MC kernel's 8x, the incremental
flow's 20x, the service warm hit's 5x, telemetry's 5% overhead) are
preserved verbatim in both modes -- a statistical band never excuses
dropping below a hard requirement.

Metrics are **ratios, not seconds**, by contract: both sides of every
ratio run on the same machine in the same process, so runner speed
cancels out and the history is comparable across laptop and CI (see
DESIGN.md).
"""

from __future__ import annotations

import argparse
import datetime
import html
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: schema tag stamped into every result so readers can dispatch
SCHEMA = "repro-bench/v1"

#: the default append-only history store, relative to the repo root
DEFAULT_HISTORY = os.path.join("benchmarks", "results", "history.jsonl")

#: shared legacy tolerance: fail on >25% regression vs the baseline
DEFAULT_TOLERANCE = 0.25

#: history points required before the statistical mode takes over
DEFAULT_MIN_HISTORY = 5

#: MAD multiplier (3 sigma-equivalents under normality)
DEFAULT_MAD_K = 3.0

#: minimum band as a fraction of the median, so MAD=0 is not a trigger
DEFAULT_MIN_REL_BAND = 0.05

#: consistency constant: MAD * 1.4826 estimates sigma for normal data
MAD_SIGMA = 1.4826


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Short git revision of ``cwd`` (or CWD), ``None`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def machine_metadata(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Runner provenance stamped into every benchmark result."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "git_rev": git_revision(cwd),
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
    }


@dataclass
class BenchResult:
    """One benchmark run: named scalar metrics plus provenance.

    ``metrics`` holds the gated scalars (ratios by contract);
    ``detail`` carries the benchmark's free-form payload (timings,
    configuration, assertions) for humans and is never gated on.
    """

    name: str
    metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=machine_metadata)
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "meta": self.meta,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=payload.get("name", ""),
            metrics=dict(payload.get("metrics", {})),
            meta=dict(payload.get("meta", {})),
            detail=dict(payload.get("detail", {})),
        )


def stamp(
    payload: Dict[str, Any],
    name: str,
    metrics: Dict[str, float],
    cwd: Optional[str] = None,
) -> Dict[str, Any]:
    """Upgrade a legacy benchmark payload to the unified schema in place.

    Adds ``schema``/``name``/``metrics``/``meta`` keys while leaving
    the benchmark's existing fields where its readers expect them, so
    committed-baseline consumers keep working during the transition.
    """
    payload["schema"] = SCHEMA
    payload["name"] = name
    payload["metrics"] = {k: metrics[k] for k in sorted(metrics)}
    payload["meta"] = machine_metadata(cwd)
    return payload


# ----------------------------------------------------------------------
# history store (append-only JSONL)
# ----------------------------------------------------------------------
def append_history(result: Any, path: str = DEFAULT_HISTORY) -> None:
    """Append one result (BenchResult or schema dict) as a JSON line."""
    payload = result.to_dict() if isinstance(result, BenchResult) else result
    if "metrics" not in payload:
        raise ValueError(
            "history entries need a 'metrics' block "
            "(stamp() legacy payloads first)"
        )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(payload, sort_keys=True))
        handle.write("\n")


def load_history(
    path: str = DEFAULT_HISTORY, name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """All history entries (oldest first), optionally one benchmark's."""
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # a torn append never poisons the whole store
            if name is not None and payload.get("name") != name:
                continue
            entries.append(payload)
    return entries


def _metric_value(value: Any) -> Optional[float]:
    """Coerce one recorded metric to a float, or None if not gateable.

    Plain numbers pass through; the structured ``{"value": x, "unit":
    ...}`` form is unwrapped; booleans and everything else are facts,
    not gateable quantities.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    if isinstance(value, dict):
        return _metric_value(value.get("value"))
    return None


def metric_history(
    entries: Sequence[Dict[str, Any]], metric: str, last: int = 50
) -> List[float]:
    """The newest ``last`` recorded values of one metric, oldest first."""
    values = []
    for entry in entries:
        coerced = _metric_value(entry.get("metrics", {}).get(metric))
        if coerced is not None:
            values.append(coerced)
    return values[-last:]


# ----------------------------------------------------------------------
# the regression detector
# ----------------------------------------------------------------------
def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class MetricCheck:
    """The verdict for one metric."""

    metric: str
    fresh: float
    ok: bool
    kind: str  # "ratio" | "statistical" | "floor" | "ceiling"
    reference: Optional[float] = None
    bound: Optional[float] = None
    detail: str = ""

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return f"  [{status}] {self.metric}: {self.detail}"


@dataclass
class RegressionReport:
    """Everything :func:`check_regression` decided, printable."""

    name: str
    checks: List[MetricCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> List[MetricCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        title = f"regression check: {self.name or '(unnamed)'}"
        if not self.checks:
            return f"{title}\n  (no gated metrics)"
        return "\n".join([title] + [check.render() for check in self.checks])

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def check_regression(
    fresh: Dict[str, float],
    baseline: Optional[Dict[str, float]] = None,
    *,
    name: str = "",
    tolerance: float = DEFAULT_TOLERANCE,
    floors: Optional[Dict[str, float]] = None,
    ceilings: Optional[Dict[str, float]] = None,
    lower_is_better: Iterable[str] = (),
    history: Optional[Sequence[Dict[str, Any]]] = None,
    min_history: int = DEFAULT_MIN_HISTORY,
    mad_k: float = DEFAULT_MAD_K,
    min_rel_band: float = DEFAULT_MIN_REL_BAND,
) -> RegressionReport:
    """Gate ``fresh`` metrics against floors, ceilings and a reference.

    - ``floors``/``ceilings`` are absolute hard requirements, checked
      first and always (``fresh < floor`` / ``fresh > ceiling`` fails).
    - For each metric present in ``baseline``: with fewer than
      ``min_history`` history points the legacy ratio gate applies
      (fail when ``fresh < baseline * (1 - tolerance)``, direction
      flipped for ``lower_is_better`` metrics).  With enough history
      the reference becomes the median of the recorded points and the
      band ``max(mad_k * 1.4826 * MAD, min_rel_band * |median|)``.
    - ``history`` entries are schema dicts (see :func:`load_history`);
      only entries carrying the metric count toward ``min_history``.
    """
    lower = set(lower_is_better)
    report = RegressionReport(name=name)

    for metric, floor in sorted((floors or {}).items()):
        if metric not in fresh:
            continue
        value = fresh[metric]
        report.checks.append(
            MetricCheck(
                metric=metric,
                fresh=value,
                ok=value >= floor,
                kind="floor",
                bound=floor,
                detail=f"{value:.3f} vs hard floor {floor:.3f}",
            )
        )
    for metric, ceiling in sorted((ceilings or {}).items()):
        if metric not in fresh:
            continue
        value = fresh[metric]
        report.checks.append(
            MetricCheck(
                metric=metric,
                fresh=value,
                ok=value <= ceiling,
                kind="ceiling",
                bound=ceiling,
                detail=f"{value:.3f} vs hard ceiling {ceiling:.3f}",
            )
        )

    for metric in sorted(baseline or {}):
        if metric not in fresh:
            continue
        value = fresh[metric]
        base = float((baseline or {})[metric])
        points = (
            metric_history(history, metric) if history is not None else []
        )
        if len(points) >= max(2, min_history):
            center = _median(points)
            mad = _median([abs(p - center) for p in points])
            band = max(
                mad_k * MAD_SIGMA * mad, min_rel_band * abs(center)
            )
            if metric in lower:
                bound = center + band
                ok = value <= bound
                detail = (
                    f"{value:.3f} vs median {center:.3f} of "
                    f"{len(points)} runs (ceiling {bound:.3f}, "
                    f"MAD band {band:.3f})"
                )
            else:
                bound = center - band
                ok = value >= bound
                detail = (
                    f"{value:.3f} vs median {center:.3f} of "
                    f"{len(points)} runs (floor {bound:.3f}, "
                    f"MAD band {band:.3f})"
                )
            report.checks.append(
                MetricCheck(
                    metric=metric,
                    fresh=value,
                    ok=ok,
                    kind="statistical",
                    reference=center,
                    bound=bound,
                    detail=detail,
                )
            )
        else:
            # the legacy gate, arithmetic preserved exactly: strict
            # comparison against base * (1 -/+ tolerance)
            if metric in lower:
                bound = base * (1.0 + tolerance)
                ok = not (value > bound)
                detail = (
                    f"{value:.3f} vs baseline {base:.3f} "
                    f"(ceiling {bound:.3f})"
                )
            else:
                bound = base * (1.0 - tolerance)
                ok = not (value < bound)
                detail = (
                    f"{value:.3f} vs baseline {base:.3f} "
                    f"(floor {bound:.3f})"
                )
            report.checks.append(
                MetricCheck(
                    metric=metric,
                    fresh=value,
                    ok=ok,
                    kind="ratio",
                    reference=base,
                    bound=bound,
                    detail=detail,
                )
            )
    return report


def baseline_metrics(payload: Dict[str, Any]) -> Dict[str, float]:
    """The gateable metrics of a committed baseline JSON.

    New-schema payloads carry them in ``metrics``; nothing is guessed
    from legacy layouts -- each benchmark maps its own legacy fields.
    """
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return {}
    gateable = {}
    for key, value in metrics.items():
        coerced = _metric_value(value)
        if coerced is not None:
            gateable[key] = coerced
    return gateable


# ----------------------------------------------------------------------
# the ``repro bench`` CLI verb
# ----------------------------------------------------------------------
def _sparkline_svg(values: Sequence[float], width: int = 160, height: int = 36) -> str:
    """Inline SVG polyline (same idiom as the service dashboard)."""
    if not values:
        return "<svg/>"
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    step = width / max(1, len(values) - 1) if len(values) > 1 else width
    points = " ".join(
        f"{round(i * step, 1)},{round(height - 4 - (v - low) / span * (height - 8), 1)}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#4a90d9" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def trend_report_html(
    entries: Sequence[Dict[str, Any]], title: str = "benchmark history"
) -> str:
    """Per-(benchmark, metric) trend table with inline-SVG sparklines."""
    by_bench: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        by_bench.setdefault(entry.get("name", "?"), []).append(entry)
    rows: List[str] = []
    for bench_name in sorted(by_bench):
        bench_entries = by_bench[bench_name]
        metric_names = sorted(
            {m for e in bench_entries for m in e.get("metrics", {})}
        )
        for metric in metric_names:
            values = metric_history(bench_entries, metric)
            if not values:
                continue
            latest = values[-1]
            median = _median(values)
            last_meta = bench_entries[-1].get("meta", {})
            rows.append(
                "<tr>"
                f"<td>{html.escape(bench_name)}</td>"
                f"<td>{html.escape(metric)}</td>"
                f"<td class='num'>{latest:.3f}</td>"
                f"<td class='num'>{median:.3f}</td>"
                f"<td class='num'>{len(values)}</td>"
                f"<td>{_sparkline_svg(values)}</td>"
                f"<td>{html.escape(str(last_meta.get('git_rev') or '-'))}</td>"
                "</tr>"
            )
    body = "".join(rows) or (
        "<tr><td colspan='7'>(empty history -- run "
        "<code>repro bench record</code> first)</td></tr>"
    )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; }}
th, td {{ border: 1px solid #ccc; padding: 4px 10px; text-align: left; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
th {{ background: #f0f0f0; }}
</style></head><body>
<h1>{html.escape(title)}</h1>
<table>
<tr><th>benchmark</th><th>metric</th><th>latest</th><th>median</th>
<th>points</th><th>trend</th><th>git</th></tr>
{body}
</table></body></html>
"""


def _load_json(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "record, compare and report unified benchmark results"
        ),
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    record = sub.add_parser(
        "record", help="append a BENCH_*.json to the history store"
    )
    record.add_argument("result", help="benchmark result JSON (new schema)")
    record.add_argument("--history", default=DEFAULT_HISTORY)

    compare = sub.add_parser(
        "compare",
        help="gate a fresh result against a baseline (and history)",
    )
    compare.add_argument("result", help="fresh benchmark result JSON")
    compare.add_argument(
        "--baseline", help="committed baseline JSON (defaults to history-only)"
    )
    compare.add_argument("--history", default=DEFAULT_HISTORY)
    compare.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )
    compare.add_argument(
        "--min-history", type=int, default=DEFAULT_MIN_HISTORY
    )
    compare.add_argument(
        "--lower-is-better",
        default="",
        help="comma-separated metrics where smaller is better",
    )

    report = sub.add_parser(
        "report", help="render the history as an HTML trend report"
    )
    report.add_argument("--history", default=DEFAULT_HISTORY)
    report.add_argument("--name", help="restrict to one benchmark")
    report.add_argument("--out", help="write HTML here (default stdout)")
    return parser


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_bench_parser().parse_args(argv)

    if args.verb == "record":
        payload = _load_json(args.result)
        if "metrics" not in payload:
            print(
                f"error: {args.result} has no 'metrics' block "
                "(not a repro-bench/v1 result)",
                file=sys.stderr,
            )
            return 1
        append_history(payload, args.history)
        print(
            f"recorded {payload.get('name', '?')} "
            f"({len(payload['metrics'])} metric(s)) -> {args.history}"
        )
        return 0

    if args.verb == "compare":
        payload = _load_json(args.result)
        fresh = baseline_metrics(payload)
        if not fresh:
            print(
                f"error: {args.result} has no gateable metrics",
                file=sys.stderr,
            )
            return 1
        base = (
            baseline_metrics(_load_json(args.baseline))
            if args.baseline
            else {m: v for m, v in fresh.items()}
        )
        history = load_history(args.history, payload.get("name"))
        lower = {
            m.strip()
            for m in args.lower_is_better.split(",")
            if m.strip()
        }
        report = check_regression(
            fresh,
            base,
            name=payload.get("name", args.result),
            tolerance=args.tolerance,
            lower_is_better=lower,
            history=history or None,
            min_history=args.min_history,
        )
        print(report.render())
        return report.exit_code()

    if args.verb == "report":
        entries = load_history(args.history, args.name)
        document = trend_report_html(entries)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(document)
            print(f"wrote {args.out} ({len(entries)} history point(s))")
        else:
            print(document)
        return 0

    return 1  # pragma: no cover - argparse enforces the verbs
