"""Ring-buffer time series sampled from a :class:`MetricsRegistry`.

The metrics registry answers "what is the value *now*"; a long-running
service needs "how has it moved" -- request rates, queue depth over the
last ten minutes, the p95 of job latency as traffic shifts.  This
module derives exactly that from periodic registry snapshots without
retaining raw observations:

- every **counter** becomes a ``<name>.rate`` series (increments per
  second between consecutive samples);
- every **gauge** becomes a ``<name>`` sample series;
- every **histogram** becomes ``<name>.rate`` (observations/s) plus
  streaming ``<name>.p50`` / ``.p95`` / ``.p99`` quantile series,
  estimated by linear interpolation over the *delta* of the cumulative
  bucket counts -- i.e. the quantiles of what happened **in the
  sampling window**, not since process start.

Each series is a fixed-capacity ring buffer of ``(ts, value)`` points
(:class:`RingBuffer`), so memory stays flat forever: a daemon sampling
every 2 s with the default capacity of 600 points holds 20 minutes of
history per series and not a byte more.  :class:`TimeSeriesSampler`
is the daemon-side background thread driving :meth:`TimeSeriesStore.
sample` on an interval; ``/timeseries`` serves
:meth:`TimeSeriesStore.as_dict`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "RingBuffer",
    "Series",
    "TimeSeriesSampler",
    "TimeSeriesStore",
    "quantile_from_buckets",
]

#: quantiles derived for every histogram instrument
QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)

#: default points retained per series
DEFAULT_CAPACITY = 600


class RingBuffer:
    """Fixed-capacity ``(ts, value)`` ring; oldest points overwritten.

    Appends (the sampler thread) and snapshots (HTTP handler threads)
    are serialised by a per-ring lock, so a scrape mid-append can never
    observe a torn or out-of-order window.
    """

    __slots__ = ("capacity", "_points", "_start", "_count", "dropped", "_lock")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = int(capacity)
        self._points: List[Optional[Tuple[float, float]]] = (
            [None] * self.capacity
        )
        self._start = 0
        self._count = 0
        self.dropped = 0
        self._lock = threading.Lock()

    def append(self, ts: float, value: float) -> None:
        with self._lock:
            if self._count < self.capacity:
                index = (self._start + self._count) % self.capacity
                self._points[index] = (ts, value)
                self._count += 1
            else:
                self._points[self._start] = (ts, value)
                self._start = (self._start + 1) % self.capacity
                self.dropped += 1

    def points(self) -> List[Tuple[float, float]]:
        """Snapshot oldest-first."""
        with self._lock:
            return [
                self._points[(self._start + offset) % self.capacity]  # type: ignore[misc]
                for offset in range(self._count)
            ]

    def last(self) -> Optional[Tuple[float, float]]:
        with self._lock:
            if self._count == 0:
                return None
            return self._points[
                (self._start + self._count - 1) % self.capacity
            ]

    def since(self, ts: float) -> List[Tuple[float, float]]:
        """Points with timestamp >= ``ts`` (SLO evaluation windows)."""
        return [point for point in self.points() if point[0] >= ts]

    def __len__(self) -> int:
        return self._count


class Series:
    """One named ring-buffered series with a kind tag for the UI."""

    __slots__ = ("name", "kind", "unit", "ring")

    def __init__(
        self,
        name: str,
        kind: str = "gauge",
        unit: str = "",
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.name = name
        self.kind = kind  # "rate" | "gauge" | "quantile"
        self.unit = unit
        self.ring = RingBuffer(capacity)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "capacity": self.ring.capacity,
            "dropped": self.ring.dropped,
            "points": [
                [round(ts, 3), _round(value)] for ts, value in self.ring.points()
            ],
        }


def _round(value: float) -> float:
    return round(value, 6)


def quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[float],
    overflow: float,
    q: float,
) -> Optional[float]:
    """Estimate the ``q`` quantile of a fixed-bucket histogram delta.

    Linear interpolation inside the bucket the quantile rank lands in
    (lower edge = previous bound, or 0 for the first bucket); overflow
    observations clamp to the last bound -- the estimate can never
    exceed what the histogram can resolve.  Returns ``None`` for an
    empty window.
    """
    total = sum(counts) + overflow
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0.0
    previous_bound = 0.0
    for bound, count in zip(bounds, counts):
        if count > 0:
            if cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return previous_bound + fraction * (bound - previous_bound)
            cumulative += count
        previous_bound = bound
    return float(bounds[-1])


class TimeSeriesStore:
    """Named ring-buffer series plus the snapshot-delta sampling logic."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._series: Dict[str, Series] = {}
        self._last_snapshot: Optional[Dict[str, Any]] = None
        self._last_ts: Optional[float] = None
        self.samples = 0

    def series(
        self, name: str, kind: str = "gauge", unit: str = ""
    ) -> Series:
        with self._lock:
            entry = self._series.get(name)
            if entry is None:
                entry = Series(name, kind, unit, self.capacity)
                self._series[name] = entry
            return entry

    def get(self, name: str) -> Optional[Series]:
        with self._lock:
            return self._series.get(name)

    def record(
        self, name: str, value: float, ts: Optional[float] = None,
        kind: str = "gauge", unit: str = "",
    ) -> None:
        """Append one point directly (outside the registry sampling)."""
        self.series(name, kind, unit).ring.append(
            time.time() if ts is None else ts, value
        )

    # -- sampling ------------------------------------------------------
    def sample(
        self,
        registry: Optional[MetricsRegistry] = None,
        now: Optional[float] = None,
    ) -> int:
        """Fold one registry snapshot into the series; returns #points.

        The first call only primes the delta state (rates need two
        snapshots); every later call appends one point per derived
        series.
        """
        registry = registry or get_registry()
        now = time.time() if now is None else now
        snapshot = registry.snapshot()
        appended = 0
        previous, previous_ts = self._last_snapshot, self._last_ts
        self._last_snapshot, self._last_ts = snapshot, now
        self.samples += 1

        for name, value in snapshot.get("gauges", {}).items():
            if value is None:
                continue
            self.series(name, kind="gauge").ring.append(now, float(value))
            appended += 1

        if previous is None or previous_ts is None:
            return appended
        dt = now - previous_ts
        if dt <= 0:
            return appended

        previous_counters = previous.get("counters", {})
        for name, value in snapshot.get("counters", {}).items():
            before = previous_counters.get(name, 0)
            rate = max(0.0, (value - before) / dt)
            self.series(f"{name}.rate", kind="rate", unit="/s").ring.append(
                now, rate
            )
            appended += 1

        previous_histograms = previous.get("histograms", {})
        for name, hist in snapshot.get("histograms", {}).items():
            before = previous_histograms.get(name)
            delta_counts, delta_overflow, bounds = _bucket_delta(hist, before)
            count_before = before["count"] if before else 0
            rate = max(0.0, (hist["count"] - count_before) / dt)
            self.series(f"{name}.rate", kind="rate", unit="/s").ring.append(
                now, rate
            )
            appended += 1
            for q in QUANTILES:
                estimate = quantile_from_buckets(
                    bounds, delta_counts, delta_overflow, q
                )
                if estimate is None:
                    continue
                label = f"{name}.p{int(q * 100)}"
                self.series(label, kind="quantile").ring.append(now, estimate)
                appended += 1
        return appended

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(self._series.items())
        return {
            "capacity": self.capacity,
            "samples": self.samples,
            "series": {name: series.as_dict() for name, series in items},
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)


def _bucket_delta(
    hist: Dict[str, Any], before: Optional[Dict[str, Any]]
) -> Tuple[List[float], float, List[float]]:
    """Per-bucket observation counts landed between two snapshots."""
    bounds: List[float] = []
    deltas: List[float] = []
    overflow = 0.0
    previous_buckets = (before or {}).get("buckets", {})
    for key, count in hist["buckets"].items():
        delta = count - previous_buckets.get(key, 0)
        if key.startswith("<="):
            bounds.append(float(key[2:]))
            deltas.append(max(0.0, delta))
        else:  # the ">last" overflow bucket
            overflow = max(0.0, delta)
    return deltas, overflow, bounds


class TimeSeriesSampler:
    """Background thread sampling a registry into a store on an interval."""

    def __init__(
        self,
        store: TimeSeriesStore,
        registry: MetricsRegistry,
        interval: float = 2.0,
        hook=None,
    ):
        self.store = store
        self.registry = registry
        self.interval = max(0.05, float(interval))
        #: optional callable(store, now) run before each sample -- the
        #: daemon injects derived gauges (queue depth, SLO inputs) here
        self.hook = hook
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self, now: Optional[float] = None) -> int:
        now = time.time() if now is None else now
        if self.hook is not None:
            try:
                self.hook(self.store, now)
            except Exception:  # a broken hook must not kill sampling
                pass
        return self.store.sample(self.registry, now)

    def start(self) -> "TimeSeriesSampler":
        if self._thread is not None:
            return self
        self.sample_once()  # prime the delta state immediately
        self._thread = threading.Thread(
            target=self._loop, name="repro-timeseries", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self, final_sample: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample_once()
