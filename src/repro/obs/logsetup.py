"""Logging configuration for the ``repro`` logger hierarchy.

All progress output in the package goes through stdlib loggers under
the ``"repro"`` root (``repro.cli``, ``repro.flow``, ...), so library
users inherit standard ``logging`` behaviour and the CLI maps
``-v`` / ``--log-level`` / ``--quiet`` onto it.

``configure_logging`` is idempotent and re-binds the stream on every
call (handlers it installed before are replaced), so repeated CLI
invocations in one process -- the test suite -- always write to the
*current* ``sys.stdout``/``sys.stderr``.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: marker attribute on handlers this module installed
_MARKER = "_repro_obs_handler"


def resolve_level(name: str) -> int:
    try:
        return _LEVELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r} (choose from {sorted(_LEVELS)})"
        )


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("cli")``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_logging(
    level: str = "info",
    stream: Optional[TextIO] = None,
    fmt: str = "%(message)s",
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger with one stream handler."""
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _MARKER, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _MARKER, True)
    logger.addHandler(handler)
    logger.setLevel(resolve_level(level))
    logger.propagate = False
    return logger
