"""Metrics registry: counters, gauges and fixed-bucket histograms.

The flow records the quantities the paper's evaluation tables are made
of -- region counts and sizes, DDG fan-in, latches per region, delay
ladder selection error, C-element tree depth, cache hits -- as named
instruments in a :class:`MetricsRegistry`::

    from repro.obs import metrics

    metrics.counter("desync.ffsub.replaced").inc(42)
    metrics.histogram("desync.region.size", buckets=(1, 10, 100)).observe(37)

Like tracing, metrics collection is **disabled by default**: the
module-level helpers then return shared no-op instruments, so
instrumented code pays one lookup and one ``if``.  A registry snapshot
serialises to plain JSON (:meth:`MetricsRegistry.snapshot`, exported
by :func:`repro.obs.export.write_metrics`).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (generic count-like data)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)

#: nanosecond-scale preset for simulation latencies -- handshake cycle
#: times, stall durations, delay-element margins -- where sub-ns
#: resolution matters at the bottom and multi-us stalls at the top
NS_BUCKETS: Tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def snapshot(self) -> Optional[float]:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds: an observation lands in the
    first bucket whose bound is >= the value; anything above the last
    bound lands in the overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "overflow",
                 "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs sorted bucket bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            if index == len(self.bounds):
                self.overflow += 1
            else:
                self.counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            buckets = {
                f"<={bound:g}": count
                for bound, count in zip(self.bounds, self.counts)
            }
            buckets[f">{self.bounds[-1]:g}"] = self.overflow
            return {
                "buckets": buckets,
                "count": self.count,
                "sum": round(self.total, 6),
                "mean": round(self.total / self.count, 6) if self.count else 0.0,
                "min": self.min,
                "max": self.max,
            }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = None

    def inc(self, _amount: int = 1) -> None:
        return None

    def set(self, _value: float) -> None:
        return None

    def observe(self, _value: float) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, get-or-create, thread-safe."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._get(name, lambda: Counter(name))
        if not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._get(name, lambda: Gauge(name))
        if not isinstance(instrument, Gauge):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._get(name, lambda: Histogram(name, buckets))
        if not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one JSON-serialisable document."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in items:
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.snapshot()
            elif isinstance(instrument, Histogram):
                out["histograms"][name] = instrument.snapshot()
        return out

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


#: the process-wide active registry; disabled until someone opts in
_active = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    global _active
    _active = registry
    return registry


def reset_registry() -> MetricsRegistry:
    """Restore the disabled default registry (tests, CLI teardown)."""
    return set_registry(MetricsRegistry(enabled=False))


def counter(name: str) -> Counter:
    return _active.counter(name)


def gauge(name: str) -> Gauge:
    return _active.gauge(name)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return _active.histogram(name, buckets)


def enabled() -> bool:
    return _active.enabled
