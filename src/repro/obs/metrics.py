"""Metrics registry: counters, gauges and fixed-bucket histograms.

The flow records the quantities the paper's evaluation tables are made
of -- region counts and sizes, DDG fan-in, latches per region, delay
ladder selection error, C-element tree depth, cache hits -- as named
instruments in a :class:`MetricsRegistry`::

    from repro.obs import metrics

    metrics.counter("desync.ffsub.replaced").inc(42)
    metrics.histogram("desync.region.size", buckets=(1, 10, 100)).observe(37)

Like tracing, metrics collection is **disabled by default**: the
module-level helpers then return shared no-op instruments, so
instrumented code pays one lookup and one ``if``.  A registry snapshot
serialises to plain JSON (:meth:`MetricsRegistry.snapshot`, exported
by :func:`repro.obs.export.write_metrics`).

Instruments may carry **labels** -- ``registry.gauge("repro.jobs",
labels={"state": "queued"})`` -- which keep one logical metric per
dimension value the way Prometheus expects (``repro_jobs{state=
"queued"}``); the snapshot keys labelled instruments as
``name{k="v",...}`` with labels sorted.  :meth:`MetricsRegistry.
describe` attaches a ``# HELP`` string the Prometheus exposition
emits.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (generic count-like data)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)

#: nanosecond-scale preset for simulation latencies -- handshake cycle
#: times, stall durations, delay-element margins -- where sub-ns
#: resolution matters at the bottom and multi-us stalls at the top
NS_BUCKETS: Tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


def render_name(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Instrument key: ``name`` or ``name{k="v",...}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_name(rendered: str) -> Tuple[str, Optional[str]]:
    """The inverse of :func:`render_name`: ``(base, label_body_or_None)``."""
    if rendered.endswith("}") and "{" in rendered:
        base, _, body = rendered.partition("{")
        return base, body[:-1]
    return rendered, None


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def snapshot(self) -> Optional[float]:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds: an observation lands in the
    first bucket whose bound is >= the value; anything above the last
    bound lands in the overflow bucket.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "overflow",
                 "count", "total", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs sorted bucket bounds")
        self.name = name
        self.labels = dict(labels or {})
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            if index == len(self.bounds):
                self.overflow += 1
            else:
                self.counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            buckets = {
                f"<={bound:g}": count
                for bound, count in zip(self.bounds, self.counts)
            }
            buckets[f">{self.bounds[-1]:g}"] = self.overflow
            return {
                "buckets": buckets,
                "count": self.count,
                "sum": round(self.total, 6),
                "mean": round(self.total / self.count, 6) if self.count else 0.0,
                "min": self.min,
                "max": self.max,
            }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = None

    def inc(self, _amount: int = 1) -> None:
        return None

    def set(self, _value: float) -> None:
        return None

    def observe(self, _value: float) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, get-or-create, thread-safe."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}
        self._help: Dict[str, str] = {}

    def _get(self, key: str, factory):
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            return instrument

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = render_name(name, labels)
        instrument = self._get(key, lambda: Counter(name, labels))
        if not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def gauge(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = render_name(name, labels)
        instrument = self._get(key, lambda: Gauge(name, labels))
        if not isinstance(instrument, Gauge):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = render_name(name, labels)
        instrument = self._get(key, lambda: Histogram(name, buckets, labels))
        if not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is a {type(instrument).__name__}")
        return instrument

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` string to a (base, unlabelled) metric name."""
        with self._lock:
            self._help[name] = help_text

    def help_texts(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._help)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as one JSON-serialisable document."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in items:
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.snapshot()
            elif isinstance(instrument, Histogram):
                out["histograms"][name] = instrument.snapshot()
        return out

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


#: the process-wide active registry; disabled until someone opts in
_active = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    global _active
    _active = registry
    return registry


def reset_registry() -> MetricsRegistry:
    """Restore the disabled default registry (tests, CLI teardown)."""
    return set_registry(MetricsRegistry(enabled=False))


def counter(name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
    return _active.counter(name, labels)


def gauge(name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
    return _active.gauge(name, labels)


def histogram(
    name: str,
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    labels: Optional[Dict[str, str]] = None,
) -> Histogram:
    return _active.histogram(name, buckets, labels)


def enabled() -> bool:
    return _active.enabled
