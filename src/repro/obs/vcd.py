"""Value Change Dump (VCD) waveform writer and reader.

The writer turns the simulator's net-change stream into an IEEE-1364
VCD file any waveform viewer (GTKWave, Surfer, ...) opens directly::

    from repro.obs import VcdWriter

    writer = VcdWriter("run.vcd")
    writer.attach(sim, include=["req_*", "ack_*", "dout*"])
    testbench.run_items(32)
    writer.close()

``attach`` subscribes through :meth:`Simulator.watch_nets` with a
*selective* net list, so unwatched nets cost nothing in the hot loop
and the stream is identical under the ``compiled`` and ``reference``
kernels.  Net names are mapped into hierarchical ``$scope`` blocks by
splitting on ``.`` (override with ``scope_fn``) and bus bits like
``dout[3]`` become indexed ``$var`` references.

:func:`read_vcd` is the matching minimal parser -- enough to
round-trip the writer's output in tests and to rebuild switching
activity for the power estimator (``repro.power.activity_from_vcd``).
Four-state values map as ``None`` <-> ``x``.
"""

from __future__ import annotations

import fnmatch
import re
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

__all__ = ["VcdWriter", "read_vcd", "vcd_id"]

#: printable id-code alphabet the VCD spec allows (ASCII 33..126)
_ID_FIRST = 33
_ID_SPAN = 94

_BIT_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


def vcd_id(index: int) -> str:
    """The ``index``-th identifier code: ``!``, ``"``, ... base-94."""
    if index < 0:
        raise ValueError("identifier index must be >= 0")
    code = chr(_ID_FIRST + index % _ID_SPAN)
    index //= _ID_SPAN
    while index:
        index -= 1
        code = chr(_ID_FIRST + index % _ID_SPAN) + code
        index //= _ID_SPAN
    return code


def _default_scope(net: str) -> Tuple[Tuple[str, ...], str]:
    """Split hierarchical names on ``.``: ``a.b.q`` -> ((a, b), q)."""
    parts = net.split(".")
    return tuple(parts[:-1]), parts[-1]


def _value_char(value: Any) -> str:
    if value is None:
        return "x"
    return "1" if value else "0"


class VcdWriter:
    """Streaming VCD writer fed from ``Simulator.watch_nets``.

    The file is written incrementally: the header the first time a
    change (or :meth:`dump_values`) arrives, one ``#time`` section per
    distinct timestamp after that.  Times are nanoseconds scaled to the
    1 ps timescale, so sub-ns gate delays stay exact.
    """

    #: one VCD tick per this many nanoseconds
    TIMESCALE = "1ps"
    _TICKS_PER_NS = 1000

    def __init__(
        self,
        path: str,
        top: str = "top",
        date: str = "",
        version: str = "repro.obs.vcd",
    ):
        self.path = path
        self.top = top
        self.date = date
        self.version = version
        self._handle = open(path, "w")
        self._ids: Dict[str, str] = {}
        self._last: Dict[str, Any] = {}
        self._time: Optional[int] = None
        self._header_done = False
        self._closed = False
        self._scope_fn: Callable[[str], Tuple[Tuple[str, ...], str]] = (
            _default_scope
        )
        self._simulator = None

    # ------------------------------------------------------------------
    # signal declaration
    # ------------------------------------------------------------------
    def add_signals(self, nets: Iterable[str]) -> List[str]:
        """Declare nets (before the header is written). Returns added."""
        if self._header_done:
            raise RuntimeError("VCD header already written; declare first")
        added = []
        for net in nets:
            if net not in self._ids:
                self._ids[net] = vcd_id(len(self._ids))
                added.append(net)
        return added

    @staticmethod
    def select_nets(
        names: Iterable[str],
        include: Optional[Sequence[str]] = None,
        exclude: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Filter net names with fnmatch-style include/exclude globs."""
        selected = []
        for name in names:
            if include and not any(
                fnmatch.fnmatchcase(name, pat) for pat in include
            ):
                continue
            if exclude and any(
                fnmatch.fnmatchcase(name, pat) for pat in exclude
            ):
                continue
            selected.append(name)
        return selected

    def attach(
        self,
        simulator,
        nets: Optional[Iterable[str]] = None,
        include: Optional[Sequence[str]] = None,
        exclude: Optional[Sequence[str]] = None,
        scope_fn: Optional[
            Callable[[str], Tuple[Tuple[str, ...], str]]
        ] = None,
    ) -> List[str]:
        """Subscribe to a simulator and dump the current state.

        ``nets`` takes the exact list; otherwise every module net is a
        candidate, filtered by ``include``/``exclude`` glob patterns
        (constant tie nets are always dropped).  Writes the header and
        a ``$dumpvars`` section with the nets' current values, then
        streams changes until :meth:`close`.
        """
        if scope_fn is not None:
            self._scope_fn = scope_fn
        if nets is None:
            candidates = [
                name
                for name, net in simulator.module.nets.items()
                if not getattr(net, "is_constant", False)
            ]
            selected = self.select_nets(candidates, include, exclude)
        else:
            selected = self.select_nets(nets, include, exclude)
        self.top = simulator.module.name or self.top
        self.add_signals(selected)
        self._simulator = simulator
        self.dump_values(
            simulator.now, {n: simulator.net_values.get(n) for n in selected}
        )
        simulator.watch_nets(self.record, nets=selected)
        return selected

    # ------------------------------------------------------------------
    # header
    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        write = self._handle.write
        if self.date:
            write(f"$date\n    {self.date}\n$end\n")
        write(f"$version\n    {self.version}\n$end\n")
        write(f"$timescale {self.TIMESCALE} $end\n")
        # group declarations by scope path, emitting nested $scope blocks
        by_scope: Dict[Tuple[str, ...], List[Tuple[str, str]]] = {}
        for net, code in self._ids.items():
            scope, leaf = self._scope_fn(net)
            by_scope.setdefault(scope, []).append((leaf, code))
        write(f"$scope module {self.top} $end\n")
        current: Tuple[str, ...] = ()
        for scope in sorted(by_scope):
            # unwind to the common prefix, then descend
            common = 0
            while (
                common < len(current)
                and common < len(scope)
                and current[common] == scope[common]
            ):
                common += 1
            for _ in range(len(current) - common):
                write("$upscope $end\n")
            for name in scope[common:]:
                write(f"$scope module {name} $end\n")
            current = scope
            for leaf, code in sorted(by_scope[scope]):
                match = _BIT_RE.match(leaf)
                if match:
                    reference = (
                        f"{match.group('base')} [{match.group('index')}]"
                    )
                else:
                    reference = leaf
                write(f"$var wire 1 {code} {reference} $end\n")
        for _ in range(len(current)):
            write("$upscope $end\n")
        write("$upscope $end\n")
        write("$enddefinitions $end\n")
        self._header_done = True

    # ------------------------------------------------------------------
    # change stream
    # ------------------------------------------------------------------
    def _emit_time(self, time_ns: float) -> None:
        tick = int(round(time_ns * self._TICKS_PER_NS))
        if self._time is None or tick > self._time:
            self._handle.write(f"#{tick}\n")
            self._time = tick

    def dump_values(self, time_ns: float, values: Dict[str, Any]) -> None:
        """Write a ``$dumpvars`` snapshot (declared nets only)."""
        if not self._header_done:
            self._write_header()
        self._emit_time(time_ns)
        write = self._handle.write
        write("$dumpvars\n")
        for net, code in self._ids.items():
            value = values.get(net)
            self._last[net] = value
            write(f"{_value_char(value)}{code}\n")
        write("$end\n")

    def record(self, time_ns: float, net: str, value: Any) -> None:
        """Record one net change (the ``watch_nets`` callback)."""
        code = self._ids.get(net)
        if code is None:
            return
        if self._last.get(net, _MISSING) == value:
            return
        if not self._header_done:
            self._write_header()
        self._emit_time(time_ns)
        self._last[net] = value
        self._handle.write(f"{_value_char(value)}{code}\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._closed:
            return
        if not self._header_done:
            self._write_header()
        if self._simulator is not None and self._time is not None:
            final = int(round(self._simulator.now * self._TICKS_PER_NS))
            if final > self._time:
                self._handle.write(f"#{final}\n")
                self._time = final
        self._closed = True
        self._handle.close()

    def __enter__(self) -> "VcdWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Missing:
    __slots__ = ()


_MISSING = _Missing()

_TIMESCALE_NS = {"s": 1e9, "ms": 1e6, "us": 1e3, "ns": 1.0, "ps": 1e-3,
                 "fs": 1e-6}


def read_vcd(path: str) -> Dict[str, Any]:
    """Parse a (scalar-signal) VCD file.

    Returns a dict with:

    - ``timescale_ns`` -- nanoseconds per ``#`` tick,
    - ``signals`` -- hierarchical name per id code,
    - ``changes`` -- ``[(time_ns, name, value)]`` after the initial
      ``$dumpvars`` block, in file order (``None`` for ``x``/``z``),
    - ``initial`` -- the ``$dumpvars`` snapshot,
    - ``values`` -- final value per signal,
    - ``end_time_ns`` -- the last timestamp seen.
    """
    timescale_ns = 1e-3
    signals: Dict[str, str] = {}  # id code -> full name
    scope: List[str] = []
    changes: List[Tuple[float, str, Any]] = []
    initial: Dict[str, Any] = {}
    values: Dict[str, Any] = {}
    time_ns = 0.0
    end_time_ns = 0.0
    in_dumpvars = False
    header = True

    def decode(char: str) -> Any:
        if char == "0":
            return 0
        if char == "1":
            return 1
        return None  # x / z / u

    with open(path) as handle:
        tokens = handle.read().split()
    i = 0
    n = len(tokens)
    while i < n:
        token = tokens[i]
        if header:
            if token == "$timescale":
                spec = ""
                i += 1
                while i < n and tokens[i] != "$end":
                    spec += tokens[i]
                    i += 1
                match = re.match(r"(\d+)\s*(\w+)", spec)
                if not match:
                    raise ValueError(f"bad $timescale {spec!r} in {path}")
                unit = _TIMESCALE_NS.get(match.group(2))
                if unit is None:
                    raise ValueError(f"unknown timescale unit in {spec!r}")
                timescale_ns = int(match.group(1)) * unit
            elif token == "$scope":
                # $scope module <name> $end
                scope.append(tokens[i + 2])
                i += 3
            elif token == "$upscope":
                scope.pop()
                i += 1
            elif token == "$var":
                # $var wire 1 <code> <reference...> $end
                code = tokens[i + 3]
                i += 4
                reference: List[str] = []
                while i < n and tokens[i] != "$end":
                    reference.append(tokens[i])
                    i += 1
                name = "".join(reference)  # "dout [3]" -> "dout[3]"
                if len(scope) > 1:  # drop the top module scope
                    name = ".".join(scope[1:] + [name])
                signals[code] = name
            elif token == "$enddefinitions":
                header = False
            i += 1
            continue
        if token.startswith("#"):
            time_ns = int(token[1:]) * timescale_ns
            end_time_ns = max(end_time_ns, time_ns)
            i += 1
            continue
        if token == "$dumpvars":
            in_dumpvars = True
            i += 1
            continue
        if token == "$end":
            in_dumpvars = False
            i += 1
            continue
        if token.startswith("$"):  # $comment etc. -- skip to $end
            i += 1
            while i < n and tokens[i] != "$end":
                i += 1
            i += 1
            continue
        value = decode(token[0])
        code = token[1:]
        name = signals.get(code)
        if name is None:
            raise ValueError(f"undeclared VCD id code {code!r} in {path}")
        if in_dumpvars:
            initial[name] = value
        else:
            changes.append((time_ns, name, value))
        values[name] = value
        i += 1
    return {
        "timescale_ns": timescale_ns,
        "signals": dict(sorted(signals.items())),
        "names": sorted(set(signals.values())),
        "initial": initial,
        "changes": changes,
        "values": values,
        "end_time_ns": end_time_ns,
    }
