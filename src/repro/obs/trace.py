"""Hierarchical span tracer for the desynchronization flow.

A *span* is one timed section of work -- an engine stage, a grouping
pass, a single STA propagation -- opened as a context manager::

    from repro.obs import trace

    with trace.span("grouping", instances=1200) as sp:
        ...
        sp.set("regions", 7)

Spans nest: each thread keeps its own span stack, so a span opened
while another is active on the same thread becomes its child, while
spans opened on engine worker threads become roots of their thread's
subtree.  Finished spans accumulate on the tracer and are exported by
:mod:`repro.obs.export` as Chrome trace-event JSON (chrome://tracing,
Perfetto) or a plain-text summary.

Tracing is **disabled by default** and designed to be near-zero-cost
in that state: ``trace.span(...)`` on a disabled tracer returns a
shared no-op span without allocating, so instrumented hot paths pay
one attribute lookup and one ``if``.

A tracer can mirror finished spans into a
:class:`repro.engine.journal.RunJournal` (duck-typed via ``record``)
so the JSONL run journal and the trace tree tell one story.

Two daemon-grade extensions sit on top of the one-shot model:

- **bounded retention** -- ``Tracer(max_spans=N)`` keeps only the
  newest N finished spans (a ring buffer) and counts the rest in
  :attr:`Tracer.dropped`, so ``--trace`` on a long-lived process
  cannot grow memory without bound.  The default (``max_spans=None``)
  keeps every span, byte-identical to the original behaviour.
- **thread-scoped activation** -- :func:`scoped` installs a tracer for
  the current thread only, overriding the process-wide singleton, so a
  service daemon can give every job its own tracer (tagged with the
  job's ``trace_id``) without jobs seeing each other's spans.  The
  engine re-activates the scope on its pool threads, so parallel
  stages still land in the right job's tracer.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Union


class Span:
    """One timed, attributed section of work (a context manager)."""

    __slots__ = (
        "name",
        "attrs",
        "start",
        "end",
        "parent",
        "depth",
        "thread_id",
        "thread_name",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.parent: Optional["Span"] = None
        self.depth = 0
        self.thread_id = 0
        self.thread_name = ""

    @property
    def duration(self) -> float:
        """Wall time in seconds (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    @property
    def path(self) -> str:
        """Slash-joined ancestry, e.g. ``stage:group/grouping``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def set(self, key: str, value: Any) -> "Span":
        """Attach one key/value attribute; returns the span."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        stack = self._tracer._thread_stack()
        if stack:
            self.parent = stack[-1]
            self.depth = self.parent.depth + 1
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.end = time.perf_counter()
        if exc is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._thread_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, depth={self.depth})"


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set(self, _key: str, _value: Any) -> "_NullSpan":
        return self


#: the singleton every disabled ``span()`` call returns
NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe collector of hierarchical spans.

    ``journal`` may be any object with a ``record(event, **fields)``
    method (a :class:`repro.engine.journal.RunJournal`): every finished
    span is then mirrored as a ``"span"`` journal event.

    ``max_spans`` bounds finished-span retention: beyond it the oldest
    spans are dropped (and counted in :attr:`dropped`) so a long-lived
    daemon's per-job tracers stay flat in memory.  ``trace_id`` tags
    the tracer (and every exported trace event) with the identity of
    the work it belongs to -- the service daemon uses the job's trace
    ID here so spans, journal lines and HTTP tickets correlate.
    """

    def __init__(
        self,
        enabled: bool = True,
        journal: Optional[Any] = None,
        max_spans: Optional[int] = None,
        trace_id: Optional[str] = None,
    ):
        self.enabled = enabled
        self.journal = journal
        self.trace_id = trace_id
        #: perf_counter -> wall-clock epoch offset, for absolute export
        self.epoch = time.time() - time.perf_counter()
        self._lock = threading.Lock()
        self.max_spans = max_spans
        self.dropped = 0
        self._finished: Union[List[Span], Deque[Span]]
        if max_spans is None:
            self._finished = []
        else:
            self._finished = deque(maxlen=max(1, int(max_spans)))
        self._local = threading.local()

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a new span (context manager); no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _thread_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            if (
                self.max_spans is not None
                and len(self._finished) == self._finished.maxlen  # type: ignore[union-attr]
            ):
                self.dropped += 1
            self._finished.append(span)
        if self.journal is not None:
            # spans are high-rate and loss-tolerant; skip the per-line
            # flush (lifecycle events still flush, carrying these along)
            self.journal.record(
                "span",
                _flush=False,
                name=span.name,
                path=span.path,
                duration=round(span.duration, 6),
                depth=span.depth,
                thread=span.thread_name,
                attrs=span.attrs or None,
            )

    # -- inspection ----------------------------------------------------
    def finished(self) -> List[Span]:
        """Snapshot of finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def roots(self) -> List[Span]:
        return [span for span in self.finished() if span.parent is None]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


#: the process-wide active tracer; disabled until someone opts in
_active = Tracer(enabled=False)

#: per-thread tracer override (the service daemon's per-job scope)
_scope = threading.local()


def get_tracer() -> Tracer:
    """The effective tracer: the thread's scoped one, else the global."""
    scoped_tracer = getattr(_scope, "tracer", None)
    return scoped_tracer if scoped_tracer is not None else _active


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _active
    _active = tracer
    return tracer


def reset_tracer() -> Tracer:
    """Restore the disabled default tracer (tests, CLI teardown)."""
    return set_tracer(Tracer(enabled=False))


@contextlib.contextmanager
def scoped(tracer: Optional[Tracer]):
    """Activate ``tracer`` for the current thread only.

    Everything this thread records through the module-level
    :func:`span` helper while the context is open lands in ``tracer``
    instead of the process-wide singleton; other threads are
    unaffected.  ``None`` is a no-op scope (useful for call sites that
    may or may not have a per-job tracer).  Scopes nest and restore the
    previous override on exit.
    """
    if tracer is None:
        yield None
        return
    previous = getattr(_scope, "tracer", None)
    _scope.tracer = tracer
    try:
        yield tracer
    finally:
        _scope.tracer = previous


def span(name: str, **attrs: Any):
    """Open a span on the effective tracer (the instrumentation entry)."""
    tracer = getattr(_scope, "tracer", None)
    if tracer is None:
        tracer = _active
    if not tracer.enabled:
        return NULL_SPAN
    return Span(tracer, name, attrs)


def enabled() -> bool:
    return get_tracer().enabled
