"""Opt-in deterministic per-stage profiler for the flow engine.

Where :mod:`repro.obs.trace` answers *when* each stage ran and for how
long, this module answers *where the time and memory went inside it*.
A :class:`Profiler` wraps each stage callable the engine executes:

- **cProfile** captures a deterministic (not sampled) call-graph of
  the stage body.  The raw ``pstats``-shaped table is kept per stage
  so :mod:`repro.obs.export` can fold it into speedscope JSON and
  collapsed-stack text, and a pre-digested *hot-function table* (top-N
  by self time) is available without post-processing.
- **tracemalloc** records the allocation delta and peak across the
  stage (started lazily and refcounted, so nothing is traced unless a
  profiled stage is actually in flight).
- **introspection counters** let kernels report domain numbers into
  the profile of whichever stage is running on the current thread --
  the simulator reports events processed and queue-depth high-water,
  the Monte-Carlo batch kernel reports lane occupancy -- via the
  module-level :func:`add_counters` / :func:`peak_counters` hooks.

Profiling follows the tracer's activation model exactly: a disabled
process-wide singleton, :func:`set_profiler` / :func:`reset_profiler`
for one-shot CLI opt-in, and :func:`scoped` for thread-scoped per-job
activation in the service daemon.  The engine captures the effective
profiler at run entry and re-enters the scope on its pool threads, so
parallel stages attribute to the right job's profile.

The disabled fast path is one attribute lookup and one ``if`` per
stage (and per kernel counter flush) -- the ``bench_obs.py`` A/B gate
holds the measured disabled-path overhead on the warm DLX flow under
2%.

cProfile is per-thread (``sys.setprofile`` has thread-local effect),
so concurrently profiled stages on different pool threads do not
fight over one global profiler.  tracemalloc *is* process-global:
with parallel stages the per-stage peak/delta are attributed to the
stage that observed them and are approximate under concurrency; the
tables stay exact in the serial executor, which is the deterministic
profiling configuration.
"""

from __future__ import annotations

import contextlib
import cProfile
import threading
import time
import tracemalloc
from typing import Any, Dict, List, Optional, Tuple

#: how many hot functions each stage keeps in its digest table
DEFAULT_TOP_N = 15

#: refcount of in-flight memory-profiled stages (tracemalloc is global)
_mem_lock = threading.Lock()
_mem_users = 0
_mem_started_here = False


def _mem_acquire() -> None:
    global _mem_users, _mem_started_here
    with _mem_lock:
        if _mem_users == 0 and not tracemalloc.is_tracing():
            tracemalloc.start()
            _mem_started_here = True
        _mem_users += 1


def _mem_release() -> None:
    global _mem_users, _mem_started_here
    with _mem_lock:
        _mem_users = max(0, _mem_users - 1)
        if _mem_users == 0 and _mem_started_here:
            tracemalloc.stop()
            _mem_started_here = False


def _func_label(func: Tuple[str, int, str]) -> str:
    """``(file, line, name)`` -> a stable human-readable frame label."""
    filename, lineno, name = func
    if filename == "~":  # builtins in pstats convention
        return name
    short = filename
    for marker in ("/site-packages/", "/src/"):
        idx = filename.rfind(marker)
        if idx >= 0:
            short = filename[idx + len(marker):]
            break
    else:
        parts = filename.rsplit("/", 2)
        if len(parts) > 2:
            short = "/".join(parts[-2:])
    return f"{short}:{lineno}:{name}"


class StageProfile:
    """Everything captured for one profiled stage execution."""

    __slots__ = (
        "name",
        "graph",
        "thread_name",
        "wall_s",
        "cpu_s",
        "calls",
        "primitive_calls",
        "mem_peak_kb",
        "mem_delta_kb",
        "counters",
        "hot",
        "overhead_s",
        "raw_stats",
        "attrs",
    )

    def __init__(self, name: str, graph: str = "", **attrs: Any):
        self.name = name
        self.graph = graph
        self.thread_name = ""
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.calls = 0
        self.primitive_calls = 0
        self.mem_peak_kb: Optional[float] = None
        self.mem_delta_kb: Optional[float] = None
        self.counters: Dict[str, float] = {}
        #: top-N functions by self time: dicts with func/calls/self_s/cum_s
        self.hot: List[Dict[str, Any]] = []
        #: profiler machinery time around (not inside) the stage body
        self.overhead_s = 0.0
        #: pstats-shaped dict: func -> (cc, nc, tt, ct, callers)
        self.raw_stats: Dict[Tuple[str, int, str], Any] = {}
        self.attrs = attrs

    # counters ----------------------------------------------------------
    def add_counter(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def peak_counter(self, name: str, value: float) -> None:
        current = self.counters.get(name)
        if current is None or value > current:
            self.counters[name] = value

    # digestion ---------------------------------------------------------
    def digest(self, profile: cProfile.Profile, top_n: int) -> None:
        """Fold a finished cProfile into the hot table + raw stats."""
        import pstats

        stats = pstats.Stats(profile)
        self.raw_stats = stats.stats  # type: ignore[attr-defined]
        total_tt = 0.0
        calls = 0
        primitive = 0
        rows = []
        for func, (cc, nc, tt, ct, _callers) in self.raw_stats.items():
            total_tt += tt
            calls += nc
            primitive += cc
            rows.append((tt, ct, nc, func))
        rows.sort(key=lambda row: (-row[0], -row[1], row[3]))
        self.cpu_s = total_tt
        self.calls = calls
        self.primitive_calls = primitive
        self.hot = [
            {
                "func": _func_label(func),
                "calls": nc,
                "self_s": round(tt, 6),
                "cum_s": round(ct, 6),
            }
            for tt, ct, nc, func in rows[:top_n]
        ]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "stage": self.name,
            "graph": self.graph,
            "thread": self.thread_name,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "calls": self.calls,
            "primitive_calls": self.primitive_calls,
            "overhead_s": round(self.overhead_s, 6),
            "hot": self.hot,
        }
        if self.mem_peak_kb is not None:
            out["mem_peak_kb"] = round(self.mem_peak_kb, 1)
        if self.mem_delta_kb is not None:
            out["mem_delta_kb"] = round(self.mem_delta_kb, 1)
        if self.counters:
            out["counters"] = {
                k: self.counters[k] for k in sorted(self.counters)
            }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Profiler:
    """Thread-safe collector of per-stage profiles.

    ``memory=False`` skips tracemalloc (cheaper, CPU-only profiles).
    ``max_profiles`` bounds retention the same way ``Tracer(max_spans)``
    does: beyond it the oldest stage profiles are dropped and counted
    in :attr:`dropped`, so a long-lived daemon stays flat in memory.
    ``profile_id`` tags the profiler with the identity of the work it
    belongs to (the service daemon uses the job's trace ID).
    """

    def __init__(
        self,
        enabled: bool = True,
        top_n: int = DEFAULT_TOP_N,
        memory: bool = True,
        max_profiles: Optional[int] = None,
        profile_id: Optional[str] = None,
    ):
        self.enabled = enabled
        self.top_n = max(1, int(top_n))
        self.memory = memory
        self.max_profiles = max_profiles
        self.profile_id = profile_id
        self.dropped = 0
        #: total profiler machinery seconds across all stages
        self.overhead_s = 0.0
        self._lock = threading.Lock()
        self._profiles: List[StageProfile] = []
        self._local = threading.local()

    # -- recording -------------------------------------------------------
    @contextlib.contextmanager
    def stage(self, name: str, graph: str = "", **attrs: Any):
        """Profile one stage body (context manager).

        Yields the :class:`StageProfile` being captured (or ``None``
        when the profiler is disabled).  Exceptions propagate; the
        partial profile is still recorded with an ``error`` attribute.
        """
        if not self.enabled:
            yield None
            return
        t_setup = time.perf_counter()
        record = StageProfile(name, graph, **attrs)
        record.thread_name = threading.current_thread().name
        stack = self._thread_stack()
        nested = bool(stack)
        stack.append(record)
        mem_before = None
        if self.memory:
            _mem_acquire()
            tracemalloc.reset_peak()
            mem_before = tracemalloc.get_traced_memory()[0]
        profile: Optional[cProfile.Profile] = None
        if not nested:
            # cProfile is exclusive per thread; a stage nested inside an
            # already-profiled stage (a sub-flow) is timed, not re-profiled
            profile = cProfile.Profile()
        error: Optional[BaseException] = None
        start = time.perf_counter()
        record.overhead_s += start - t_setup
        if profile is not None:
            try:
                profile.enable()
            except ValueError:  # another tool already profiling this thread
                profile = None
                record.attrs["cprofile"] = "unavailable"
        try:
            yield record
        except BaseException as exc:
            error = exc
            raise
        finally:
            if profile is not None:
                profile.disable()
            end = time.perf_counter()
            record.wall_s = end - start
            if self.memory:
                current, peak = tracemalloc.get_traced_memory()
                if mem_before is not None:
                    record.mem_delta_kb = (current - mem_before) / 1024.0
                record.mem_peak_kb = peak / 1024.0
                _mem_release()
            if error is not None:
                record.attrs["error"] = (
                    f"{type(error).__name__}: {error}"
                )
            if profile is not None:
                record.digest(profile, self.top_n)
            if stack and stack[-1] is record:
                stack.pop()
            teardown = time.perf_counter() - end
            record.overhead_s += teardown
            with self._lock:
                self.overhead_s += record.overhead_s
                self._profiles.append(record)
                if (
                    self.max_profiles is not None
                    and len(self._profiles) > self.max_profiles
                ):
                    drop = len(self._profiles) - self.max_profiles
                    del self._profiles[:drop]
                    self.dropped += drop

    def _thread_stack(self) -> List[StageProfile]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_stage(self) -> Optional[StageProfile]:
        """The stage profile being captured on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return None

    # -- counters ---------------------------------------------------------
    def add_counters(self, **counters: float) -> None:
        record = self.current_stage()
        if record is not None:
            for name, value in counters.items():
                record.add_counter(name, value)

    def peak_counters(self, **counters: float) -> None:
        record = self.current_stage()
        if record is not None:
            for name, value in counters.items():
                record.peak_counter(name, value)

    # -- inspection -------------------------------------------------------
    def profiles(self) -> List[StageProfile]:
        """Snapshot of finished stage profiles, in completion order."""
        with self._lock:
            return list(self._profiles)

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def overhead_estimate(self) -> Dict[str, float]:
        """Profiler self-cost summary: machinery seconds vs profiled wall.

        ``machinery_s`` is the time spent *around* stage bodies
        (enable/disable, stats digestion, tracemalloc bookkeeping);
        ``fraction`` relates it to the profiled wall time.  The
        deterministic cProfile tax *inside* the body (every call
        dispatched through the profiler) is not separable from the
        workload and is not included -- profiles report where time
        goes, not absolute seconds; ratio metrics stay the perf
        contract (see DESIGN).
        """
        profiles = self.profiles()
        wall = sum(p.wall_s for p in profiles)
        machinery = self.overhead_s
        return {
            "machinery_s": round(machinery, 6),
            "profiled_wall_s": round(wall, 6),
            "fraction": round(machinery / wall, 6) if wall > 0 else 0.0,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped profile document (sans raw call graphs)."""
        profiles = self.profiles()
        return {
            "profile_id": self.profile_id,
            "stages": [p.to_dict() for p in profiles],
            "stage_count": len(profiles),
            "dropped": self.dropped,
            "overhead": self.overhead_estimate(),
        }


#: the process-wide active profiler; disabled until someone opts in
_active = Profiler(enabled=False)

#: per-thread profiler override (the service daemon's per-job scope)
_scope = threading.local()


def get_profiler() -> Profiler:
    """The effective profiler: the thread's scoped one, else the global."""
    scoped_profiler = getattr(_scope, "profiler", None)
    return scoped_profiler if scoped_profiler is not None else _active


def set_profiler(profiler: Profiler) -> Profiler:
    """Install ``profiler`` as the process-wide active profiler."""
    global _active
    _active = profiler
    return profiler


def reset_profiler() -> Profiler:
    """Restore the disabled default profiler (tests, CLI teardown)."""
    return set_profiler(Profiler(enabled=False))


@contextlib.contextmanager
def scoped(profiler: Optional[Profiler]):
    """Activate ``profiler`` for the current thread only.

    Mirrors :func:`repro.obs.trace.scoped`: ``None`` is a no-op scope,
    scopes nest, and the previous override is restored on exit.
    """
    if profiler is None:
        yield None
        return
    previous = getattr(_scope, "profiler", None)
    _scope.profiler = profiler
    try:
        yield profiler
    finally:
        _scope.profiler = previous


def stage(name: str, graph: str = "", **attrs: Any):
    """Profile a stage on the effective profiler (engine entry point)."""
    profiler = getattr(_scope, "profiler", None)
    if profiler is None:
        profiler = _active
    return profiler.stage(name, graph, **attrs)


def enabled() -> bool:
    """Disabled fast path: one attribute lookup plus one ``if``."""
    profiler = getattr(_scope, "profiler", None)
    if profiler is None:
        profiler = _active
    return profiler.enabled


def add_counters(**counters: float) -> None:
    """Sum kernel counters into the current thread's active stage.

    No-op (one lookup, one ``if``) when profiling is disabled or no
    stage is being captured on this thread.
    """
    profiler = getattr(_scope, "profiler", None)
    if profiler is None:
        profiler = _active
    if not profiler.enabled:
        return
    profiler.add_counters(**counters)


def peak_counters(**counters: float) -> None:
    """High-water kernel counters (max-merge) for the active stage."""
    profiler = getattr(_scope, "profiler", None)
    if profiler is None:
        profiler = _active
    if not profiler.enabled:
        return
    profiler.peak_counters(**counters)
