"""Structural design builder: gate-level "RTL" construction helpers.

The paper's test designs are synthesized from Verilog HDL; since no
synthesis tool ships offline, the design generators build post-synthesis
gate-level netlists directly with this builder -- registers, adders,
muxes, comparators mapped straight onto library cells.  The result is
exactly what drdesync expects: a flat, technology-mapped netlist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..liberty.model import Library
from ..liberty.techmap import GateChooser
from ..netlist.core import Module, PortDirection


class Builder:
    """Convenience layer for emitting gates into a module."""

    def __init__(self, module: Module, library: Library, clock: str = "clk"):
        self.module = module
        self.library = library
        self.chooser = GateChooser(library)
        self.clock = clock
        module.ensure_net(clock)

    # ------------------------------------------------------------------
    # ports and buses
    # ------------------------------------------------------------------
    def input_port(self, name: str, width: int = 1) -> List[str]:
        if width == 1:
            self.module.add_port(name, PortDirection.INPUT)
            return [name]
        port = self.module.add_port(
            name, PortDirection.INPUT, msb=width - 1, lsb=0
        )
        return list(reversed(port.bit_names()))  # LSB first

    def output_port(self, name: str, width: int = 1) -> List[str]:
        if width == 1:
            self.module.add_port(name, PortDirection.OUTPUT)
            return [name]
        port = self.module.add_port(
            name, PortDirection.OUTPUT, msb=width - 1, lsb=0
        )
        return list(reversed(port.bit_names()))

    def bus(self, name: str, width: int) -> List[str]:
        """Internal bus nets named ``name[i]``, LSB first."""
        nets = [f"{name}[{i}]" for i in range(width)]
        for net in nets:
            self.module.ensure_net(net)
        return nets

    def const(self, value: int, width: int) -> List[str]:
        bits = []
        for i in range(width):
            bits.append(self.module.constant_net((value >> i) & 1).name)
        return bits

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    def gate(self, role: str, inputs: Sequence[str], output: Optional[str] = None,
             name: Optional[str] = None) -> str:
        cell, pins, out_pin = self.chooser.gate(role)
        if output is None:
            output = self.module.new_name("n")
            self.module.ensure_net(output)
        inst_name = name or self.module.new_name(f"u_{role}")
        bindings = dict(zip(pins, inputs))
        bindings[out_pin] = output
        self.module.add_instance(inst_name, cell, bindings)
        return output

    def inv(self, a: str, output: Optional[str] = None) -> str:
        return self.gate("inv", [a], output)

    def and2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("and2", [a, b], output)

    def or2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("or2", [a, b], output)

    def xor2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("xor2", [a, b], output)

    def nand2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.gate("nand2", [a, b], output)

    def mux2(self, a: str, b: str, sel: str, output: Optional[str] = None) -> str:
        """2:1 mux: ``sel ? b : a``."""
        return self.gate("mux2", [a, b, sel], output)

    # ------------------------------------------------------------------
    # word-level operators (LSB-first bit lists)
    # ------------------------------------------------------------------
    def mux_bus(
        self, a: Sequence[str], b: Sequence[str], sel: str,
        name: Optional[str] = None,
    ) -> List[str]:
        prefix = name or self.module.new_name("mx")
        return [
            self.mux2(bit_a, bit_b, sel, f"{prefix}[{i}]")
            for i, (bit_a, bit_b) in enumerate(zip(a, b))
        ]

    def invert_bus(self, a: Sequence[str], name: Optional[str] = None) -> List[str]:
        prefix = name or self.module.new_name("nb")
        return [self.inv(bit, f"{prefix}[{i}]") for i, bit in enumerate(a)]

    def bitwise(
        self, role: str, a: Sequence[str], b: Sequence[str],
        name: Optional[str] = None,
    ) -> List[str]:
        prefix = name or self.module.new_name("bw")
        return [
            self.gate(role, [bit_a, bit_b], f"{prefix}[{i}]")
            for i, (bit_a, bit_b) in enumerate(zip(a, b))
        ]

    def adder(
        self,
        a: Sequence[str],
        b: Sequence[str],
        carry_in: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Tuple[List[str], str]:
        """Ripple-carry adder from FA cells; returns (sum bits, carry out)."""
        prefix = name or self.module.new_name("add")
        carry = carry_in or self.module.constant_net(0).name
        sums: List[str] = []
        for i, (bit_a, bit_b) in enumerate(zip(a, b)):
            sum_net = f"{prefix}_s[{i}]"
            carry_net = f"{prefix}_c[{i}]"
            self.module.ensure_net(sum_net)
            self.module.ensure_net(carry_net)
            self.module.add_instance(
                self.module.new_name(f"u_{prefix}_fa"),
                "FAX1",
                {"A": bit_a, "B": bit_b, "CI": carry, "S": sum_net,
                 "CO": carry_net},
            )
            sums.append(sum_net)
            carry = carry_net
        return sums, carry

    def fast_adder(
        self,
        a: Sequence[str],
        b: Sequence[str],
        carry_in: Optional[str] = None,
        name: Optional[str] = None,
        block: int = 4,
    ) -> Tuple[List[str], str]:
        """Carry-select adder: ripple blocks computed for both carries.

        Depth is one block of full adders plus a mux per block instead
        of the full ripple chain -- the flavour of adder a synthesis
        tool would map for the DLX's ALU.
        """
        prefix = name or self.module.new_name("csa")
        carry = carry_in or self.module.constant_net(0).name
        zero = self.module.constant_net(0).name
        one = self.module.constant_net(1).name
        sums: List[str] = []
        width = len(a)
        for start in range(0, width, block):
            stop = min(start + block, width)
            a_blk = list(a[start:stop])
            b_blk = list(b[start:stop])
            if start == 0:
                blk_sums, carry = self.adder(
                    a_blk, b_blk, carry_in=carry, name=f"{prefix}_b0"
                )
                sums.extend(blk_sums)
                continue
            sums0, cout0 = self.adder(
                a_blk, b_blk, carry_in=zero, name=f"{prefix}_b{start}_0"
            )
            sums1, cout1 = self.adder(
                a_blk, b_blk, carry_in=one, name=f"{prefix}_b{start}_1"
            )
            sums.extend(
                self.mux_bus(sums0, sums1, carry, name=f"{prefix}_s{start}")
            )
            carry = self.mux2(cout0, cout1, carry)
        return sums, carry

    def incrementer(
        self, a: Sequence[str], name: Optional[str] = None
    ) -> List[str]:
        """a + 1 from half adders."""
        prefix = name or self.module.new_name("inc")
        carry = self.module.constant_net(1).name
        sums: List[str] = []
        for i, bit in enumerate(a):
            sum_net = f"{prefix}_s[{i}]"
            carry_net = f"{prefix}_c[{i}]"
            self.module.ensure_net(sum_net)
            self.module.ensure_net(carry_net)
            self.module.add_instance(
                self.module.new_name(f"u_{prefix}_ha"),
                "HAX1",
                {"A": bit, "B": carry, "S": sum_net, "CO": carry_net},
            )
            sums.append(sum_net)
            carry = carry_net
        return sums

    def equals_const(
        self, a: Sequence[str], value: int, name: Optional[str] = None
    ) -> str:
        """Single-bit comparator a == value."""
        literals = []
        for i, bit in enumerate(a):
            if (value >> i) & 1:
                literals.append(bit)
            else:
                literals.append(self.inv(bit))
        out = literals[0]
        for other in literals[1:]:
            out = self.and2(out, other)
        return out

    def reduce(self, role: str, bits: Sequence[str]) -> str:
        out = bits[0]
        for bit in bits[1:]:
            out = self.gate(role, [out, bit])
        return out

    # ------------------------------------------------------------------
    # registers
    # ------------------------------------------------------------------
    def dff(
        self,
        d: str,
        q: Optional[str] = None,
        cell: str = "DFFX1",
        name: Optional[str] = None,
        extra: Optional[Dict[str, str]] = None,
    ) -> str:
        if q is None:
            q = self.module.new_name("q")
            self.module.ensure_net(q)
        bindings = {"D": d, "CK": self.clock, "Q": q}
        if extra:
            bindings.update(extra)
        self.module.add_instance(
            name or self.module.new_name("r"), cell, bindings
        )
        return q

    def register_bus(
        self,
        d: Sequence[str],
        name: str,
        cell: str = "DFFX1",
        extra: Optional[Dict[str, str]] = None,
    ) -> List[str]:
        outs = []
        for i, bit in enumerate(d):
            q = f"{name}[{i}]"
            self.module.ensure_net(q)
            outs.append(
                self.dff(bit, q, cell=cell, name=f"r_{name}_{i}", extra=extra)
            )
        return outs

    def connect_output(self, bits: Sequence[str], port_bits: Sequence[str]) -> None:
        """Drive output port bits through buffers (keeps nets distinct)."""
        for src, dst in zip(bits, port_bits):
            self.gate("buf", [src], dst)
