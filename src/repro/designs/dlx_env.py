"""DLX execution environment: instruction and data memory emulation.

The DLX core fetches through ``pc``/``instr`` and accesses data memory
through the ``dmem_*`` ports, so the testbench plays both memories.
The memory behaviour is one *respond* function -- given the item index
and a snapshot of the core's outputs, it commits any pending store and
returns the fetched instruction plus the load data.  The synchronous
testbench calls it on live outputs every cycle; the desynchronized one
calls it through :class:`repro.sim.reactive.ReactiveEnvironment`, which
aligns output snapshots to handshake items (section 4.8: same
testbench, clock references replaced by request/acknowledge).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..sim.simulator import Simulator, Value


def _bus(name: str, width: int) -> List[str]:
    return [f"{name}[{i}]" for i in range(width)]


def _to_bits(value: int, bits: List[str]) -> Dict[str, int]:
    return {bit: (value >> i) & 1 for i, bit in enumerate(bits)}


def _from_bits(snapshot: Dict[str, Value], bits: List[str]) -> Optional[int]:
    out = 0
    for index, bit in enumerate(bits):
        value = snapshot.get(bit)
        if value is None:
            return None
        out |= value << index
    return out


class DlxMemories:
    """Instruction ROM + data RAM state for one run."""

    def __init__(self, program: Sequence[int],
                 data: Optional[Dict[int, int]] = None):
        self.program = list(program)
        self.data: Dict[int, int] = dict(data or {})
        self.store_log: List[Dict[str, int]] = []

    def fetch(self, pc: int) -> int:
        if not self.program:
            return 0
        return self.program[pc % len(self.program)]

    def load(self, address: int) -> int:
        return self.data.get(address, 0)

    def store(self, address: int, value: int) -> None:
        self.data[address] = value
        self.store_log.append({"addr": address, "value": value})


def dlx_respond(memories: DlxMemories, width: int = 32):
    """Build the respond(item, outputs_snapshot) -> inputs function."""
    pc_bits = _bus("pc", width)
    addr_bits = _bus("dmem_addr", width)
    wdata_bits = _bus("dmem_wdata", width)
    instr_bits = _bus("instr", 32)
    rdata_bits = _bus("dmem_rdata", width)

    def respond(_item: int, snapshot: Dict[str, Value]) -> Dict[str, int]:
        if snapshot.get("dmem_we") == 1:
            address = _from_bits(snapshot, addr_bits)
            value = _from_bits(snapshot, wdata_bits)
            if address is not None and value is not None:
                memories.store(address, value)
        pc = _from_bits(snapshot, pc_bits) or 0
        address = _from_bits(snapshot, addr_bits) or 0
        values = _to_bits(memories.fetch(pc), instr_bits)
        values.update(_to_bits(memories.load(address), rdata_bits))
        return values

    return respond


def dlx_sync_stimulus(simulator: Simulator, memories: DlxMemories,
                      width: int = 32):
    """Per-cycle stimulus for the synchronous run using live outputs."""
    respond = dlx_respond(memories, width)
    outputs = (
        _bus("pc", width) + _bus("dmem_addr", width)
        + _bus("dmem_wdata", width) + ["dmem_we"]
    )

    def stimulus(cycle: int) -> Dict[str, int]:
        snapshot = {bit: simulator.value(bit) for bit in outputs}
        return respond(cycle, snapshot)

    return stimulus


def dlx_environment(memories_factory: Callable[[], DlxMemories],
                    width: int = 32):
    """Stimulus factory for :func:`check_flow_equivalence` (sync path).

    Retained for simple lockstep runs; the desynchronized run should
    use :func:`repro.sim.flowequiv.check_flow_equivalence_reactive`.
    """

    def factory(simulator: Simulator):
        memories = memories_factory()
        simulator.__dict__["dlx_memories"] = memories
        return dlx_sync_stimulus(simulator, memories, width)

    return factory
