"""Gate-level DLX RISC CPU generator (the paper's first case study).

A 32-bit, 4-stage (IF / ID / EX / MEM, Figure 5.2) pipelined DLX-subset
processor, built directly at gate level -- no forwarding between the
pipeline stages, exactly as in the paper.  Instruction and data
memories are external (``instr``/``pc`` and ``dmem_*`` ports), so the
testbench plays the memory system; the supported subset:

======  ===========================================
opcode  semantics
======  ===========================================
0       R-type: funct selects ADD/SUB/AND/OR/XOR/SLT/SLL/SRL/MUL
1       ADDI  rt <- rs + simm16
2       LW    rt <- dmem[rs + simm16]
3       SW    dmem[rs + simm16] <- rt
4       BEQ   if rs == rt: pc <- pc + 1 + simm16
5       J     pc <- target26
6       LUI   rt <- imm16 << 16
======  ===========================================

Encoding: ``[31:26] opcode | [25:21] rs | [20:16] rt | [15:11] rd |
[15:0] imm`` and for R-type ``[5:0] funct`` (0 ADD, 1 SUB, 2 AND,
3 OR, 4 XOR, 5 SLT, 6 SLL, 7 SRL, 8 MUL).

The default parameters produce a ~8k-cell netlist (the paper's
full-ISA DLX is 14.9k; see EXPERIMENTS.md for how the size difference
propagates); ``registers``, ``multiplier`` and ``width`` trade size for
build/simulation speed in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..liberty.model import Library
from ..netlist.core import Module, PortDirection
from .rtl import Builder

# funct codes
F_ADD, F_SUB, F_AND, F_OR, F_XOR, F_SLT, F_SLL, F_SRL, F_MUL, F_SRA = range(10)
# opcodes
OP_RTYPE, OP_ADDI, OP_LW, OP_SW, OP_BEQ, OP_J, OP_LUI = range(7)


def assemble(program: Sequence[Tuple]) -> List[int]:
    """Tiny assembler: list of tuples -> instruction words.

    Forms: ("add", rd, rs, rt), ("sub", ...), ("and"/"or"/"xor"/"slt"/
    "sll"/"srl"/"mul", rd, rs, rt), ("addi", rt, rs, imm),
    ("lw", rt, rs, imm), ("sw", rt, rs, imm), ("beq", rs, rt, imm),
    ("j", target), ("lui", rt, imm), ("nop",).
    """
    functs = {
        "add": F_ADD, "sub": F_SUB, "and": F_AND, "or": F_OR,
        "xor": F_XOR, "slt": F_SLT, "sll": F_SLL, "srl": F_SRL,
        "mul": F_MUL, "sra": F_SRA,
    }
    words: List[int] = []
    for inst in program:
        op = inst[0]
        if op == "nop":
            words.append(0)  # add r0, r0, r0
        elif op in functs:
            _, rd, rs, rt = inst
            words.append(
                (OP_RTYPE << 26) | (rs << 21) | (rt << 16) | (rd << 11)
                | functs[op]
            )
        elif op == "addi":
            _, rt, rs, imm = inst
            words.append((OP_ADDI << 26) | (rs << 21) | (rt << 16)
                         | (imm & 0xFFFF))
        elif op == "lw":
            _, rt, rs, imm = inst
            words.append((OP_LW << 26) | (rs << 21) | (rt << 16)
                         | (imm & 0xFFFF))
        elif op == "sw":
            _, rt, rs, imm = inst
            words.append((OP_SW << 26) | (rs << 21) | (rt << 16)
                         | (imm & 0xFFFF))
        elif op == "beq":
            _, rs, rt, imm = inst
            words.append((OP_BEQ << 26) | (rs << 21) | (rt << 16)
                         | (imm & 0xFFFF))
        elif op == "j":
            words.append((OP_J << 26) | (inst[1] & 0x3FFFFFF))
        elif op == "lui":
            _, rt, imm = inst
            words.append((OP_LUI << 26) | (rt << 16) | (imm & 0xFFFF))
        else:
            raise ValueError(f"unknown mnemonic {op!r}")
    return words


class _Dlx:
    """Builds the processor into a module step by step."""

    def __init__(self, library: Library, registers: int, multiplier: bool,
                 width: int):
        self.module = Module("dlx")
        self.b = Builder(self.module, library)
        self.registers = registers
        self.multiplier = multiplier
        self.width = width
        self.reg_bits = max((registers - 1).bit_length(), 1)

    # ------------------------------------------------------------------
    def build(self) -> Module:
        b = self.b
        module = self.module
        width = self.width
        module.add_port("clk", PortDirection.INPUT)
        instr_in = b.input_port("instr", 32)
        dmem_rdata = b.input_port("dmem_rdata", width)
        pc_out = b.output_port("pc", width)
        dmem_addr = b.output_port("dmem_addr", width)
        dmem_wdata = b.output_port("dmem_wdata", width)
        dmem_we = b.output_port("dmem_we")

        # ---------------- IF: program counter -------------------------
        pc = [f"pc_q[{i}]" for i in range(width)]
        for net in pc:
            module.ensure_net(net)
        pc_plus1 = b.incrementer(pc, name="pcinc")

        # branch/jump resolution happens in EX (computed below); the
        # pc-next mux nets are declared now and driven later
        pc_next = b.bus("pc_next", width)
        for i in range(width):
            b.dff(pc_next[i], pc[i], name=f"r_pc_{i}")
        b.connect_output(pc, pc_out)

        # IF/ID pipeline register: the fetched instruction
        ir = b.register_bus(instr_in, "ir")
        pc1_id = b.register_bus(pc_plus1, "pc1_id")

        # ---------------- ID: decode + register read ------------------
        opcode = ir[26:32]
        rs = ir[21:26][: self.reg_bits]
        rt = ir[16:21][: self.reg_bits]
        rd = ir[11:16][: self.reg_bits]
        funct = ir[0:6]
        imm16 = ir[0:16]

        is_rtype = b.equals_const(opcode, OP_RTYPE)
        is_addi = b.equals_const(opcode, OP_ADDI)
        is_lw = b.equals_const(opcode, OP_LW)
        is_sw = b.equals_const(opcode, OP_SW)
        is_beq = b.equals_const(opcode, OP_BEQ)
        is_j = b.equals_const(opcode, OP_J)
        is_lui = b.equals_const(opcode, OP_LUI)

        # register file: written in MEM stage (no forwarding)
        wb_en = module.ensure_net("wb_en").name
        wb_addr = [f"wb_addr[{i}]" for i in range(self.reg_bits)]
        wb_data = [f"wb_data[{i}]" for i in range(width)]
        for net in wb_addr + wb_data:
            module.ensure_net(net)
        regs_q = self._register_file(wb_en, wb_addr, wb_data)

        read_a = self._read_port(regs_q, rs, "rpa")
        read_b = self._read_port(regs_q, rt, "rpb")

        # sign-extended immediate / LUI immediate
        sign = imm16[15]
        simm = list(imm16) + [sign] * (width - 16)
        simm = simm[:width]
        lui_imm = [self.module.constant_net(0).name] * 16 + list(imm16)
        lui_imm = lui_imm[:width]
        imm_sel = b.mux_bus(simm, lui_imm, is_lui, name="immsel")

        use_imm = b.or2(b.or2(is_addi, is_lw), b.or2(is_sw, is_lui))
        alu_b = b.mux_bus(read_b, imm_sel, use_imm, name="alub")

        # ID/EX pipeline registers
        a_ex = b.register_bus(read_a, "a_ex")
        b_ex = b.register_bus(alu_b, "b_ex")
        store_ex = b.register_bus(read_b, "store_ex")
        pc1_ex = b.register_bus(pc1_id, "pc1_ex")
        simm_ex = b.register_bus(simm, "simm_ex")
        funct_ex = b.register_bus(funct[:4], "funct_ex")
        shamt_ex = b.register_bus(rt[:5] if len(rt) >= 5 else rt, "shamt_ex")
        ctrl = {
            "rtype": is_rtype, "lw": is_lw, "sw": is_sw, "beq": is_beq,
            "j": is_j, "lui": is_lui,
        }
        ctrl_ex = {
            name: b.register_bus([net], f"c_{name}_ex")[0]
            for name, net in ctrl.items()
        }
        dest = b.mux_bus(rt, rd, is_rtype, name="dstsel")
        dest_ex = b.register_bus(dest, "dest_ex")
        # jump target (lower bits of the instruction)
        jtgt = list(ir[0:min(26, width)])
        jtgt += [self.module.constant_net(0).name] * (width - len(jtgt))
        jtgt_ex = b.register_bus(jtgt[:width], "jtgt_ex")

        # ---------------- EX: ALU, branch, shifter --------------------
        alu_out = self._alu(a_ex, b_ex, funct_ex, shamt_ex, ctrl_ex)

        # branch: a == b (on the register operands)
        diff = b.bitwise("xor2", a_ex, store_ex, name="beqx")
        not_equal = b.reduce("or2", diff)
        equal = b.inv(not_equal)
        take_branch = b.and2(ctrl_ex["beq"], equal)
        branch_target, _ = b.fast_adder(pc1_ex, simm_ex, name="btgt")

        # pc-next selection: +1, branch or jump
        seq_or_br = b.mux_bus(pc_plus1, branch_target, take_branch,
                              name="pcbr")
        final_pc = b.mux_bus(seq_or_br, jtgt_ex, ctrl_ex["j"], name="pcj")
        for i in range(width):
            b.gate("buf", [final_pc[i]], pc_next[i])

        # EX/MEM pipeline registers
        alu_mem = b.register_bus(alu_out, "alu_mem")
        store_mem = b.register_bus(store_ex, "store_mem")
        lw_mem = b.register_bus([ctrl_ex["lw"]], "c_lw_mem")[0]
        sw_mem = b.register_bus([ctrl_ex["sw"]], "c_sw_mem")[0]
        dest_mem = b.register_bus(dest_ex, "dest_mem")
        # writeback happens for rtype/addi/lw/lui: compute in EX, pipe it
        is_addi_ex = b.register_bus([is_addi], "c_addi_ex")[0]
        wb_en_ex = b.or2(
            b.or2(ctrl_ex["rtype"], is_addi_ex),
            b.or2(ctrl_ex["lw"], ctrl_ex["lui"]),
        )
        wb_en_mem = b.register_bus([wb_en_ex], "c_wb_mem")[0]

        # ---------------- MEM: memory interface + writeback -----------
        b.connect_output(alu_mem, dmem_addr)
        b.connect_output(store_mem, dmem_wdata)
        b.gate("buf", [sw_mem], dmem_we[0])

        load_or_alu = b.mux_bus(alu_mem, dmem_rdata, lw_mem, name="wbsel")
        for i in range(width):
            b.gate("buf", [load_or_alu[i]], wb_data[i])
        for i in range(self.reg_bits):
            b.gate("buf", [dest_mem[i]], wb_addr[i])
        b.gate("buf", [wb_en_mem], wb_en)
        return module

    # ------------------------------------------------------------------
    def _register_file(self, wb_en, wb_addr, wb_data) -> List[List[str]]:
        """Registers x width flip-flops with write-port muxing."""
        b = self.b
        module = self.module
        regs: List[List[str]] = []
        for index in range(self.registers):
            select = b.equals_const(wb_addr, index)
            write_this = b.and2(wb_en, select) if index else None
            bits: List[str] = []
            for bit in range(self.width):
                q = f"rf{index}[{bit}]"
                module.ensure_net(q)
                if index == 0:
                    # r0 is hardwired zero: constant, no storage
                    module.merge_nets(module.constant_net(0).name, q)
                    bits.append(module.constant_net(0).name)
                    continue
                d = b.mux2(q, wb_data[bit], write_this)
                b.dff(d, q, name=f"r_rf{index}_{bit}")
                bits.append(q)
            regs.append(bits)
        return regs

    def _read_port(self, regs: List[List[str]], addr: List[str],
                   name: str) -> List[str]:
        """Mux tree selecting one register."""
        b = self.b
        level: List[List[str]] = list(regs)
        bit_index = 0
        while len(level) > 1:
            select = addr[bit_index] if bit_index < len(addr) else (
                self.module.constant_net(0).name
            )
            next_level: List[List[str]] = []
            for pair in range(0, len(level), 2):
                if pair + 1 >= len(level):
                    next_level.append(level[pair])
                    continue
                merged = b.mux_bus(
                    level[pair], level[pair + 1], select,
                    name=f"{name}_l{bit_index}_{pair}",
                )
                next_level.append(merged)
            level = next_level
            bit_index += 1
        return level[0]

    def _alu(self, a, bb, funct, shamt, ctrl) -> List[str]:
        b = self.b
        width = self.width
        # add / sub share the adder: B xor sub, carry-in = sub
        f = funct
        # SUB and SLT both need the subtraction result
        is_sub = b.and2(
            ctrl["rtype"],
            b.or2(b.equals_const(f, F_SUB), b.equals_const(f, F_SLT)),
        )
        b_inverted = [b.xor2(bit, is_sub) for bit in bb]
        total, carry = b.fast_adder(
            a, b_inverted, carry_in=is_sub, name="alu_add"
        )

        and_out = b.bitwise("and2", a, bb, name="alu_and")
        or_out = b.bitwise("or2", a, bb, name="alu_or")
        xor_out = b.bitwise("xor2", a, bb, name="alu_xor")

        # SLT: sign of the subtraction
        slt_out = [total[width - 1]] + [
            self.module.constant_net(0).name
        ] * (width - 1)

        # shifter (logical left/right by shamt)
        sll_out = self._shifter(a, shamt, left=True)
        srl_out = self._shifter(a, shamt, left=False)
        sra_out = self._shifter(a, shamt, left=False, arithmetic=True)

        mul_out = self._multiplier(a, bb) if self.multiplier else and_out

        # function select: mux cascade on funct code
        out = total
        for code, candidate in [
            (F_AND, and_out), (F_OR, or_out), (F_XOR, xor_out),
            (F_SLT, slt_out), (F_SLL, sll_out), (F_SRL, srl_out),
            (F_SRA, sra_out), (F_MUL, mul_out),
        ]:
            use = b.and2(ctrl["rtype"], b.equals_const(f, code))
            out = b.mux_bus(out, candidate, use, name=f"alusel{code}")
        return out

    def _shifter(self, a: List[str], shamt: List[str], left: bool,
                 arithmetic: bool = False) -> List[str]:
        b = self.b
        zero = self.module.constant_net(0).name
        current = list(a)
        fill = a[-1] if arithmetic else zero
        # each variant needs its own net-name prefix: the logical and
        # arithmetic right shifters would otherwise both emit shr* nets
        # and end up as two mux banks fighting over the same wires
        kind = "l" if left else ("a" if arithmetic else "r")
        for stage, select in enumerate(shamt[: min(5, len(shamt))]):
            amount = 1 << stage
            if left:
                shifted = [zero] * min(amount, len(current)) + current[:-amount]
            else:
                shifted = current[amount:] + [fill] * min(amount, len(current))
            shifted = shifted[: len(current)]
            current = b.mux_bus(current, shifted, select,
                                name=f"sh{kind}{stage}")
        return current

    def _multiplier(self, a: List[str], bb: List[str]) -> List[str]:
        """Array multiplier, carry-save rows + carry-select final add.

        Each row compresses the running (sum, carry) vectors with the
        next partial product using full adders without carry
        propagation; only the final addition ripples (carry-select), so
        the depth is rows + one adder instead of rows * width.
        """
        b = self.b
        module = self.module
        width = self.width
        rows = (
            width
            if self.multiplier == "full" or self.multiplier is True
            else width // 2
        )
        zero = module.constant_net(0).name
        sum_v = [zero] * width
        carry_v = [zero] * width
        for j in range(rows):
            partial = [zero] * j + [
                b.and2(a[i], bb[j]) for i in range(width - j)
            ]
            partial = partial[:width]
            new_sum: List[str] = []
            new_carry = [zero]
            for i in range(width):
                s_net = f"mulcs{j}_s[{i}]"
                c_net = f"mulcs{j}_c[{i}]"
                module.ensure_net(s_net)
                module.ensure_net(c_net)
                module.add_instance(
                    module.new_name(f"u_mulcsa{j}"),
                    "FAX1",
                    {
                        "A": sum_v[i],
                        "B": carry_v[i],
                        "CI": partial[i],
                        "S": s_net,
                        "CO": c_net,
                    },
                )
                new_sum.append(s_net)
                if i + 1 < width:
                    new_carry.append(c_net)
            sum_v = new_sum
            carry_v = new_carry
        total, _ = b.fast_adder(sum_v, carry_v, name="mulfinal")
        return total


def dlx_core(
    library: Library,
    registers: int = 32,
    multiplier: bool = True,
    width: int = 32,
) -> Module:
    """Generate the DLX processor netlist."""
    return _Dlx(library, registers, multiplier, width).build()


def demo_program() -> List[int]:
    """A small self-contained program exercising the subset ISA."""
    return assemble([
        ("addi", 1, 0, 5),      # r1 = 5
        ("addi", 2, 0, 7),      # r2 = 7
        ("add", 3, 1, 2),       # r3 = 12
        ("sub", 4, 2, 1),       # r4 = 2
        ("xor", 5, 3, 4),       # r5 = 14
        ("sw", 5, 0, 0),        # dmem[0] = r5
        ("lw", 6, 0, 0),        # r6 = dmem[0]
        ("slt", 7, 4, 3),       # r7 = 1
        ("beq", 7, 0, 2),       # not taken
        ("addi", 8, 0, 1),      # r8 = 1
        ("j", 2),               # loop back to pc=2
    ])
