"""ARM966E-S-class synthetic core (the paper's second case study).

The paper desynchronizes an existing ARM966E-S implementation -- a scan
design whose internals were opaque, so neither automatic nor manual
grouping was possible and it was converted as a *single region*, with
only area results reported (section 5.3).  The real core is
proprietary; this generator produces a stand-in with the same
structural signature:

- scan flip-flops everywhere (SDFF cells, stitched chain),
- a register-bank-heavy mix (the paper's ARM has ~35% of its cell area
  in sequential logic at the Low-Leakage library),
- pipelined datapath slices and pseudo-random control clouds sized to a
  target cell count (default ~30k, the paper's core is 31.5k cells).

Only the area experiment (Table 5.2) consumes this design, matching
the paper ("due to lack of any testbenches, only area results can be
presented"), but the netlist is fully simulatable.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..liberty.model import Library
from ..netlist.core import Module, PortDirection
from .rtl import Builder


def _random_cloud(
    b: Builder,
    rng: random.Random,
    inputs: List[str],
    n_gates: int,
    name: str,
    levels: int = 12,
) -> List[str]:
    """A deterministic pseudo-random combinational cloud.

    Gates are organised in ``levels`` so the logical depth stays
    pipeline-plausible; each gate draws its operands from the previous
    level (or the cloud inputs).
    """
    roles = ["nand2", "nor2", "and2", "or2", "xor2", "inv", "mux2"]
    per_level = max(1, n_gates // levels)
    previous = list(inputs)
    outputs: List[str] = []
    emitted = 0
    while emitted < n_gates:
        level_nets: List[str] = []
        for _ in range(min(per_level, n_gates - emitted)):
            role = roles[rng.randrange(len(roles))]
            if role == "inv":
                operands = [previous[rng.randrange(len(previous))]]
            elif role == "mux2":
                operands = [
                    previous[rng.randrange(len(previous))] for _ in range(3)
                ]
            else:
                operands = [
                    previous[rng.randrange(len(previous))] for _ in range(2)
                ]
            out = b.gate(role, operands)
            level_nets.append(out)
            emitted += 1
        outputs.extend(level_nets)
        previous = level_nets or previous
    return outputs


def arm9_core(
    library: Library,
    target_cells: int = 30000,
    banks: int = 4,
    width: int = 32,
    seed: int = 1996,
) -> Module:
    """Generate the scan-inserted ARM-class core.

    The design is a ring of register banks with random-logic clouds
    between them, two scan-chained register files and a multiplier
    slice; ``target_cells`` controls the total size.
    """
    module = Module("arm9")
    b = Builder(module, library)
    rng = random.Random(seed)
    module.add_port("clk", PortDirection.INPUT)
    scan_in = b.input_port("scan_in")[0]
    scan_en = b.input_port("scan_en")[0]
    b.output_port("scan_out")
    din = b.input_port("din", width)
    dout = b.output_port("dout", width)

    chain = scan_in

    def scan_reg_bus(d_bits: List[str], name: str) -> List[str]:
        nonlocal chain
        outs = []
        for i, bit in enumerate(d_bits):
            q = f"{name}[{i}]"
            module.ensure_net(q)
            b.dff(
                bit, q, cell="SDFFX1", name=f"r_{name}_{i}",
                extra={"SI": chain, "SE": scan_en},
            )
            chain = q
            outs.append(q)
        return outs

    # sequential area fraction tuned to the paper's ARM (~45% of cell
    # area); with this library's cell sizes that is ~16% of instances
    ff_budget = int(target_cells * 0.16)
    cloud_budget = target_cells - ff_budget
    n_regs = max(1, ff_budget // width)
    regs_per_bank = max(1, n_regs // banks)
    cloud_per_bank = cloud_budget // banks

    stage_inputs = list(din)
    all_banks: List[List[str]] = []
    for bank in range(banks):
        cloud = _random_cloud(
            b, rng, stage_inputs, cloud_per_bank, f"cl{bank}"
        )
        bank_regs: List[str] = []
        for reg_index in range(regs_per_bank):
            d_bits = [
                cloud[rng.randrange(len(cloud))] for _ in range(width)
            ]
            bank_regs.extend(
                scan_reg_bus(d_bits, f"bank{bank}_r{reg_index}")
            )
        all_banks.append(bank_regs)
        # next stage reads a spread of this bank's registers
        stage_inputs = [
            bank_regs[rng.randrange(len(bank_regs))] for _ in range(width)
        ]

    # output stage: xor-compress the last bank
    last = all_banks[-1]
    out_bits = []
    for i in range(width):
        a = last[(i * 7) % len(last)]
        c = last[(i * 13 + 5) % len(last)]
        out_bits.append(b.xor2(a, c))
    final = scan_reg_bus(out_bits, "out_reg")
    b.connect_output(final, dout)
    b.gate("buf", [chain], "scan_out")
    return module
