"""Small test designs: the Figure 2.2 sample, counters, pipelines.

These are the unit-test-scale workloads of the repository; the DLX and
ARM-class generators live in their own modules.
"""

from __future__ import annotations

from typing import Optional

from ..liberty.model import Library
from ..netlist.core import Module, PortDirection
from .rtl import Builder


def figure22_circuit(library: Library, width: int = 4) -> Module:
    """The five-region sample circuit of Figure 2.2.

    Regions (clouds CL1..CL5 with register groups G1..G5):
    CL1 -> G1 feeds CL2 -> G2 and CL3 -> G3; G2 feeds CL4 -> G4;
    G3 and G4 feed CL5 -> G5, which drives the primary output.
    """
    module = Module("figure22")
    b = Builder(module, library)
    din = b.input_port("din", width)
    module.add_port("clk", PortDirection.INPUT)
    dout = b.output_port("dout", width)

    # CL1: input incrementer -> G1
    cl1 = b.incrementer(din, name="cl1")
    g1 = b.register_bus(cl1, "g1")

    # CL2: invert -> G2
    cl2 = b.invert_bus(g1, name="cl2")
    g2 = b.register_bus(cl2, "g2")

    # CL3: xor with rotated self -> G3
    rotated = g1[1:] + g1[:1]
    cl3 = b.bitwise("xor2", g1, rotated, name="cl3")
    g3 = b.register_bus(cl3, "g3")

    # CL4: add constant -> G4
    cl4, _ = b.adder(g2, b.const(3, width), name="cl4")
    g4 = b.register_bus(cl4, "g4")

    # CL5: and of G3/G4 -> G5
    cl5 = b.bitwise("and2", g3, g4, name="cl5")
    g5 = b.register_bus(cl5, "g5")

    b.connect_output(g5, dout)
    return module


def counter(library: Library, width: int = 8, name: str = "counter") -> Module:
    """Free-running counter: one self-looped region (plus output buffers)."""
    module = Module(name)
    b = Builder(module, library)
    module.add_port("clk", PortDirection.INPUT)
    dout = b.output_port("count", width)
    state = [f"state[{i}]" for i in range(width)]
    for net in state:
        module.ensure_net(net)
    nxt = b.incrementer(state, name="inc")
    for i in range(width):
        b.dff(nxt[i], state[i], name=f"r_state_{i}")
    b.connect_output(state, dout)
    return module


def pipeline3(library: Library, width: int = 8) -> Module:
    """Three-stage linear pipeline: +1, xor mask, +input echo."""
    module = Module("pipeline3")
    b = Builder(module, library)
    module.add_port("clk", PortDirection.INPUT)
    din = b.input_port("din", width)
    dout = b.output_port("dout", width)

    stage_a = b.register_bus(din, "sa")
    cl1 = b.incrementer(stage_a, name="cl1")
    stage_b = b.register_bus(cl1, "sb")
    mask = b.const(0x5A & ((1 << width) - 1), width)
    cl2 = b.bitwise("xor2", stage_b, mask, name="cl2")
    stage_c = b.register_bus(cl2, "sc")
    b.connect_output(stage_c, dout)
    return module


def shift_register(library: Library, depth: int = 4) -> Module:
    """FF-to-FF chain exercising the step-2 grouping heuristic."""
    module = Module("shiftreg")
    b = Builder(module, library)
    module.add_port("clk", PortDirection.INPUT)
    din = b.input_port("sin")[0]
    dout = b.output_port("sout")[0]
    # a tiny cloud in front so step 1 creates one group
    front = b.inv(b.inv(din))
    stage = b.dff(front, name="r_s0")
    for i in range(1, depth):
        stage = b.dff(stage, name=f"r_s{i}")
    b.gate("buf", [stage], dout)
    return module


def scan_pipeline(library: Library, width: int = 4) -> Module:
    """Pipeline built from scan flip-flops with a stitched chain."""
    module = Module("scanpipe")
    b = Builder(module, library)
    module.add_port("clk", PortDirection.INPUT)
    din = b.input_port("din", width)
    dout = b.output_port("dout", width)
    scan_in = b.input_port("scan_in")[0]
    scan_en = b.input_port("scan_en")[0]
    b.output_port("scan_out")

    chain = scan_in
    stage_a = []
    for i, bit in enumerate(din):
        q = f"sa[{i}]"
        module.ensure_net(q)
        b.dff(
            bit, q, cell="SDFFX1", name=f"r_sa_{i}",
            extra={"SI": chain, "SE": scan_en},
        )
        chain = q
        stage_a.append(q)
    cl = b.incrementer(stage_a, name="cl")
    stage_b = []
    for i, bit in enumerate(cl):
        q = f"sb[{i}]"
        module.ensure_net(q)
        b.dff(
            bit, q, cell="SDFFX1", name=f"r_sb_{i}",
            extra={"SI": chain, "SE": scan_en},
        )
        chain = q
        stage_b.append(q)
    b.connect_output(stage_b, dout)
    b.gate("buf", [chain], "scan_out")
    return module


def gated_counter(library: Library, width: int = 4) -> Module:
    """Counter behind an integrated clock gate (Figure 3.1 d case)."""
    module = Module("gatedcounter")
    b = Builder(module, library)
    module.add_port("clk", PortDirection.INPUT)
    enable = b.input_port("en")[0]
    dout = b.output_port("count", width)
    module.ensure_net("gck")
    module.add_instance(
        "u_icg", "CKGATEX1", {"EN": enable, "CK": "clk", "GCK": "gck"}
    )
    state = [f"state[{i}]" for i in range(width)]
    for net in state:
        module.ensure_net(net)
    nxt = b.incrementer(state, name="inc")
    for i in range(width):
        module.add_instance(
            f"r_state_{i}", "DFFX1", {"D": nxt[i], "CK": "gck", "Q": state[i]}
        )
    b.connect_output(state, dout)
    return module
