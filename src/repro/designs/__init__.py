"""Design generators: samples, the DLX CPU and the ARM-class core."""

from .rtl import Builder
from .simple import (
    counter,
    figure22_circuit,
    gated_counter,
    pipeline3,
    scan_pipeline,
    shift_register,
)
from .dlx import assemble, demo_program, dlx_core
from .dlx_env import (
    DlxMemories,
    dlx_environment,
    dlx_respond,
    dlx_sync_stimulus,
)
from .arm9 import arm9_core

__all__ = [
    "Builder",
    "DlxMemories",
    "arm9_core",
    "assemble",
    "counter",
    "demo_program",
    "dlx_core",
    "dlx_environment",
    "dlx_respond",
    "dlx_sync_stimulus",
    "figure22_circuit",
    "gated_counter",
    "pipeline3",
    "scan_pipeline",
    "shift_register",
]
