"""Monte-Carlo PVT variability model (chapter 1, sections 2.5, 5.2.2).

Each fabricated chip gets an *inter-die* delay factor (process corner
plus operating voltage/temperature) and per-instance *intra-die*
factors.  The crucial desynchronization property is built into the
model the same way it is built into silicon:

- the synchronous design must be clocked at the **worst-case** period:
  the externally imposed clock cannot know which chip it landed on;
- the desynchronized design's delay elements sit on the same die,
  made of the same gates, so their delay scales with the *same*
  inter-die factor as the logic they match -- the effective period
  tracks each chip's actual speed (plus a residual mismatch term for
  intra-die variation the margin must absorb).
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import metrics, trace


def _chip_seed(seed: int, index: int) -> int:
    """Deterministic per-chip RNG seed, independent of chip order.

    Derived by hashing ``(study seed, chip index)`` so chip ``i`` draws
    the same values no matter how many chips are sampled, in what order,
    or on which process-pool worker -- the property that makes serial
    and parallel sampling bit-identical.
    """
    digest = hashlib.sha256(f"repro-mc:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _sample_chip(
    args: Tuple["VariabilityModel", int, Optional[Sequence[str]]]
) -> "ChipSample":
    """Sample one die from its own seeded RNG (process-pool worker)."""
    model, chip_seed, instances = args
    rng = random.Random(chip_seed)
    inter = model._gauss(rng, 1.0, model.sigma_inter)
    mismatch = model._gauss(
        rng, 1.0, model.sigma_intra * model.tracking_residual
    )
    chip = ChipSample(inter_die=inter, tracking_mismatch=mismatch)
    if instances:
        chip.instance_factors = {
            name: model._gauss(rng, 1.0, model.sigma_intra)
            for name in instances
        }
    return chip


@dataclass
class ChipSample:
    """One fabricated die."""

    inter_die: float  # global delay factor (1.0 = typical)
    #: residual delay-element-vs-logic mismatch for this die (around 1.0)
    tracking_mismatch: float = 1.0
    #: optional per-instance factors (for instance-level simulation/STA)
    instance_factors: Dict[str, float] = field(default_factory=dict)


@dataclass
class VariabilityModel:
    """Distribution parameters for 90nm-class variation."""

    #: sigma of the inter-die (D2D) delay factor
    sigma_inter: float = 0.12
    #: sigma of per-instance intra-die (WID) variation
    sigma_intra: float = 0.04
    #: how much of the intra-die variation the delay element fails to
    #: track (0 = perfect tracking, 1 = fully uncorrelated)
    tracking_residual: float = 0.5
    #: hard truncation so samples stay physical
    truncate_sigma: float = 3.0

    def sample_chips(
        self,
        n: int,
        seed: int = 2006,
        instances: Optional[Sequence[str]] = None,
        jobs: int = 1,
    ) -> List[ChipSample]:
        """Sample ``n`` dies.  Each chip draws from its own RNG seeded
        by :func:`_chip_seed`, so the result is bit-identical whether
        sampled serially (``jobs=1``) or fanned out over a process pool
        (``jobs>1`` or ``jobs=None`` for all CPUs).
        """
        tasks = [
            (self, _chip_seed(seed, index), instances) for index in range(n)
        ]
        if jobs == 1:
            chips = [_sample_chip(task) for task in tasks]
        else:
            from ..engine.pool import parallel_map

            chips = parallel_map(_sample_chip, tasks, jobs=jobs)
        metrics.counter("variability.chips_sampled").inc(n)
        return chips

    def _gauss(self, rng: random.Random, mu: float, sigma: float) -> float:
        value = rng.gauss(mu, sigma)
        low = mu - self.truncate_sigma * sigma
        high = mu + self.truncate_sigma * sigma
        return min(max(value, low), high)

    def worst_case_factor(self) -> float:
        """The factor the synchronous clock must be signed off at."""
        return 1.0 + self.truncate_sigma * self.sigma_inter

    def best_case_factor(self) -> float:
        return 1.0 - self.truncate_sigma * self.sigma_inter


def synchronous_period(nominal_period: float, model: VariabilityModel) -> float:
    """Clock period a synchronous chip ships with: worst case, always."""
    return nominal_period * model.worst_case_factor()


def desynchronized_period(
    nominal_period: float, chip: ChipSample, margin: float = 0.0
) -> float:
    """Effective period of the desynchronized chip: tracks the die.

    ``margin`` is the delay-element safety margin (uncorrelated
    variability headroom, section 2.5).
    """
    return (
        nominal_period
        * chip.inter_die
        * chip.tracking_mismatch
        * (1.0 + margin)
    )


@dataclass
class VariabilityStudy:
    """Result of a sync-vs-desync Monte-Carlo comparison (Figure 5.4)."""

    sync_period: float
    desync_periods: List[float]

    @property
    def fraction_desync_faster(self) -> float:
        faster = sum(1 for p in self.desync_periods if p < self.sync_period)
        return faster / max(len(self.desync_periods), 1)

    @property
    def mean_desync_period(self) -> float:
        return sum(self.desync_periods) / max(len(self.desync_periods), 1)

    def histogram(self, bins: int = 20) -> List[Dict[str, float]]:
        low = min(self.desync_periods)
        high = max(self.desync_periods)
        if high <= low:
            high = low + 1e-9
        width = (high - low) / bins
        counts = [0] * bins
        for period in self.desync_periods:
            index = min(int((period - low) / width), bins - 1)
            counts[index] += 1
        total = len(self.desync_periods)
        return [
            {
                "low": low + i * width,
                "high": low + (i + 1) * width,
                "probability": counts[i] / total,
            }
            for i in range(bins)
        ]


def run_study(
    nominal_period: float,
    model: Optional[VariabilityModel] = None,
    n_chips: int = 5000,
    margin: float = 0.10,
    seed: int = 2006,
    jobs: int = 1,
) -> VariabilityStudy:
    """Monte-Carlo comparison of sync worst-case vs desync per-die period.

    ``jobs`` fans the chip sampling out over a process pool; any value
    produces bit-identical results (per-chip seeds, order-preserving
    map).
    """
    with trace.span("variability.run_study", chips=n_chips) as span:
        model = model or VariabilityModel()
        chips = model.sample_chips(n_chips, seed=seed, jobs=jobs)
        sync = synchronous_period(nominal_period, model)
        desync = [
            desynchronized_period(nominal_period, chip, margin)
            for chip in chips
        ]
        span.set("sync_period", sync)
    return VariabilityStudy(sync_period=sync, desync_periods=desync)
