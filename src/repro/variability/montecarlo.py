"""Monte-Carlo PVT variability model (chapter 1, sections 2.5, 5.2.2).

Each fabricated chip gets an *inter-die* delay factor (process corner
plus operating voltage/temperature) and per-instance *intra-die*
factors.  The crucial desynchronization property is built into the
model the same way it is built into silicon:

- the synchronous design must be clocked at the **worst-case** period:
  the externally imposed clock cannot know which chip it landed on;
- the desynchronized design's delay elements sit on the same die,
  made of the same gates, so their delay scales with the *same*
  inter-die factor as the logic they match -- the effective period
  tracks each chip's actual speed (plus a residual mismatch term for
  intra-die variation the margin must absorb).
"""

from __future__ import annotations

import hashlib
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import metrics, trace


def _chip_seed(seed: int, index: int) -> int:
    """Deterministic per-chip RNG seed, independent of chip order.

    Derived by hashing ``(study seed, chip index)`` so chip ``i`` draws
    the same values no matter how many chips are sampled, in what order,
    or on which process-pool worker -- the property that makes serial
    and parallel sampling bit-identical.
    """
    digest = hashlib.sha256(f"repro-mc:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _sample_chip(
    args: Tuple["VariabilityModel", int, Optional[Sequence[str]]]
) -> "ChipSample":
    """Sample one die from its own seeded RNG (process-pool worker)."""
    model, chip_seed, instances = args
    rng = random.Random(chip_seed)
    inter = model._gauss(rng, 1.0, model.sigma_inter)
    mismatch = model._gauss(
        rng, 1.0, model.sigma_intra * model.tracking_residual
    )
    chip = ChipSample(inter_die=inter, tracking_mismatch=mismatch)
    if instances:
        chip.instance_factors = {
            name: model._gauss(rng, 1.0, model.sigma_intra)
            for name in instances
        }
    return chip


@dataclass
class ChipSample:
    """One fabricated die."""

    inter_die: float  # global delay factor (1.0 = typical)
    #: residual delay-element-vs-logic mismatch for this die (around 1.0)
    tracking_mismatch: float = 1.0
    #: optional per-instance factors (for instance-level simulation/STA)
    instance_factors: Dict[str, float] = field(default_factory=dict)


@dataclass
class VariabilityModel:
    """Distribution parameters for 90nm-class variation."""

    #: sigma of the inter-die (D2D) delay factor
    sigma_inter: float = 0.12
    #: sigma of per-instance intra-die (WID) variation
    sigma_intra: float = 0.04
    #: how much of the intra-die variation the delay element fails to
    #: track (0 = perfect tracking, 1 = fully uncorrelated)
    tracking_residual: float = 0.5
    #: hard truncation so samples stay physical
    truncate_sigma: float = 3.0

    def sample_chips(
        self,
        n: int,
        seed: int = 2006,
        instances: Optional[Sequence[str]] = None,
        jobs: int = 1,
    ) -> List[ChipSample]:
        """Sample ``n`` dies.  Each chip draws from its own RNG seeded
        by :func:`_chip_seed`, so the result is bit-identical whether
        sampled serially (``jobs=1``) or fanned out over a process pool
        (``jobs>1`` or ``jobs=None`` for all CPUs).
        """
        tasks = [
            (self, _chip_seed(seed, index), instances) for index in range(n)
        ]
        if jobs == 1:
            chips = [_sample_chip(task) for task in tasks]
        else:
            from ..engine.pool import parallel_map

            chips = parallel_map(_sample_chip, tasks, jobs=jobs)
        metrics.counter("variability.chips_sampled").inc(n)
        return chips

    def _gauss(self, rng: random.Random, mu: float, sigma: float) -> float:
        value = rng.gauss(mu, sigma)
        low = mu - self.truncate_sigma * sigma
        high = mu + self.truncate_sigma * sigma
        return min(max(value, low), high)

    def worst_case_factor(self) -> float:
        """The factor the synchronous clock must be signed off at."""
        return 1.0 + self.truncate_sigma * self.sigma_inter

    def best_case_factor(self) -> float:
        return 1.0 - self.truncate_sigma * self.sigma_inter


def synchronous_period(nominal_period: float, model: VariabilityModel) -> float:
    """Clock period a synchronous chip ships with: worst case, always."""
    return nominal_period * model.worst_case_factor()


def desynchronized_period(
    nominal_period: float, chip: ChipSample, margin: float = 0.0
) -> float:
    """Effective period of the desynchronized chip: tracks the die.

    ``margin`` is the delay-element safety margin (uncorrelated
    variability headroom, section 2.5).
    """
    return (
        nominal_period
        * chip.inter_die
        * chip.tracking_mismatch
        * (1.0 + margin)
    )


def lane_batches(
    chips: Sequence[ChipSample], lanes: int
) -> List[List[ChipSample]]:
    """Split chips into lane-sized batches (the last may be short).

    One batch maps onto one :class:`~repro.sim.batch.BatchSimulator`
    pass: chip ``j`` of a batch rides bit lane ``j``.
    """
    if lanes < 1:
        raise ValueError("lane count must be >= 1")
    return [list(chips[i : i + lanes]) for i in range(0, len(chips), lanes)]


@dataclass
class SimBackendConfig:
    """What ``run_study(backend="sim")`` needs to run gate-level batches.

    ``regions`` maps a region name to ``(nominal delay, member
    instances)`` -- typically derived from a ``DesyncResult`` region
    map with per-region STA periods; without it the whole design is one
    region at the study's nominal period.  ``oracle_chips`` solo-runs
    that many chips of the first batch on the per-chip compiled kernel
    and insists on bit-identical captures (the lane-parity oracle).
    """

    module: object
    library: object
    stimulus_factory: Optional[Callable] = None
    cycles: int = 24
    clock: str = "clk"
    corner: str = "worst"
    regions: Optional[Dict[str, Tuple[float, Sequence[str]]]] = None
    oracle_chips: int = 0
    #: clock period for the solo oracle runs (default: roomy multiple
    #: of the nominal period so derated chips still settle)
    period: Optional[float] = None


@dataclass
class VariabilityStudy:
    """Result of a sync-vs-desync Monte-Carlo comparison (Figure 5.4)."""

    sync_period: float
    desync_periods: List[float]
    #: delay-element safety margin the periods were computed with
    margin: float = 0.0
    #: "model" (analytic) or "sim" (lane-batched gate-level simulation)
    backend: str = "model"
    #: batch-simulation counters when ``backend == "sim"``
    sim_stats: Optional[Dict[str, float]] = None

    @property
    def fraction_desync_faster(self) -> float:
        faster = sum(1 for p in self.desync_periods if p < self.sync_period)
        return faster / max(len(self.desync_periods), 1)

    @property
    def mean_desync_period(self) -> float:
        return sum(self.desync_periods) / max(len(self.desync_periods), 1)

    def percentile(self, p: float) -> float:
        """Linearly interpolated percentile of the desync distribution.

        ``p`` in percent: ``percentile(50)`` is the median effective
        period, ``percentile(95)`` the near-worst die.
        """
        if not self.desync_periods:
            raise ValueError("percentile of an empty study")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p!r} outside [0, 100]")
        data = sorted(self.desync_periods)
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lower = int(math.floor(rank))
        upper = min(lower + 1, len(data) - 1)
        fraction = rank - lower
        return data[lower] + (data[upper] - data[lower]) * fraction

    def yield_vs_margin(
        self, margins: Sequence[float]
    ) -> List[Dict[str, float]]:
        """Desync-beats-sync yield as a function of the safety margin.

        Rebases each die's period by the margin this study was run with
        and re-applies each candidate margin -- the margin is a pure
        multiplicative factor (section 2.5), so no re-simulation is
        needed to sweep it.
        """
        base = [p / (1.0 + self.margin) for p in self.desync_periods]
        total = max(len(base), 1)
        out = []
        for margin in margins:
            faster = sum(
                1 for b in base if b * (1.0 + margin) < self.sync_period
            )
            out.append({"margin": margin, "yield": faster / total})
        return out

    def histogram(self, bins: int = 20) -> List[Dict[str, float]]:
        if not self.desync_periods:
            return []
        low = min(self.desync_periods)
        high = max(self.desync_periods)
        if high <= low:
            high = low + 1e-9
        width = (high - low) / bins
        counts = [0] * bins
        for period in self.desync_periods:
            index = min(int((period - low) / width), bins - 1)
            counts[index] += 1
        total = len(self.desync_periods)
        return [
            {
                "low": low + i * width,
                "high": low + (i + 1) * width,
                "probability": counts[i] / total,
            }
            for i in range(bins)
        ]


def _seq_instances(module, library) -> List[str]:
    """Sequential instances of a module (the default region members)."""
    from ..liberty.model import CellKind

    out = []
    for inst in module.instances.values():
        cell = library.cells.get(inst.cell)
        if cell is not None and cell.kind in (
            CellKind.FLIP_FLOP,
            CellKind.LATCH,
        ):
            out.append(inst.name)
    return out


def _region_activity(
    batch, regions: Dict[str, Tuple[float, Sequence[str]]], mask: int
) -> Dict[str, List[int]]:
    """Per-region, per-edge lane planes of "this region computed".

    A region is *active* at edge ``k`` in a lane when any member
    flip-flop captured a different value (or x-ness) than at edge
    ``k - 1`` -- its handshake cycle did real work, so that edge costs
    the region's full delay.  Edge 0 is conservatively all-active.
    """
    planes = batch.capture_planes()
    activity: Dict[str, List[int]] = {}
    for name, (_, members) in regions.items():
        sequences = [planes[m] for m in members if m in planes]
        edges = min((len(s) for s in sequences), default=0)
        lane_changes: List[int] = []
        for k in range(edges):
            if k == 0:
                lane_changes.append(mask)
                continue
            changed = 0
            for sequence in sequences:
                _, prev_v, prev_x = sequence[k - 1]
                _, cur_v, cur_x = sequence[k]
                changed |= (prev_v ^ cur_v) | (prev_x ^ cur_x)
            lane_changes.append(changed)
        activity[name] = lane_changes
    return activity


def _chip_effective_period(
    chip: ChipSample,
    lane: int,
    regions: Dict[str, Tuple[float, Sequence[str]]],
    activity: Dict[str, List[int]],
    margin: float,
) -> float:
    """One die's measured effective period from a lane-batched run.

    The chip's ``instance_factors`` scale each region's nominal delay
    (mean over member instances -- the matched delay element spans the
    region); each clock edge then costs the slowest *active* region, or
    the fastest region's delay when nothing computed (the handshake
    still turns around).  Inter-die and tracking factors apply on top,
    exactly as in :func:`desynchronized_period`.
    """
    scaled: Dict[str, float] = {}
    for name, (delay, members) in regions.items():
        factors = [chip.instance_factors.get(m, 1.0) for m in members]
        factor = sum(factors) / len(factors) if factors else 1.0
        scaled[name] = delay * factor
    floor_delay = min(scaled.values())
    bit = 1 << lane
    edges = max((len(a) for a in activity.values()), default=0)
    if edges == 0:
        base = max(scaled.values())
    else:
        total = 0.0
        for k in range(edges):
            worst = 0.0
            for name, lane_changes in activity.items():
                if k < len(lane_changes) and lane_changes[k] & bit:
                    if scaled[name] > worst:
                        worst = scaled[name]
            total += worst if worst > 0.0 else floor_delay
        base = total / edges
    return base * chip.inter_die * chip.tracking_mismatch * (1.0 + margin)


def _sim_backend_periods(
    nominal_period: float,
    model: VariabilityModel,
    chips: List[ChipSample],
    margin: float,
    sim: SimBackendConfig,
    lanes: int,
    regions: Dict[str, Tuple[float, Sequence[str]]],
) -> Tuple[List[float], Dict[str, float]]:
    """Measure every chip's effective period on the lane-batch kernel."""
    from ..sim.batch import (
        BatchSimulator,
        assert_lane_parity,
        solo_capture_sequences,
    )
    from ..sim.testbench import SyncTestbench, initialize_registers

    periods: List[float] = []
    stats = {
        "chips": float(len(chips)),
        "lanes": float(lanes),
        "batches": 0.0,
        "cycles": float(sim.cycles),
        "cell_evals": 0.0,
        "oracle_chips": float(sim.oracle_chips),
    }
    start = time.perf_counter()
    oracle_period = sim.period or nominal_period * 4.0
    for batch_index, batch_chips in enumerate(lane_batches(chips, lanes)):
        batch = BatchSimulator(sim.module, sim.library, lanes=len(batch_chips))
        initialize_registers(batch, 0)
        bench = SyncTestbench(batch, clock=sim.clock)
        stimulus = (
            sim.stimulus_factory(batch)
            if sim.stimulus_factory is not None
            else None
        )
        bench.run_cycles(sim.cycles, stimulus)
        activity = _region_activity(batch, regions, batch.mask)
        for lane, chip in enumerate(batch_chips):
            periods.append(
                _chip_effective_period(chip, lane, regions, activity, margin)
            )
        stats["batches"] += 1.0
        stats["cell_evals"] += float(batch.cell_evals)
        if batch_index == 0 and sim.oracle_chips:
            for lane, chip in enumerate(batch_chips[: sim.oracle_chips]):
                derate_map = {
                    name: chip.inter_die * factor
                    for name, factor in chip.instance_factors.items()
                }
                solo = solo_capture_sequences(
                    sim.module,
                    sim.library,
                    cycles=sim.cycles,
                    stimulus_factory=sim.stimulus_factory,
                    clock=sim.clock,
                    period=oracle_period,
                    corner=sim.corner,
                    derate_map=derate_map,
                )
                assert_lane_parity(batch, lane, solo)
    stats["sim_seconds"] = time.perf_counter() - start
    stats["chips_per_second"] = (
        len(chips) / stats["sim_seconds"] if stats["sim_seconds"] > 0 else 0.0
    )
    metrics.counter("variability.sim_batches").inc(int(stats["batches"]))
    return periods, stats


def run_study(
    nominal_period: float,
    model: Optional[VariabilityModel] = None,
    n_chips: int = 5000,
    margin: float = 0.10,
    seed: int = 2006,
    jobs: int = 1,
    backend: str = "model",
    sim: Optional[SimBackendConfig] = None,
    lanes: int = 64,
) -> VariabilityStudy:
    """Monte-Carlo comparison of sync worst-case vs desync per-die period.

    ``jobs`` fans the chip sampling out over a process pool; any value
    produces bit-identical results (per-chip seeds, order-preserving
    map).

    ``backend="model"`` uses the analytic period model (the original
    behaviour).  ``backend="sim"`` runs the design gate-level on the
    bit-parallel :class:`~repro.sim.batch.BatchSimulator`, ``lanes``
    chips per pass: each chip's ``instance_factors`` scale its region
    delays and each clock edge costs the slowest region that actually
    computed, so the distribution reflects measured per-die activity
    rather than a closed-form factor.  Requires a
    :class:`SimBackendConfig` via ``sim``.
    """
    if backend not in ("model", "sim"):
        raise ValueError(f"unknown study backend {backend!r}")
    if backend == "sim" and sim is None:
        raise ValueError('backend="sim" requires a SimBackendConfig')
    with trace.span(
        "variability.run_study", chips=n_chips, backend=backend
    ) as span:
        model = model or VariabilityModel()
        sync = synchronous_period(nominal_period, model)
        sim_stats: Optional[Dict[str, float]] = None
        if backend == "model":
            chips = model.sample_chips(n_chips, seed=seed, jobs=jobs)
            desync = [
                desynchronized_period(nominal_period, chip, margin)
                for chip in chips
            ]
        else:
            regions = dict(sim.regions) if sim.regions else {
                "core": (
                    nominal_period,
                    _seq_instances(sim.module, sim.library),
                )
            }
            members = sorted(
                {name for _, names in regions.values() for name in names}
            )
            chips = model.sample_chips(
                n_chips, seed=seed, instances=members, jobs=jobs
            )
            desync, sim_stats = _sim_backend_periods(
                nominal_period, model, chips, margin, sim, lanes, regions
            )
        span.set("sync_period", sync)
    return VariabilityStudy(
        sync_period=sync,
        desync_periods=desync,
        margin=margin,
        backend=backend,
        sim_stats=sim_stats,
    )
