"""PVT variability modelling and Monte-Carlo studies."""

from .montecarlo import (
    ChipSample,
    SimBackendConfig,
    VariabilityModel,
    VariabilityStudy,
    desynchronized_period,
    lane_batches,
    run_study,
    synchronous_period,
)

__all__ = [
    "ChipSample",
    "SimBackendConfig",
    "VariabilityModel",
    "VariabilityStudy",
    "desynchronized_period",
    "lane_batches",
    "run_study",
    "synchronous_period",
]
