"""PVT variability modelling and Monte-Carlo studies."""

from .montecarlo import (
    ChipSample,
    VariabilityModel,
    VariabilityStudy,
    desynchronized_period,
    run_study,
    synchronous_period,
)

__all__ = [
    "ChipSample",
    "VariabilityModel",
    "VariabilityStudy",
    "desynchronized_period",
    "run_study",
    "synchronous_period",
]
