"""Test vector generation and stuck-at fault grading (section 4.3).

"After the scan chain insertion the test vectors are extracted" -- here
by random-pattern generation graded with explicit fault simulation: a
stuck-at fault forces one net, the pattern set detects it if any primary
output (or the scan-out) ever differs from the good machine.

Flow-equivalence means the same vectors test the desynchronized
circuit, which is the testing argument of the paper (section 2.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..liberty.model import Library
from ..netlist.core import Module, PortDirection
from ..sim.simulator import Simulator
from ..sim.testbench import SyncTestbench, initialize_registers


@dataclass
class Fault:
    net: str
    stuck_at: int

    def __str__(self) -> str:
        return f"{self.net}/SA{self.stuck_at}"


@dataclass
class AtpgResult:
    patterns: List[Dict[str, int]] = field(default_factory=list)
    total_faults: int = 0
    detected: int = 0
    undetected: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return self.detected / self.total_faults


def enumerate_faults(
    module: Module, max_faults: Optional[int] = None, seed: int = 7
) -> List[Fault]:
    """Collapsed stuck-at fault list (both polarities per net)."""
    faults: List[Fault] = []
    for net_name, net in module.nets.items():
        if net.is_constant:
            continue
        faults.append(Fault(net_name, 0))
        faults.append(Fault(net_name, 1))
    if max_faults is not None and len(faults) > max_faults:
        rng = random.Random(seed)
        faults = rng.sample(faults, max_faults)
    return faults


def random_patterns(
    module: Module, n_patterns: int, seed: int = 11
) -> List[Dict[str, int]]:
    rng = random.Random(seed)
    input_bits = [
        bit
        for bit in module.port_bits(PortDirection.INPUT)
        if bit not in ("clk", "rst")
    ]
    return [
        {bit: rng.randint(0, 1) for bit in input_bits}
        for _ in range(n_patterns)
    ]


def _output_trace(
    module: Module,
    library: Library,
    patterns: Sequence[Dict[str, int]],
    forced: Optional[Fault] = None,
    clock: str = "clk",
) -> List[Tuple[Optional[int], ...]]:
    simulator = Simulator(module, library, timing=False)
    if forced is not None:
        simulator.force_net(forced.net, forced.stuck_at)
    initialize_registers(simulator, 0)
    has_clock = clock in module.nets
    bench = SyncTestbench(simulator, clock=clock, period=4.0) if has_clock else None
    outputs = module.port_bits(PortDirection.OUTPUT)
    trace: List[Tuple[Optional[int], ...]] = []
    for pattern in patterns:
        if bench is not None:
            bench.run_cycles(1, lambda _cycle, p=pattern: p)
        else:
            for bit, value in pattern.items():
                simulator.set_input(bit, value)
            simulator.settle(max_time=100)
        trace.append(tuple(simulator.value(out) for out in outputs))
    return trace


def grade_patterns(
    module: Module,
    library: Library,
    patterns: Sequence[Dict[str, int]],
    faults: Sequence[Fault],
    clock: str = "clk",
) -> AtpgResult:
    """Fault-simulate the pattern set; serial fault simulation."""
    result = AtpgResult(patterns=list(patterns), total_faults=len(faults))
    good = _output_trace(module, library, patterns, clock=clock)
    for fault in faults:
        bad = _output_trace(module, library, patterns, forced=fault, clock=clock)
        if bad != good:
            result.detected += 1
        else:
            result.undetected.append(fault)
    return result


def generate_tests(
    module: Module,
    library: Library,
    n_patterns: int = 32,
    max_faults: int = 120,
    clock: str = "clk",
    seed: int = 11,
) -> AtpgResult:
    """Random-pattern test generation with fault grading."""
    patterns = random_patterns(module, n_patterns, seed=seed)
    faults = enumerate_faults(module, max_faults=max_faults, seed=seed)
    return grade_patterns(module, library, patterns, faults, clock=clock)
