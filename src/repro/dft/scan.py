"""Design-for-testability: scan insertion (section 4.3).

After synthesis every flip-flop is substituted by its scan variant and
the scan inputs are stitched into a chain, making the circuit fully
observable/controllable.  Desynchronization then converts the scan
flip-flops like any other (the scan mux becomes front logic before the
master latch, Figure 3.1a) -- the ARM case study of the paper is a scan
design processed exactly this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..liberty.functions import expr_inputs, parse_function
from ..liberty.model import CellKind, Library, is_scan_cell
from ..netlist.core import Module, PortDirection


class ScanError(Exception):
    """Raised when scan insertion cannot proceed."""


@dataclass
class ScanResult:
    replaced: int = 0
    chain: List[str] = field(default_factory=list)
    scan_in: str = "scan_in"
    scan_en: str = "scan_en"
    scan_out: str = "scan_out"


def _scan_variant(library: Library, cell_name: str) -> Optional[str]:
    """Find the scan cell matching a plain flip-flop.

    A match adds SI/SE muxing around the same next-state function and
    keeps the other pins (reset/set flavours included).
    """
    plain = library.cells.get(cell_name)
    if plain is None or plain.kind != CellKind.FLIP_FLOP:
        return None
    if is_scan_cell(plain):
        return cell_name  # already scan
    plain_seq = plain.sequential
    assert plain_seq is not None
    plain_inputs = set(plain.input_pins())
    for candidate in library.cells.values():
        if candidate.kind != CellKind.FLIP_FLOP or not is_scan_cell(candidate):
            continue
        seq = candidate.sequential
        assert seq is not None
        cand_inputs = set(candidate.input_pins()) - {"SI", "SE"}
        if cand_inputs != plain_inputs:
            continue
        if (seq.clear or None) != (plain_seq.clear or None):
            continue
        if (seq.preset or None) != (plain_seq.preset or None):
            continue
        # functional check: scan next_state with SE=0 == plain next_state
        scan_expr = seq.next_state or ""
        plain_expr = plain_seq.next_state or ""
        scan_vars = expr_inputs(parse_function(scan_expr))
        plain_vars = expr_inputs(parse_function(plain_expr))
        if plain_vars <= scan_vars:
            return candidate.name
    return None


def insert_scan(
    module: Module,
    library: Library,
    scan_in: str = "scan_in",
    scan_en: str = "scan_en",
    scan_out: str = "scan_out",
) -> ScanResult:
    """Replace flip-flops by scan flavours and stitch the chain."""
    result = ScanResult(scan_in=scan_in, scan_en=scan_en, scan_out=scan_out)
    for port in (scan_in, scan_en):
        if port not in module.ports:
            module.add_port(port, PortDirection.INPUT)
    if scan_out not in module.ports:
        module.add_port(scan_out, PortDirection.OUTPUT)

    flip_flops = []
    for name in sorted(module.instances):
        inst = module.instances[name]
        cell = library.cells.get(inst.cell)
        if cell is not None and cell.kind == CellKind.FLIP_FLOP:
            flip_flops.append(name)
    if not flip_flops:
        raise ScanError("no flip-flops to scan")

    previous = scan_in
    for name in flip_flops:
        inst = module.instances[name]
        scan_cell = _scan_variant(library, inst.cell)
        if scan_cell is None:
            raise ScanError(f"no scan variant for cell {inst.cell!r}")
        if scan_cell != inst.cell:
            inst.cell = scan_cell
            result.replaced += 1
        module.connect(name, "SI", previous)
        module.connect(name, "SE", scan_en)
        q_net = inst.pins.get("Q")
        if q_net is None:
            q_net = module.new_name(f"scanq_{name}")
            module.ensure_net(q_net)
            module.connect(name, "Q", q_net)
        previous = q_net
        result.chain.append(name)

    # last element drives scan_out through the existing Q net
    module.assigns.append((scan_out, previous))
    return result


def shift_pattern_in(simulator, result: ScanResult, pattern: List[int],
                     clock: str = "clk", period: float = 4.0) -> None:
    """Shift a test pattern into the chain (testbench helper)."""
    sim = simulator
    sim.set_input(result.scan_en, 1)
    for bit in reversed(pattern):
        sim.set_input(result.scan_in, bit)
        sim.run_for(period / 2)
        sim.set_input(clock, 1)
        sim.run_for(period / 2)
        sim.set_input(clock, 0)
    sim.set_input(result.scan_en, 0)
    sim.run_for(period / 4)
