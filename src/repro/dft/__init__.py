"""Design for testability: scan insertion and test-vector generation."""

from .scan import ScanError, ScanResult, insert_scan, shift_pattern_in
from .atpg import (
    AtpgResult,
    Fault,
    enumerate_faults,
    generate_tests,
    grade_patterns,
    random_patterns,
)

__all__ = [
    "AtpgResult",
    "Fault",
    "ScanError",
    "ScanResult",
    "enumerate_faults",
    "generate_tests",
    "grade_patterns",
    "insert_scan",
    "random_patterns",
    "shift_pattern_in",
]
