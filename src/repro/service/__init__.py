"""repro.service -- desynchronization as a long-running service.

A persistent daemon over the :mod:`repro.engine` stage-DAG: clients
submit desynchronization jobs (a named design generator or raw
Verilog, a library variant, ``DesyncOptions``), a priority queue of
worker threads runs each flow on its own engine, and every engine
shares ONE content-addressed :class:`~repro.engine.cache.ArtifactCache`
-- so identical stage work is done once across all jobs and an
identical resubmission is served almost for free.  Results, status and
metrics are available in-process or over a local JSON HTTP API.

Typical embedded use::

    from repro.service import JobSpec, ServiceDaemon

    with ServiceDaemon(run_dir="svc", workers=4) as daemon:
        job, _ = daemon.submit(JobSpec(design="dlx",
                                       params={"registers": 8}))
        daemon.queue.wait(job.id)
        print(daemon.job_result(job.id)["summary"])

Or over HTTP (``repro serve`` on the command line)::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    ticket = client.submit({"design": "pipeline3"})
    client.wait(ticket["id"])
    print(client.result(ticket["id"])["summary"])
"""

from .client import ServiceClient, ServiceClientError
from .daemon import ServiceDaemon
from .jobs import (
    JobError,
    JobSpec,
    execute_job,
    job_key,
    known_designs,
    options_from_dict,
    options_to_dict,
    resolve_module,
    result_payload,
)
from .queue import Job, JobQueue, JobState, QueueClosed, QueueFull
from .server import ServiceServer, make_server
from .telemetry import SLO, TelemetryHub, default_slos, parse_slo

__all__ = [
    "Job",
    "JobError",
    "JobQueue",
    "JobSpec",
    "JobState",
    "QueueClosed",
    "QueueFull",
    "SLO",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDaemon",
    "ServiceServer",
    "TelemetryHub",
    "default_slos",
    "execute_job",
    "job_key",
    "known_designs",
    "make_server",
    "options_from_dict",
    "options_to_dict",
    "parse_slo",
    "resolve_module",
    "result_payload",
]
