"""Priority job queue with a bounded worker pool.

The queue is the scheduling half of the service: it accepts callables
(the daemon binds each one to a flow run), orders them by priority
(FIFO within a priority level), and executes them on a fixed pool of
worker threads.  Per-job it supports cancellation (queued jobs settle
``cancelled``; running flows cannot be interrupted mid-stage, so a
cancel request on a running job is recorded and reported, mirroring
the engine's abandon-the-thread timeout semantics), a wall-clock
timeout (the worker abandons the still-running flow thread and settles
the job ``failed``), and crash isolation -- a raising job settles
``failed`` with the error text while the worker moves on.

``max_pending`` is the backpressure knob: submissions beyond that many
queued jobs raise :class:`QueueFull` instead of growing without bound
-- the same windowing idea :func:`repro.engine.pool.parallel_map`
applies to in-flight pool items, applied at the job level.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class QueueFull(RuntimeError):
    """Submission rejected: the queue is at its ``max_pending`` bound."""


class QueueClosed(RuntimeError):
    """Submission rejected: the queue is draining or shut down."""


@dataclass
class Job:
    """One unit of queued work and its lifecycle record."""

    id: str
    fn: Callable[[], Any]
    priority: int = 0
    timeout: Optional[float] = None
    #: caller-owned bag (the daemon parks spec/key/payload here)
    meta: Dict[str, Any] = field(default_factory=dict)
    state: JobState = JobState.QUEUED
    result: Any = None
    error: Optional[str] = None
    cancel_requested: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def wall_time(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class JobQueue:
    """Thread-safe priority queue executing jobs on worker threads."""

    def __init__(
        self,
        workers: int = 2,
        max_pending: Optional[int] = None,
        on_settle: Optional[Callable[[Job], None]] = None,
    ):
        self.workers = max(1, int(workers))
        self.max_pending = max_pending
        self.on_settle = on_settle
        # re-entrant: on_settle hooks fire under the lock and may call
        # back into counts()/get()
        self._lock = threading.RLock()
        self._settled = threading.Condition(self._lock)
        self._available = threading.Condition(self._lock)
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._accepting = True
        self._stopping = False
        self._running = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"jobq-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------
    def submit(
        self,
        fn: Callable[[], Any],
        job_id: str,
        priority: int = 0,
        timeout: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Enqueue ``fn``; highest ``priority`` runs first."""
        with self._lock:
            if not self._accepting:
                raise QueueClosed("queue is draining; not accepting jobs")
            if job_id in self._jobs:
                raise ValueError(f"duplicate job id {job_id!r}")
            if (
                self.max_pending is not None
                and self.queued_count_locked() >= self.max_pending
            ):
                raise QueueFull(
                    f"queue holds {self.max_pending} pending jobs"
                )
            job = Job(
                id=job_id,
                fn=fn,
                priority=priority,
                timeout=timeout,
                meta=dict(meta or {}),
            )
            self._jobs[job_id] = job
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            self._available.notify()
            return job

    def queued_count_locked(self) -> int:
        return sum(
            1 for j in self._jobs.values() if j.state is JobState.QUEUED
        )

    # -- inspection ----------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def counts(self) -> Dict[str, int]:
        """Jobs per state plus the queue depth, one consistent snapshot."""
        out = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                out[job.state.value] += 1
        out["depth"] = out[JobState.QUEUED.value]
        return out

    # -- control -------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; flags (but cannot stop) a running one."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            job.cancel_requested = True
            if job.state is JobState.QUEUED:
                self._settle_locked(job, JobState.CANCELLED, error="cancelled")
                return True
            return False

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job settles (or ``timeout`` elapses)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            while not job.state.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._settled.wait(remaining)
            return job

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting jobs; wait for queued+running work to finish.

        Returns True when everything settled within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._accepting = False
            while self._heap or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._settled.wait(remaining)
            return True

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Drain, then stop the worker threads."""
        drained = self.drain(timeout)
        with self._lock:
            self._stopping = True
            self._available.notify_all()
        for thread in self._threads:
            thread.join(timeout=1.0)
        return drained

    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    # -- execution -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._stopping:
                    self._available.wait()
                if self._stopping and not self._heap:
                    return
                _neg, _seq, job = heapq.heappop(self._heap)
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_at = time.time()
                self._running += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running -= 1
                    # drain() watches both the heap and the running
                    # count; the settle notification fired before the
                    # count dropped, so wake it again
                    self._settled.notify_all()

    def _execute(self, job: Job) -> None:
        """Run one job, enforcing its wall-clock timeout.

        A bounded job runs on a helper thread the worker abandons on
        overrun -- the flow cannot be interrupted, but the job settles
        promptly and the worker is free for the next one.
        """
        if job.timeout is None:
            try:
                result = job.fn()
            except Exception as exc:
                self._settle(
                    job,
                    JobState.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
            self._settle(job, JobState.DONE, result=result)
            return

        outcome: Dict[str, Any] = {}

        def run():
            try:
                outcome["result"] = job.fn()
            except Exception as exc:  # crash isolation
                outcome["error"] = f"{type(exc).__name__}: {exc}"

        runner = threading.Thread(
            target=run, name=f"jobq-run-{job.id}", daemon=True
        )
        runner.start()
        runner.join(job.timeout)
        if runner.is_alive():
            self._settle(
                job,
                JobState.FAILED,
                error=f"job exceeded its {job.timeout:.3f}s timeout",
            )
            return
        if "error" in outcome:
            self._settle(job, JobState.FAILED, error=outcome["error"])
        else:
            self._settle(job, JobState.DONE, result=outcome.get("result"))

    def _settle(
        self, job: Job, state: JobState, result: Any = None,
        error: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._settle_locked(job, state, result=result, error=error)

    def _settle_locked(
        self, job: Job, state: JobState, result: Any = None,
        error: Optional[str] = None,
    ) -> None:
        if job.state.terminal:
            return  # a timed-out job's abandoned thread finishing late
        job.state = state
        job.result = result
        job.error = error
        job.finished_at = time.time()
        self._settled.notify_all()
        if self.on_settle is not None:
            try:
                self.on_settle(job)
            except Exception:
                pass
