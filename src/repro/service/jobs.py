"""Job specs, results and content-addressed job keys.

A job is one desynchronization request: a design (a named generator
with parameters, or raw Verilog source), a library variant and the
``DesyncOptions`` the flow should use.  :func:`job_key` fingerprints
exactly that triple with :func:`repro.engine.cache.stable_hash` plus
:func:`~repro.engine.cache.library_fingerprint`, so

- two identical submissions map to the same key and the daemon can
  serve the second from the first's completed record (dedupe), and
- even when a re-run is forced, both jobs generate identical stage
  keys and share every artifact through the daemon's one
  :class:`~repro.engine.cache.ArtifactCache`.

Specs travel over HTTP as plain JSON dicts
(:meth:`JobSpec.to_dict` / :meth:`JobSpec.from_dict`); results are
flattened into a JSON-safe payload (:func:`result_payload`) so the
server never pickles netlists across the wire.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..desync.tool import DesyncOptions, DesyncResult, Drdesync
from ..engine.cache import library_fingerprint, stable_hash
from ..engine.executor import FlowEngine
from ..netlist.core import Module
from ..netlist.verilog import parse_verilog, write_module


class JobError(ValueError):
    """A submission that cannot be turned into a runnable flow."""


#: named design generators the service can build on demand.  Each entry
#: maps keyword parameters straight onto the generator signature; the
#: parameters are part of the job key, so "dlx registers=8" and
#: "dlx registers=32" never collide.
def _design_builders() -> Dict[str, Callable[..., Module]]:
    from ..designs import (
        arm9_core,
        counter,
        dlx_core,
        figure22_circuit,
        gated_counter,
        pipeline3,
        scan_pipeline,
        shift_register,
    )

    return {
        "dlx": dlx_core,
        "arm9": arm9_core,
        "counter": counter,
        "gated_counter": gated_counter,
        "pipeline3": pipeline3,
        "scan_pipeline": scan_pipeline,
        "shift_register": shift_register,
        "figure22": figure22_circuit,
    }


def known_designs() -> tuple:
    """The design names :func:`resolve_module` accepts."""
    return tuple(sorted(_design_builders()))


@dataclass
class JobSpec:
    """One desynchronization request, JSON-serialisable end to end."""

    #: a name from :func:`known_designs` (with ``params``), or ``None``
    #: when ``verilog`` carries the netlist source instead
    design: Optional[str] = None
    #: generator keyword arguments (``registers``, ``width``, ...)
    params: Dict[str, Any] = field(default_factory=dict)
    #: raw gate-level Verilog source (alternative to ``design``)
    verilog: Optional[str] = None
    #: top module name when ``verilog`` holds several modules
    top: Optional[str] = None
    #: built-in library variant: "hs" or "ll"
    library: str = "hs"
    options: DesyncOptions = field(default_factory=DesyncOptions)
    #: larger runs first among queued jobs
    priority: int = 0
    #: wall-clock budget in seconds (None = unbounded)
    timeout: Optional[float] = None
    #: capture a per-stage profile for this run (cProfile + tracemalloc,
    #: served over ``GET /jobs/<id>/profile``); excluded from the job
    #: key like priority/timeout -- observability never splits the cache
    profile: bool = False
    #: eco job: ID of the completed job whose result the edits patch
    #: (design, library and options are inherited from that job)
    parent: Optional[str] = None
    #: eco job: the netlist edits to re-flow incrementally, as
    #: :meth:`repro.flow.incremental.NetlistEdit.to_dict` records
    edits: list = field(default_factory=list)

    def validate(self) -> None:
        if self.parent is not None:
            if not self.edits:
                raise JobError("an eco job needs at least one edit")
            if self.design is not None or self.verilog is not None:
                raise JobError(
                    "an eco job inherits its design from 'parent'; "
                    "drop 'design'/'verilog'"
                )
            return
        if self.edits:
            raise JobError("'edits' requires 'parent' (an eco job)")
        if (self.design is None) == (self.verilog is None):
            raise JobError(
                "a job needs exactly one of 'design' or 'verilog'"
            )
        if self.design is not None and self.design not in _design_builders():
            raise JobError(
                f"unknown design {self.design!r}; "
                f"known: {', '.join(known_designs())}"
            )
        if self.library not in ("hs", "ll"):
            raise JobError(f"unknown library {self.library!r} (hs or ll)")

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "design": self.design,
            "params": dict(self.params),
            "verilog": self.verilog,
            "top": self.top,
            "library": self.library,
            "options": options_to_dict(self.options),
            "priority": self.priority,
            "timeout": self.timeout,
            "profile": self.profile or None,
            "parent": self.parent,
            "edits": [dict(edit) for edit in self.edits],
        }
        return {
            k: v for k, v in payload.items() if v not in (None, {}, [])
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobError("job spec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise JobError(f"unknown job spec fields: {sorted(unknown)}")
        kwargs = dict(payload)
        kwargs["options"] = options_from_dict(kwargs.get("options") or {})
        kwargs.setdefault("params", {})
        return cls(**kwargs)


def options_to_dict(options: DesyncOptions) -> Dict[str, Any]:
    """Non-default ``DesyncOptions`` fields as a JSON dict."""
    defaults = DesyncOptions()
    out: Dict[str, Any] = {}
    for fld in dataclasses.fields(DesyncOptions):
        value = getattr(options, fld.name)
        if value != getattr(defaults, fld.name):
            out[fld.name] = list(value) if isinstance(value, tuple) else value
    return out


def options_from_dict(payload: Dict[str, Any]) -> DesyncOptions:
    if isinstance(payload, DesyncOptions):
        return payload
    if not isinstance(payload, dict):
        raise JobError("options must be a JSON object")
    known = {f.name for f in dataclasses.fields(DesyncOptions)}
    unknown = set(payload) - known
    if unknown:
        raise JobError(f"unknown option fields: {sorted(unknown)}")
    kwargs = dict(payload)
    if "false_path_nets" in kwargs:
        kwargs["false_path_nets"] = tuple(kwargs["false_path_nets"])
    return DesyncOptions(**kwargs)


def job_key(spec: JobSpec, library) -> str:
    """Content-addressed identity of a submission.

    Everything that determines the flow's output -- and nothing that
    does not (priority, timeout, profile) -- feeds the key, so
    scheduling and observability knobs never split the cache.
    """
    return stable_hash(
        {
            "schema": 2,
            "design": spec.design,
            "params": spec.params,
            "verilog": spec.verilog,
            "top": spec.top,
            "library": library_fingerprint(library),
            "options": spec.options,
            "parent": spec.parent,
            "edits": spec.edits,
        }
    )


def resolve_module(spec: JobSpec, library) -> Module:
    """Materialise the job's synchronous input netlist."""
    spec.validate()
    if spec.verilog is not None:
        netlist = parse_verilog(spec.verilog)
        if spec.top:
            netlist.set_top(spec.top)
        return netlist.top
    builder = _design_builders()[spec.design]
    try:
        return builder(library, **dict(spec.params))
    except TypeError as exc:
        raise JobError(
            f"bad parameters for design {spec.design!r}: {exc}"
        ) from exc


def execute_job(
    spec: JobSpec, library, engine: FlowEngine
) -> DesyncResult:
    """Run one desynchronization flow for ``spec`` on ``engine``.

    This is the callable flow entry point the daemon workers invoke;
    the engine carries the daemon's shared cache and the per-job
    journal, which is all the cross-job state there is.
    """
    module = resolve_module(spec, library)
    tool = Drdesync(library, corner=spec.options.corner, engine=engine)
    return tool.run(module, spec.options)


def result_payload(
    result: DesyncResult,
    include_verilog: bool = False,
    include_sdc: bool = True,
) -> Dict[str, Any]:
    """Flatten a :class:`DesyncResult` into a JSON-safe result body."""
    network = result.network
    payload: Dict[str, Any] = {
        "summary": result.summary(),
        "import_stats": dict(result.import_stats),
        "region_delays": {
            region: round(delay, 6)
            for region, delay in sorted(network.region_delays.items())
        },
        "delay_elements": {
            region: element.length
            for region, element in sorted(network.delay_elements.items())
        },
    }
    if include_sdc:
        payload["sdc"] = result.export_sdc()
    if include_verilog:
        payload["verilog"] = write_module(result.module)
    return payload
