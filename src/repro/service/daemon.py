"""The desync-as-a-service daemon: jobs in, flow results out.

One :class:`ServiceDaemon` owns

- a :class:`~repro.service.queue.JobQueue` of worker threads, each
  executing one desynchronization flow per job on its own
  :class:`~repro.engine.executor.FlowEngine`;
- ONE shared :class:`~repro.engine.cache.ArtifactCache` threaded
  through every per-job engine, so identical stage work is done once
  across all jobs ever submitted (the cross-job cache-sharing model --
  size-capped and advisory-locked, see DESIGN.md);
- per-job JSONL journals (``<run_dir>/jobs/<id>.jsonl``, append mode)
  plus a daemon-level journal of submissions and settlements;
- a metrics registry re-exported over ``/metrics``: jobs by state,
  queue depth, cache hit rate, per-stage latency histograms.

Lifecycle: jobs that raise are settled ``failed`` without touching the
daemon (crash isolation); :meth:`drain` stops intake and waits for
in-flight flows; :meth:`install_signal_handlers` maps SIGTERM/SIGINT
onto a graceful drain-then-stop.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from ..engine.cache import ArtifactCache
from ..engine.executor import FlowEngine
from ..engine.journal import RunJournal
from ..obs import metrics as metrics_mod
from ..obs.metrics import MetricsRegistry
from .jobs import JobSpec, execute_job, job_key, result_payload
from .queue import Job, JobQueue, JobState, QueueClosed, QueueFull

log = logging.getLogger("repro.service")

#: wall-seconds buckets for per-stage flow latency (imports are ~ms,
#: ladder characterisation can run to minutes on big libraries)
STAGE_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2, 5, 15, 60, 300,
)


class ServiceDaemon:
    """Long-running desynchronization service over the stage engine."""

    def __init__(
        self,
        run_dir: str = ".repro_service",
        cache_dir: Optional[str] = None,
        workers: int = 2,
        flow_jobs: int = 1,
        max_pending: Optional[int] = 256,
        cache_max_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.run_dir = os.path.abspath(run_dir)
        os.makedirs(self.run_dir, exist_ok=True)
        self.cache = ArtifactCache(
            cache_dir or os.path.join(self.run_dir, "cache"),
            max_bytes=cache_max_bytes,
        )
        self.flow_jobs = max(1, int(flow_jobs))
        self.registry = registry or MetricsRegistry()
        self._previous_registry: Optional[MetricsRegistry] = None
        self.journal = RunJournal(
            os.path.join(self.run_dir, "daemon.jsonl"), append=True
        )
        self._lock = threading.Lock()
        self._by_key: Dict[str, str] = {}
        self._libraries: Dict[str, Any] = {}
        self._closed = False
        self.queue = JobQueue(
            workers=workers,
            max_pending=max_pending,
            on_settle=self._on_settle,
        )
        # flow code reports through the module-level helpers; route
        # them into this daemon's registry so /metrics sees engine
        # cache hits and stage counters too
        self._previous_registry = metrics_mod.get_registry()
        metrics_mod.set_registry(self.registry)
        self.journal.record(
            "daemon_start",
            run_dir=self.run_dir,
            workers=workers,
            flow_jobs=self.flow_jobs,
            cache_dir=self.cache.directory,
            cache_max_bytes=cache_max_bytes,
        )

    # -- library + journal plumbing ------------------------------------
    def _library(self, name: str):
        """One library object per variant, shared by every job.

        Sharing the instance keeps ``library_fingerprint`` memoised and
        the in-process ladder/STA memos warm across jobs.
        """
        with self._lock:
            library = self._libraries.get(name)
            if library is None:
                from ..liberty.core9 import core9_hs, core9_ll

                library = core9_hs() if name == "hs" else core9_ll()
                self._libraries[name] = library
            return library

    def job_journal_path(self, job_id: str) -> str:
        return os.path.join(self.run_dir, "jobs", f"{job_id}.jsonl")

    # -- submission ----------------------------------------------------
    def submit(
        self, spec: JobSpec, reuse: bool = True
    ) -> Tuple[Job, bool]:
        """Queue one desynchronization job.

        Returns ``(job, deduped)``: with ``reuse`` (the default), a
        submission whose job key matches a queued, running or completed
        job is answered with that job instead of flowing again.
        ``reuse=False`` forces a fresh run -- which still shares every
        stage artifact through the daemon cache.
        """
        spec.validate()
        library = self._library(spec.library)
        key = job_key(spec, library)
        with self._lock:
            if self._closed:
                raise QueueClosed("daemon is shut down")
            if reuse:
                existing_id = self._by_key.get(key)
                existing = (
                    self.queue.get(existing_id) if existing_id else None
                )
                if existing is not None and existing.state in (
                    JobState.QUEUED,
                    JobState.RUNNING,
                    JobState.DONE,
                ):
                    self.registry.counter("service.jobs.deduped").inc()
                    self.journal.record(
                        "job_deduped", job=existing.id, key=key[:12]
                    )
                    return existing, True
            job_id = uuid.uuid4().hex[:12]
            self._by_key[key] = job_id

        try:
            job = self.queue.submit(
                lambda: self._run_job(job_id, spec, library),
                job_id=job_id,
                priority=spec.priority,
                timeout=spec.timeout,
                meta={"spec": spec, "key": key},
            )
        except (QueueFull, QueueClosed):
            with self._lock:
                if self._by_key.get(key) == job_id:
                    del self._by_key[key]
            raise
        self.registry.counter("service.jobs.submitted").inc()
        self._observe_queue()
        self.journal.record(
            "job_submitted",
            job=job_id,
            key=key[:12],
            design=spec.design or "verilog",
            library=spec.library,
            priority=spec.priority,
        )
        log.info(
            "job %s submitted (design=%s, key=%s)",
            job_id,
            spec.design or "verilog",
            key[:12],
        )
        return job, False

    # -- execution -----------------------------------------------------
    def _run_job(self, job_id: str, spec: JobSpec, library):
        """Worker body: one flow run on a per-job engine + journal."""
        journal = RunJournal(self.job_journal_path(job_id), append=True)
        engine = FlowEngine(
            cache=self.cache, journal=journal, jobs=self.flow_jobs
        )
        try:
            result = execute_job(spec, library, engine)
            run = engine.results[-1]
            for record in run.records.values():
                self.registry.histogram(
                    f"service.stage.{record.name}",
                    buckets=STAGE_SECONDS_BUCKETS,
                ).observe(record.duration)
            payload = result_payload(result, include_verilog=True)
            payload["stages"] = {
                "total": len(run.records),
                "cached": len(run.cached_stages()),
            }
            payload["flow_wall_time"] = round(run.wall_time, 6)
            return payload
        finally:
            journal.close()

    def _on_settle(self, job: Job) -> None:
        self.registry.counter(f"service.jobs.{job.state.value}").inc()
        self._observe_queue()
        self.journal.record(
            "job_settled",
            job=job.id,
            state=job.state.value,
            error=job.error,
            wall_time=round(job.wall_time, 6) if job.wall_time else None,
        )
        if job.state is JobState.FAILED:
            log.warning("job %s failed: %s", job.id, job.error)
        else:
            log.info("job %s settled: %s", job.id, job.state.value)

    def _observe_queue(self) -> None:
        counts = self.queue.counts()
        self.registry.gauge("service.queue.depth").set(counts["depth"])
        self.registry.gauge("service.jobs.active").set(
            counts["running"] + counts["queued"]
        )

    # -- inspection ----------------------------------------------------
    def job_status(self, job_id: str) -> Dict[str, Any]:
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(job_id)
        spec: JobSpec = job.meta["spec"]
        status: Dict[str, Any] = {
            "id": job.id,
            "state": job.state.value,
            "key": job.meta["key"],
            "design": spec.design or "verilog",
            "library": spec.library,
            "priority": job.priority,
            "cancel_requested": job.cancel_requested,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "wall_time": job.wall_time,
            "error": job.error,
        }
        if job.state is JobState.DONE and isinstance(job.result, dict):
            status["stages"] = job.result.get("stages")
        return status

    def job_result(
        self, job_id: str, include_verilog: bool = False
    ) -> Dict[str, Any]:
        job = self.queue.wait(job_id, timeout=0)
        if not job.state.terminal:
            raise LookupError(f"job {job_id} is {job.state.value}")
        if job.state is not JobState.DONE:
            raise LookupError(
                f"job {job_id} {job.state.value}: {job.error or 'no result'}"
            )
        payload = dict(job.result)
        if not include_verilog:
            payload.pop("verilog", None)
        return payload

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [self.job_status(job.id) for job in self.queue.jobs()]

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document: service, cache and registry state."""
        counts = self.queue.counts()
        cache_stats = self.cache.stats.as_dict()
        self.registry.gauge("service.cache.hit_rate").set(
            cache_stats["hit_rate"]
        )
        return {
            "service": {
                "jobs": counts,
                "accepting": self.queue.accepting,
                "cache": cache_stats,
                "run_dir": self.run_dir,
            },
            "metrics": self.registry.snapshot(),
        }

    def health(self) -> Dict[str, Any]:
        counts = self.queue.counts()
        return {
            "status": "draining" if not self.queue.accepting else "ok",
            "jobs": counts,
        }

    # -- lifecycle -----------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        return self.queue.cancel(job_id)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown step 1: finish what is queued, take no more."""
        self.journal.record("daemon_drain")
        log.info("draining: waiting for in-flight jobs")
        return self.queue.drain(timeout)

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain, stop workers, close journals, restore the registry."""
        with self._lock:
            if self._closed:
                return True
            self._closed = True
        drained = self.queue.shutdown(timeout)
        self.journal.record("daemon_stop", drained=drained)
        self.journal.close()
        if self._previous_registry is not None:
            metrics_mod.set_registry(self._previous_registry)
            self._previous_registry = None
        return drained

    def install_signal_handlers(self, server=None) -> bool:
        """SIGTERM/SIGINT -> drain gracefully, then stop serving.

        Only possible from the main thread; returns False elsewhere.
        """
        if threading.current_thread() is not threading.main_thread():
            return False

        def handler(signum, _frame):
            log.info("signal %d: graceful drain", signum)
            threading.Thread(
                target=self._graceful_stop, args=(server,), daemon=True
            ).start()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)
        return True

    def _graceful_stop(self, server) -> None:
        self.close(timeout=None)
        if server is not None:
            server.shutdown()

    def __enter__(self) -> "ServiceDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close(timeout=10.0)
