"""The desync-as-a-service daemon: jobs in, flow results out.

One :class:`ServiceDaemon` owns

- a :class:`~repro.service.queue.JobQueue` of worker threads, each
  executing one desynchronization flow per job on its own
  :class:`~repro.engine.executor.FlowEngine`;
- ONE shared :class:`~repro.engine.cache.ArtifactCache` threaded
  through every per-job engine, so identical stage work is done once
  across all jobs ever submitted (the cross-job cache-sharing model --
  size-capped and advisory-locked, see DESIGN.md);
- per-job JSONL journals (``<run_dir>/jobs/<id>.jsonl``, append mode)
  plus a daemon-level journal of submissions and settlements;
- a metrics registry re-exported over ``/metrics``: jobs by state,
  queue depth, cache hit rate, per-stage latency histograms;
- a :class:`~repro.service.telemetry.TelemetryHub`: every job gets a
  trace ID and its own span tracer (scoped to the worker thread, ring
  bounded, exported over ``GET /jobs/<id>/trace``), a background
  sampler folds the registry into ring-buffer time series
  (``GET /timeseries``), declarative SLOs report burn-rate status in
  ``/health``, and ``GET /dashboard`` serves the live view.

Lifecycle: jobs that raise are settled ``failed`` without touching the
daemon (crash isolation); :meth:`drain` stops intake and waits for
in-flight flows; :meth:`install_signal_handlers` maps SIGTERM/SIGINT
onto a graceful drain-then-stop.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.cache import ArtifactCache
from ..engine.executor import FlowEngine
from ..engine.journal import RunJournal
from ..obs import metrics as metrics_mod
from ..obs import prof as prof_mod
from ..obs import trace as trace_mod
from ..obs.export import profile_document, trace_document
from ..obs.metrics import MetricsRegistry
from .jobs import JobSpec, execute_job, job_key, result_payload
from .queue import Job, JobQueue, JobState, QueueClosed, QueueFull
from .telemetry import SLO, TelemetryHub, dashboard_html

log = logging.getLogger("repro.service")

#: wall-seconds buckets for per-stage flow latency (imports are ~ms,
#: ladder characterisation can run to minutes on big libraries)
STAGE_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2, 5, 15, 60, 300,
)

#: ``# HELP`` strings for the daemon's own metric families
_METRIC_HELP = {
    "service.jobs.submitted": "jobs accepted by the daemon",
    "service.jobs.deduped": "submissions answered by an existing job",
    "service.jobs.done": "jobs settled successfully",
    "service.jobs.failed": "jobs settled with an error or timeout",
    "service.jobs.cancelled": "jobs cancelled while queued",
    "service.jobs.eco": "incremental (eco) jobs executed",
    "flow.incr.reused": "incremental re-flow: stages reused, by stage",
    "flow.incr.recomputed": "incremental re-flow: stages recomputed, by stage",
    "service.queue.depth": "jobs currently queued",
    "service.jobs.active": "jobs queued or running",
    "service.cache.hit_rate": "shared artifact cache hit rate",
    "repro.jobs": "jobs by lifecycle state",
    "service.job.latency_s": "end-to-end job wall time (seconds)",
    "service.queue.wait_s": "submit-to-start queue wait (seconds)",
    "service.stage_runs": "per-stage executions by cache disposition",
    "service.trace.spans_dropped": "spans dropped by per-job ring buffers",
    "service.profiles.captured": "jobs run with --profile capture",
}


class ServiceDaemon:
    """Long-running desynchronization service over the stage engine."""

    def __init__(
        self,
        run_dir: str = ".repro_service",
        cache_dir: Optional[str] = None,
        workers: int = 2,
        flow_jobs: int = 1,
        max_pending: Optional[int] = 256,
        cache_max_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        telemetry: bool = True,
        timeseries_interval: float = 2.0,
        timeseries_capacity: int = 600,
        slos: Optional[Sequence[SLO]] = None,
        max_trace_spans: int = 5000,
        max_traces: int = 256,
        max_profile_stages: int = 512,
        eco_sessions: int = 4,
    ):
        self.run_dir = os.path.abspath(run_dir)
        os.makedirs(self.run_dir, exist_ok=True)
        self.cache = ArtifactCache(
            cache_dir or os.path.join(self.run_dir, "cache"),
            max_bytes=cache_max_bytes,
        )
        self.flow_jobs = max(1, int(flow_jobs))
        self.registry = registry or MetricsRegistry()
        for name, help_text in _METRIC_HELP.items():
            self.registry.describe(name, help_text)
        # pre-create the settle counters so their rate series exist
        # (at 0.0) from the first sample -- an SLO over a counter that
        # is never incremented should read "ok", not "no_data"
        for state in ("done", "failed", "cancelled"):
            self.registry.counter(f"service.jobs.{state}")
        self._previous_registry: Optional[MetricsRegistry] = None
        self.journal = RunJournal(
            os.path.join(self.run_dir, "daemon.jsonl"), append=True
        )
        self._lock = threading.Lock()
        self._by_key: Dict[str, str] = {}
        self._libraries: Dict[str, Any] = {}
        self._closed = False
        # eco support: live IncrementalSession per completed job, LRU
        # bounded (a session pins three netlist snapshots plus warm
        # STA graphs -- a handful is plenty; evicted sessions are
        # rebuilt from the job chain on demand)
        self._sessions: "OrderedDict[str, Any]" = OrderedDict()
        self._session_cap = max(1, int(eco_sessions))
        self.telemetry: Optional[TelemetryHub] = None
        if telemetry:
            self.telemetry = TelemetryHub(
                self.registry,
                interval=timeseries_interval,
                capacity=timeseries_capacity,
                slos=slos,
                max_traces=max_traces,
                max_trace_spans=max_trace_spans,
                max_profile_stages=max_profile_stages,
                hook=self._sample_hook,
            )
        self.queue = JobQueue(
            workers=workers,
            max_pending=max_pending,
            on_settle=self._on_settle,
        )
        # flow code reports through the module-level helpers; route
        # them into this daemon's registry so /metrics sees engine
        # cache hits and stage counters too
        self._previous_registry = metrics_mod.get_registry()
        metrics_mod.set_registry(self.registry)
        if self.telemetry is not None:
            self.telemetry.start()
        self.journal.record(
            "daemon_start",
            run_dir=self.run_dir,
            workers=workers,
            flow_jobs=self.flow_jobs,
            cache_dir=self.cache.directory,
            cache_max_bytes=cache_max_bytes,
            telemetry=telemetry,
        )

    # -- library + journal plumbing ------------------------------------
    def _library(self, name: str):
        """One library object per variant, shared by every job.

        Sharing the instance keeps ``library_fingerprint`` memoised and
        the in-process ladder/STA memos warm across jobs.
        """
        with self._lock:
            library = self._libraries.get(name)
            if library is None:
                from ..liberty.core9 import core9_hs, core9_ll

                library = core9_hs() if name == "hs" else core9_ll()
                self._libraries[name] = library
            return library

    def job_journal_path(self, job_id: str) -> str:
        return os.path.join(self.run_dir, "jobs", f"{job_id}.jsonl")

    def _library_name(self, spec: JobSpec) -> str:
        """Eco jobs inherit their library from the root of the chain."""
        seen = set()
        while spec.parent is not None and spec.parent not in seen:
            seen.add(spec.parent)
            job = self.queue.get(spec.parent)
            if job is None:
                break
            spec = job.meta["spec"]
        return spec.library

    # -- submission ----------------------------------------------------
    def submit(
        self, spec: JobSpec, reuse: bool = True
    ) -> Tuple[Job, bool]:
        """Queue one desynchronization job.

        Returns ``(job, deduped)``: with ``reuse`` (the default), a
        submission whose job key matches a queued, running or completed
        job is answered with that job instead of flowing again.
        ``reuse=False`` forces a fresh run -- which still shares every
        stage artifact through the daemon cache.
        """
        spec.validate()
        if spec.parent is not None and self.queue.get(spec.parent) is None:
            from .jobs import JobError

            raise JobError(f"unknown parent job {spec.parent!r}")
        library = self._library(self._library_name(spec))
        key = job_key(spec, library)
        with self._lock:
            if self._closed:
                raise QueueClosed("daemon is shut down")
            if reuse:
                existing_id = self._by_key.get(key)
                existing = (
                    self.queue.get(existing_id) if existing_id else None
                )
                if existing is not None and existing.state in (
                    JobState.QUEUED,
                    JobState.RUNNING,
                    JobState.DONE,
                ):
                    self.registry.counter("service.jobs.deduped").inc()
                    self.journal.record(
                        "job_deduped", job=existing.id, key=key[:12]
                    )
                    return existing, True
            job_id = uuid.uuid4().hex[:12]
            self._by_key[key] = job_id

        trace_id = uuid.uuid4().hex[:16]
        try:
            job = self.queue.submit(
                lambda: self._run_job(job_id, spec, library, trace_id),
                job_id=job_id,
                priority=spec.priority,
                timeout=spec.timeout,
                meta={"spec": spec, "key": key, "trace_id": trace_id},
            )
        except (QueueFull, QueueClosed):
            with self._lock:
                if self._by_key.get(key) == job_id:
                    del self._by_key[key]
            raise
        self.registry.counter("service.jobs.submitted").inc()
        self._observe_queue()
        self.journal.record(
            "job_submitted",
            job=job_id,
            key=key[:12],
            trace_id=trace_id,
            design=spec.design or "verilog",
            library=spec.library,
            priority=spec.priority,
        )
        log.info(
            "job %s submitted (design=%s, key=%s)",
            job_id,
            spec.design or "verilog",
            key[:12],
        )
        return job, False

    # -- execution -----------------------------------------------------
    def _run_job(self, job_id: str, spec: JobSpec, library, trace_id: str):
        """Worker body: one flow run on a per-job engine + journal.

        The job's tracer is activated *for this worker thread only*
        (:func:`repro.obs.trace.scoped`), so concurrent jobs never see
        each other's spans and the process-global tracer -- which a
        long daemon must not grow -- stays untouched.  The per-job
        journal carries the trace ID on every line; the tracer mirrors
        its spans into the same journal.
        """
        journal = RunJournal(
            self.job_journal_path(job_id), append=True, trace_id=trace_id
        )
        tracer = None
        if self.telemetry is not None:
            tracer = self.telemetry.job_tracer(
                job_id, trace_id, journal=journal
            )
        # --profile jobs get a per-job profiler scoped to this worker
        # thread (and re-scoped onto engine pool threads), retained in
        # the hub's bounded registry for GET /jobs/<id>/profile
        profiler = None
        if spec.profile and self.telemetry is not None:
            profiler = self.telemetry.job_profiler(
                job_id, profile_id=trace_id
            )
            self.registry.counter("service.profiles.captured").inc()
        engine = FlowEngine(
            cache=self.cache, journal=journal, jobs=self.flow_jobs
        )
        try:
            if spec.parent is not None:
                with trace_mod.scoped(tracer), prof_mod.scoped(profiler):
                    payload = self._run_eco_job(job_id, spec)
                payload["trace_id"] = trace_id
                return payload
            with trace_mod.scoped(tracer), prof_mod.scoped(profiler):
                result = execute_job(spec, library, engine)
            run = engine.results[-1]
            for record in run.records.values():
                self.registry.histogram(
                    f"service.stage.{record.name}",
                    buckets=STAGE_SECONDS_BUCKETS,
                ).observe(record.duration)
                self.registry.counter(
                    "service.stage_runs",
                    labels={"stage": record.name, "cache": record.cache},
                ).inc()
            payload = result_payload(result, include_verilog=True)
            payload["stages"] = {
                "total": len(run.records),
                "cached": len(run.cached_stages()),
            }
            payload["flow_wall_time"] = round(run.wall_time, 6)
            payload["trace_id"] = trace_id
            return payload
        finally:
            if tracer is not None and tracer.dropped:
                self.registry.counter(
                    "service.trace.spans_dropped"
                ).inc(tracer.dropped)
            journal.close()

    # -- eco jobs ------------------------------------------------------
    def _run_eco_job(self, job_id: str, spec: JobSpec) -> Dict[str, Any]:
        """Incremental re-flow of a parent job's result.

        The edits land on the parent's live
        :class:`~repro.flow.incremental.IncrementalSession`; after a
        successful apply the session is re-keyed to this job (its state
        now reflects the child result), so eco jobs chain.  A failed
        apply drops the session -- the next reference rebuilds it from
        the job chain, which is always possible because every spec in
        the chain is retained.
        """
        from ..flow.incremental import NetlistEdit

        edits = [NetlistEdit.from_dict(record) for record in spec.edits]
        session = self._session_for(spec.parent)
        outcome = session.apply(edits)
        self._checkin_session(job_id, session)
        self.registry.counter("service.jobs.eco").inc()
        payload = result_payload(outcome.result, include_verilog=True)
        payload["mode"] = outcome.mode
        payload["eco"] = {
            "parent": spec.parent,
            "path": outcome.path,
            "reused": dict(outcome.reused),
            "region_status": dict(outcome.region_status),
        }
        return payload

    def _session_for(self, job_id: str):
        """Exclusive checkout of the session holding ``job_id``'s state.

        Popped from the LRU under the lock so two concurrent eco jobs
        never mutate one session; rebuilt (root flow + edit replay)
        when evicted or never materialised.
        """
        from ..flow.incremental import IncrementalSession, NetlistEdit
        from .jobs import JobError, resolve_module

        with self._lock:
            session = self._sessions.pop(job_id, None)
        if session is not None:
            return session
        job = self.queue.get(job_id)
        if job is None:
            raise JobError(f"unknown parent job {job_id!r}")
        if job.state is not JobState.DONE:
            raise JobError(
                f"parent job {job_id} is {job.state.value}, not done"
            )
        spec: JobSpec = job.meta["spec"]
        if spec.parent is not None:
            session = self._session_for(spec.parent)
            session.apply(
                [NetlistEdit.from_dict(record) for record in spec.edits]
            )
            return session
        library = self._library(spec.library)
        session = IncrementalSession(
            library, spec.options, cache=self.cache
        )
        module = resolve_module(spec, library)
        session.start(module, key=job.meta["key"])
        return session

    def _checkin_session(self, job_id: str, session) -> None:
        with self._lock:
            self._sessions[job_id] = session
            self._sessions.move_to_end(job_id)
            while len(self._sessions) > self._session_cap:
                self._sessions.popitem(last=False)

    def _on_settle(self, job: Job) -> None:
        self.registry.counter(f"service.jobs.{job.state.value}").inc()
        if job.wall_time is not None:
            self.registry.histogram(
                "service.job.latency_s", buckets=STAGE_SECONDS_BUCKETS
            ).observe(job.wall_time)
        if job.started_at is not None:
            self.registry.histogram(
                "service.queue.wait_s", buckets=STAGE_SECONDS_BUCKETS
            ).observe(max(0.0, job.started_at - job.submitted_at))
        self._observe_queue()
        self.journal.record(
            "job_settled",
            job=job.id,
            state=job.state.value,
            trace_id=job.meta.get("trace_id"),
            error=job.error,
            wall_time=round(job.wall_time, 6) if job.wall_time else None,
        )
        if job.state is JobState.FAILED:
            log.warning("job %s failed: %s", job.id, job.error)
        else:
            log.info("job %s settled: %s", job.id, job.state.value)

    def _observe_queue(self) -> None:
        counts = self.queue.counts()
        self.registry.gauge("service.queue.depth").set(counts["depth"])
        self.registry.gauge("service.jobs.active").set(
            counts["running"] + counts["queued"]
        )
        # labelled per-state gauges, the Prometheus-native shape:
        # repro_jobs{state="queued"} etc.
        for state in JobState:
            self.registry.gauge(
                "repro.jobs", labels={"state": state.value}
            ).set(counts[state.value])

    def _sample_hook(self, store, now: float) -> None:
        """Pre-sample gauge refresh run by the time-series sampler."""
        self._observe_queue()
        self.registry.gauge("service.cache.hit_rate").set(
            self.cache.stats.as_dict()["hit_rate"]
        )
        if self.telemetry is not None:
            store.record(
                "service.trace.retained_spans",
                self.telemetry.span_count(),
                ts=now,
            )

    # -- inspection ----------------------------------------------------
    def job_status(self, job_id: str) -> Dict[str, Any]:
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(job_id)
        spec: JobSpec = job.meta["spec"]
        status: Dict[str, Any] = {
            "id": job.id,
            "state": job.state.value,
            "key": job.meta["key"],
            "trace_id": job.meta.get("trace_id"),
            "design": spec.design or "verilog",
            "library": spec.library,
            "priority": job.priority,
            "cancel_requested": job.cancel_requested,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "wall_time": job.wall_time,
            "error": job.error,
        }
        # bounded-retention honesty: how many spans the job's ring
        # buffer clipped, and whether a profile is retained to fetch
        status["profiled"] = False
        if self.telemetry is not None:
            tracer = self.telemetry.get_tracer(job_id)
            if tracer is not None and tracer.dropped:
                status["trace_dropped"] = tracer.dropped
            status["profiled"] = (
                self.telemetry.get_profiler(job_id) is not None
            )
        if job.state is JobState.DONE and isinstance(job.result, dict):
            status["stages"] = job.result.get("stages")
        return status

    def job_result(
        self, job_id: str, include_verilog: bool = False
    ) -> Dict[str, Any]:
        job = self.queue.wait(job_id, timeout=0)
        if not job.state.terminal:
            raise LookupError(f"job {job_id} is {job.state.value}")
        if job.state is not JobState.DONE:
            raise LookupError(
                f"job {job_id} {job.state.value}: {job.error or 'no result'}"
            )
        payload = dict(job.result)
        if not include_verilog:
            payload.pop("verilog", None)
        return payload

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [self.job_status(job.id) for job in self.queue.jobs()]

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document: service, cache and registry state."""
        counts = self.queue.counts()
        cache_stats = self.cache.stats.as_dict()
        self.registry.gauge("service.cache.hit_rate").set(
            cache_stats["hit_rate"]
        )
        return {
            "service": {
                "jobs": counts,
                "accepting": self.queue.accepting,
                "cache": cache_stats,
                "run_dir": self.run_dir,
            },
            "metrics": self.registry.snapshot(),
        }

    def health(self) -> Dict[str, Any]:
        counts = self.queue.counts()
        payload: Dict[str, Any] = {
            "status": "draining" if not self.queue.accepting else "ok",
            "jobs": counts,
        }
        if self.telemetry is not None:
            payload["slos"] = self.telemetry.evaluate_slos(time.time())
            if (
                payload["status"] == "ok"
                and payload["slos"]["status"] == "breach"
            ):
                payload["status"] = "degraded"
        return payload

    def timeseries_snapshot(self) -> Dict[str, Any]:
        """The ``/timeseries`` document (404s upstream when disabled)."""
        if self.telemetry is None:
            raise LookupError("telemetry is disabled on this daemon")
        return {
            "interval_s": self.telemetry.interval,
            **self.telemetry.store.as_dict(),
        }

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """One job's spans as a Perfetto-loadable trace document.

        Raises ``KeyError`` for an unknown job and ``LookupError`` when
        no trace is retained (telemetry off, job still queued, or the
        tracer aged out of the bounded registry).
        """
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(job_id)
        tracer = (
            self.telemetry.get_tracer(job_id)
            if self.telemetry is not None
            else None
        )
        if tracer is None:
            raise LookupError(
                f"no trace retained for job {job_id} "
                "(telemetry disabled, job not started, or trace evicted)"
            )
        document = trace_document(tracer)
        document["otherData"].update(
            job=job_id,
            state=job.state.value,
            design=job.meta["spec"].design or "verilog",
        )
        return document

    def job_profile(self, job_id: str) -> Dict[str, Any]:
        """One job's captured profile: hot tables plus speedscope.

        Raises ``KeyError`` for an unknown job and ``LookupError`` when
        no profile is retained (job not submitted with ``profile``,
        telemetry off, or the profiler aged out of the bounded
        registry).
        """
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(job_id)
        profiler = (
            self.telemetry.get_profiler(job_id)
            if self.telemetry is not None
            else None
        )
        if profiler is None:
            raise LookupError(
                f"no profile retained for job {job_id} (submit with "
                "profile=true, or the profile was evicted)"
            )
        document = profile_document(profiler, name=f"job {job_id}")
        document.update(
            job=job_id,
            state=job.state.value,
            design=job.meta["spec"].design or "verilog",
            trace_id=job.meta.get("trace_id"),
        )
        return document

    def dashboard_page(self) -> str:
        if self.telemetry is None:
            raise LookupError("telemetry is disabled on this daemon")
        poll_ms = int(self.telemetry.interval * 1000)
        return dashboard_html(poll_ms=max(500, poll_ms))

    # -- lifecycle -----------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        return self.queue.cancel(job_id)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown step 1: finish what is queued, take no more."""
        self.journal.record("daemon_drain")
        log.info("draining: waiting for in-flight jobs")
        return self.queue.drain(timeout)

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain, stop workers, close journals, restore the registry."""
        with self._lock:
            if self._closed:
                return True
            self._closed = True
        drained = self.queue.shutdown(timeout)
        if self.telemetry is not None:
            self.telemetry.stop()
        self.journal.record("daemon_stop", drained=drained)
        self.journal.close()
        if self._previous_registry is not None:
            metrics_mod.set_registry(self._previous_registry)
            self._previous_registry = None
        return drained

    def install_signal_handlers(self, server=None) -> bool:
        """SIGTERM/SIGINT -> drain gracefully, then stop serving.

        Only possible from the main thread; returns False elsewhere.
        """
        if threading.current_thread() is not threading.main_thread():
            return False

        def handler(signum, _frame):
            log.info("signal %d: graceful drain", signum)
            threading.Thread(
                target=self._graceful_stop, args=(server,), daemon=True
            ).start()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)
        return True

    def _graceful_stop(self, server) -> None:
        self.close(timeout=None)
        if server is not None:
            server.shutdown()

    def __enter__(self) -> "ServiceDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close(timeout=10.0)
