"""Small urllib client for the service HTTP API.

Used by the tests, the benchmark harness and the ``repro submit`` /
``repro status`` CLI verbs -- anything that talks to a running daemon
without importing its internals.  Every method returns the decoded
JSON body; HTTP error statuses raise :class:`ServiceClientError`
carrying the status code and the server's error message.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from .jobs import JobSpec


class ServiceClientError(RuntimeError):
    """An HTTP-level failure talking to the daemon."""

    def __init__(self, status: Optional[int], message: str):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One daemon endpoint, e.g. ``ServiceClient("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        request = Request(
            self.base_url + path,
            method=method,
            headers={"Content-Type": "application/json"},
            data=(
                json.dumps(payload).encode() if payload is not None else None
            ),
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode()
        except HTTPError as error:
            detail = error.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceClientError(
                error.code, f"{method} {path} -> {error.code}: {detail}"
            ) from error
        except (URLError, OSError) as error:
            raise ServiceClientError(
                None, f"{method} {path} unreachable: {error}"
            ) from error
        return json.loads(body) if body.strip() else {}

    # -- API -----------------------------------------------------------
    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        reuse: bool = True,
    ) -> Dict[str, Any]:
        """Submit a job; returns ``{"id", "state", "deduped", "key"}``."""
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        return self._request(
            "POST", "/jobs", {"spec": spec, "reuse": reuse}
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/jobs")

    def result(
        self, job_id: str, include_verilog: bool = False
    ) -> Dict[str, Any]:
        suffix = "?verilog=1" if include_verilog else ""
        return self._request("GET", f"/jobs/{job_id}/result{suffix}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def timeseries(self) -> Dict[str, Any]:
        """Ring-buffer series snapshot (``GET /timeseries``)."""
        return self._request("GET", "/timeseries")

    def trace(self, job_id: str) -> Dict[str, Any]:
        """A job's Perfetto-loadable trace document."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def profile(self, job_id: str) -> Dict[str, Any]:
        """A profiled job's per-stage hot tables + speedscope doc."""
        return self._request("GET", f"/jobs/{job_id}/profile")

    def dashboard(self) -> str:
        """The live dashboard HTML (``GET /dashboard``)."""
        request = Request(self.base_url + "/dashboard", method="GET")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except HTTPError as error:
            raise ServiceClientError(
                error.code, f"GET /dashboard -> {error.code}"
            ) from error
        except (URLError, OSError) as error:
            raise ServiceClientError(
                None, f"GET /dashboard unreachable: {error}"
            ) from error

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = 120.0,
        poll: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns the final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceClientError(
                    None,
                    f"job {job_id} still {status['state']} "
                    f"after {timeout}s",
                )
            time.sleep(poll)
