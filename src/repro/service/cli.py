"""Service verbs of the ``drdesync``/``repro`` command line.

::

    repro serve  [--host H] [--port P] [--run-dir DIR] [--workers N]
                 [--flow-jobs N] [--max-pending N] [--cache-max-mb MB]
                 [--slo SPEC ...] [--timeseries-interval S]
                 [--timeseries-capacity N] [--max-trace-spans N]
                 [--no-telemetry] [--log-level LEVEL]
    repro submit DESIGN [--url URL] [--param k=v ...] [--option k=v ...]
                 [--library hs|ll] [--top NAME] [--priority N]
                 [--timeout S] [--profile] [--no-reuse] [--wait]
                 [--verilog-out F]
    repro status [JOB_ID] [--url URL]
    repro trace  JOB_ID [--url URL] [--out FILE]
    repro profile JOB_ID [--url URL] [--out FILE]
    repro cancel JOB_ID [--url URL]
    repro shutdown [--url URL]

``submit DESIGN`` takes either a known generator name (``dlx``,
``pipeline3``, ...) or a path to a gate-level Verilog file.  Exit
codes match the main CLI: 0 ok, 1 usage, 2 flow/transport error.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import Any, Dict, List, Optional

from ..obs import configure_logging

DEFAULT_URL = "http://127.0.0.1:8642"

log = logging.getLogger("repro.service.cli")

SERVICE_COMMANDS = (
    "serve", "submit", "status", "trace", "profile", "cancel", "shutdown"
)


def _parse_kv(pairs: List[str], label: str) -> Dict[str, Any]:
    """``k=v`` option lists with JSON-ish value coercion."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --{label} {pair!r}: expected key=value")
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="desync-as-a-service daemon and client verbs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the job daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--run-dir", default=".repro_service")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent flow jobs (default 2)",
    )
    serve.add_argument(
        "--flow-jobs", type=int, default=1,
        help="engine threads inside each flow (default 1)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256,
        help="queued-job backpressure bound (default 256)",
    )
    serve.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="LRU-evict the shared artifact cache above this size",
    )
    serve.add_argument(
        "--slo", action="append", default=[], metavar="SPEC",
        help=(
            "service level objective, repeatable; "
            "NAME:SERIES<=VALUE[@TARGET][/WINDOW_S], e.g. "
            "latency:service.job.latency_s.p95<=5.0@0.95/600 "
            "(replaces the built-in defaults)"
        ),
    )
    serve.add_argument(
        "--timeseries-interval", type=float, default=2.0,
        help="seconds between time-series samples (default 2.0)",
    )
    serve.add_argument(
        "--timeseries-capacity", type=int, default=600,
        help="ring-buffer points kept per series (default 600)",
    )
    serve.add_argument(
        "--max-trace-spans", type=int, default=5000,
        help="spans retained per job trace before dropping (default 5000)",
    )
    serve.add_argument(
        "--no-telemetry", action="store_true",
        help="disable tracing, time series, SLOs and the dashboard",
    )
    serve.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="info",
    )

    def add_url(p):
        p.add_argument("--url", default=DEFAULT_URL)

    submit = sub.add_parser("submit", help="submit one job")
    add_url(submit)
    submit.add_argument(
        "design", nargs="?",
        help="generator name (dlx, pipeline3, ...) or Verilog path; "
        "omit for an eco job (--parent)",
    )
    submit.add_argument(
        "--parent", metavar="JOB_ID",
        help="eco job: patch this completed job's result incrementally",
    )
    submit.add_argument(
        "--edits", metavar="FILE",
        help="eco job: edits.json with the netlist edits to apply",
    )
    submit.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="design generator parameter (repeatable)",
    )
    submit.add_argument(
        "--option", action="append", default=[], metavar="K=V",
        help="DesyncOptions field (repeatable), e.g. grouping=single",
    )
    submit.add_argument("--library", choices=["hs", "ll"], default="hs")
    submit.add_argument("--top", help="top module for Verilog submissions")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument(
        "--profile", action="store_true",
        help="capture a per-stage profile (fetch with 'repro profile')",
    )
    submit.add_argument(
        "--no-reuse", action="store_true",
        help="force a fresh run even when an identical job exists",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job settles and print its result",
    )
    submit.add_argument(
        "--verilog-out", metavar="FILE",
        help="with --wait: write the converted netlist here",
    )

    status = sub.add_parser("status", help="job status / job list")
    add_url(status)
    status.add_argument("job_id", nargs="?", help="omit to list all jobs")

    trace = sub.add_parser(
        "trace", help="fetch a job's Perfetto trace file"
    )
    add_url(trace)
    trace.add_argument("job_id")
    trace.add_argument(
        "--out", metavar="FILE",
        help="write the trace JSON here instead of stdout",
    )

    profile = sub.add_parser(
        "profile", help="fetch a job's per-stage profile document"
    )
    add_url(profile)
    profile.add_argument("job_id")
    profile.add_argument(
        "--out", metavar="FILE",
        help="write the profile JSON here instead of stdout",
    )

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    add_url(cancel)
    cancel.add_argument("job_id")

    shutdown = sub.add_parser("shutdown", help="drain and stop the daemon")
    add_url(shutdown)
    return parser


def _cmd_serve(args) -> int:
    from .daemon import ServiceDaemon
    from .server import make_server
    from .telemetry import parse_slo

    configure_logging(args.log_level, stream=sys.stdout)
    cache_max_bytes = (
        int(args.cache_max_mb * 1024 * 1024)
        if args.cache_max_mb is not None
        else None
    )
    slos = [parse_slo(spec) for spec in args.slo] or None
    daemon = ServiceDaemon(
        run_dir=args.run_dir,
        workers=args.workers,
        flow_jobs=args.flow_jobs,
        max_pending=args.max_pending,
        cache_max_bytes=cache_max_bytes,
        telemetry=not args.no_telemetry,
        timeseries_interval=args.timeseries_interval,
        timeseries_capacity=args.timeseries_capacity,
        slos=slos,
        max_trace_spans=args.max_trace_spans,
    )
    server = make_server(daemon, host=args.host, port=args.port)
    daemon.install_signal_handlers(server)
    log.info(
        "serving on %s (run dir %s, %d workers); SIGTERM drains",
        server.url,
        daemon.run_dir,
        args.workers,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        daemon.close(timeout=30.0)
    return 0


def _cmd_submit(args) -> int:
    from .client import ServiceClient
    from .jobs import JobSpec, known_designs, options_from_dict

    spec_kwargs: Dict[str, Any] = {
        "library": args.library,
        "priority": args.priority,
        "timeout": args.timeout,
        "profile": args.profile,
        "options": options_from_dict(_parse_kv(args.option, "option")),
    }
    if args.parent or args.edits:
        if not (args.parent and args.edits):
            print(
                "repro submit: an eco job needs both --parent and --edits",
                file=sys.stderr,
            )
            return 1
        if args.design is not None:
            print(
                "repro submit: an eco job inherits its design from "
                "--parent; drop the design argument",
                file=sys.stderr,
            )
            return 1
        from ..flow.incremental import load_edits

        spec_kwargs["parent"] = args.parent
        spec_kwargs["edits"] = [
            edit.to_dict() for edit in load_edits(args.edits)
        ]
    elif args.design is None:
        print(
            "repro submit: a design (or --parent for an eco job) is "
            "required",
            file=sys.stderr,
        )
        return 1
    elif args.design in known_designs():
        spec_kwargs["design"] = args.design
        spec_kwargs["params"] = _parse_kv(args.param, "param")
    elif os.path.isfile(args.design):
        with open(args.design) as handle:
            spec_kwargs["verilog"] = handle.read()
        spec_kwargs["top"] = args.top
    else:
        print(
            f"repro submit: {args.design!r} is neither a known design "
            f"({', '.join(known_designs())}) nor a Verilog file",
            file=sys.stderr,
        )
        return 1

    client = ServiceClient(args.url)
    ticket = client.submit(JobSpec(**spec_kwargs), reuse=not args.no_reuse)
    print(json.dumps(ticket, indent=2, sort_keys=True))
    if not args.wait:
        return 0
    status = client.wait(ticket["id"], timeout=None)
    print(json.dumps(status, indent=2, sort_keys=True))
    if status["state"] != "done":
        return 2
    result = client.result(
        ticket["id"], include_verilog=bool(args.verilog_out)
    )
    if args.verilog_out:
        with open(args.verilog_out, "w") as handle:
            handle.write(result.pop("verilog", ""))
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_status(args) -> int:
    from .client import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        payload = client.status(args.job_id)
    else:
        payload = {
            "health": client.health(),
            "jobs": client.jobs()["jobs"],
        }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args) -> int:
    from .client import ServiceClient

    document = ServiceClient(args.url).trace(args.job_id)
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(
            f"wrote {len(document.get('traceEvents', []))} trace events "
            f"to {args.out} (load in https://ui.perfetto.dev)"
        )
    else:
        print(text)
    return 0


def _cmd_profile(args) -> int:
    from .client import ServiceClient

    document = ServiceClient(args.url).profile(args.job_id)
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(
            f"wrote {document.get('stage_count', 0)} stage profile(s) "
            f"to {args.out} (speedscope doc inside; "
            "load at https://www.speedscope.app)"
        )
    else:
        print(text)
    return 0


def _cmd_cancel(args) -> int:
    from .client import ServiceClient

    print(
        json.dumps(
            ServiceClient(args.url).cancel(args.job_id),
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def _cmd_shutdown(args) -> int:
    from .client import ServiceClient

    print(json.dumps(ServiceClient(args.url).shutdown(), sort_keys=True))
    return 0


def service_main(argv: Optional[List[str]] = None) -> int:
    parser = build_service_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        return 0 if not exit_.code else 1
    handlers = {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "cancel": _cmd_cancel,
        "shutdown": _cmd_shutdown,
    }
    try:
        return handlers[args.command](args)
    except Exception as error:
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 2
