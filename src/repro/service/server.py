"""JSON-over-HTTP front end for the service daemon (stdlib only).

Routes (all bodies JSON):

- ``POST /jobs``              submit ``{"spec": {...}, "reuse": bool}``
- ``GET  /jobs``              list job status summaries
- ``GET  /jobs/<id>``         one job's status
- ``GET  /jobs/<id>/result``  result payload (``?verilog=1`` to inline
  the converted netlist)
- ``GET  /jobs/<id>/trace``   the job's spans as a Perfetto-loadable
  Chrome trace-event file (trace correlation)
- ``GET  /jobs/<id>/profile`` the captured per-stage profile (hot
  function tables + a speedscope document) for a ``profile: true`` job
- ``POST /jobs/<id>/cancel``  cancel a queued job
- ``GET  /metrics``           service + registry snapshot
  (``?format=prometheus`` for text exposition)
- ``GET  /timeseries``        ring-buffer rate/gauge/quantile series
- ``GET  /dashboard``         the live HTML dashboard (inline SVG)
- ``GET  /health``            liveness/readiness + SLO burn status
- ``POST /shutdown``          graceful drain, then stop serving

The server is a ``ThreadingHTTPServer``: each request is handled on
its own thread against the daemon's thread-safe API, so a slow result
fetch never blocks a submit.  Errors map to conventional statuses:
400 malformed spec, 404 unknown job, 409 job not finished, 429 queue
full (backpressure), 503 draining.
"""

from __future__ import annotations

import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .daemon import ServiceDaemon
from .jobs import JobError, JobSpec
from .queue import QueueClosed, QueueFull

log = logging.getLogger("repro.service.http")

_JOB_PATH = re.compile(
    r"^/jobs/([0-9a-f]+)(/(result|cancel|trace|profile))?$"
)


class ServiceRequestError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def daemon(self) -> ServiceDaemon:
        return self.server.service_daemon  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:
        log.debug("%s " + fmt, self.address_string(), *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, status: int, html: str) -> None:
        body = html.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceRequestError(400, f"bad JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ServiceRequestError(400, "body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        try:
            self._dispatch_get()
        except ServiceRequestError as error:
            self._send_json(error.status, {"error": str(error)})
        except Exception as exc:  # never kill the connection thread
            log.exception("GET %s failed", self.path)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._dispatch_post()
        except ServiceRequestError as error:
            self._send_json(error.status, {"error": str(error)})
        except Exception as exc:
            log.exception("POST %s failed", self.path)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- GET routes ----------------------------------------------------
    def _dispatch_get(self) -> None:
        path, query = self._route()
        if path == "/health":
            self._send_json(200, self.daemon.health())
            return
        if path == "/metrics":
            snapshot = self.daemon.metrics_snapshot()
            if query.get("format") == "prometheus":
                from ..obs.export import prometheus_text

                self._send_text(
                    200, prometheus_text(self.daemon.registry)
                )
            else:
                self._send_json(200, snapshot)
            return
        if path == "/timeseries":
            try:
                self._send_json(200, self.daemon.timeseries_snapshot())
            except LookupError as exc:
                raise ServiceRequestError(404, str(exc))
            return
        if path == "/dashboard":
            try:
                self._send_html(200, self.daemon.dashboard_page())
            except LookupError as exc:
                raise ServiceRequestError(404, str(exc))
            return
        if path == "/jobs":
            self._send_json(200, {"jobs": self.daemon.list_jobs()})
            return
        match = _JOB_PATH.match(path)
        if match and match.group(3) is None:
            self._send_json(200, self._job_status(match.group(1)))
            return
        if match and match.group(3) == "result":
            include_verilog = query.get("verilog") in ("1", "true", "yes")
            self._send_json(
                200, self._job_result(match.group(1), include_verilog)
            )
            return
        if match and match.group(3) == "trace":
            self._send_json(200, self._job_trace(match.group(1)))
            return
        if match and match.group(3) == "profile":
            self._send_json(200, self._job_profile(match.group(1)))
            return
        raise ServiceRequestError(404, f"no route for GET {path}")

    def _job_status(self, job_id: str) -> Dict[str, Any]:
        try:
            return self.daemon.job_status(job_id)
        except KeyError:
            raise ServiceRequestError(404, f"unknown job {job_id!r}")

    def _job_result(self, job_id: str, include_verilog: bool):
        try:
            return self.daemon.job_result(job_id, include_verilog)
        except KeyError:
            raise ServiceRequestError(404, f"unknown job {job_id!r}")
        except LookupError as exc:
            raise ServiceRequestError(409, str(exc))

    def _job_trace(self, job_id: str):
        try:
            return self.daemon.job_trace(job_id)
        except KeyError:
            raise ServiceRequestError(404, f"unknown job {job_id!r}")
        except LookupError as exc:
            raise ServiceRequestError(404, str(exc))

    def _job_profile(self, job_id: str):
        try:
            return self.daemon.job_profile(job_id)
        except KeyError:
            raise ServiceRequestError(404, f"unknown job {job_id!r}")
        except LookupError as exc:
            raise ServiceRequestError(404, str(exc))

    # -- POST routes ---------------------------------------------------
    def _dispatch_post(self) -> None:
        path, _query = self._route()
        if path == "/jobs":
            body = self._read_body()
            try:
                spec = JobSpec.from_dict(body.get("spec") or {})
            except (JobError, TypeError) as exc:
                raise ServiceRequestError(400, f"bad job spec: {exc}")
            try:
                job, deduped = self.daemon.submit(
                    spec, reuse=bool(body.get("reuse", True))
                )
            except JobError as exc:
                raise ServiceRequestError(400, str(exc))
            except QueueFull as exc:
                raise ServiceRequestError(429, str(exc))
            except QueueClosed as exc:
                raise ServiceRequestError(503, str(exc))
            self._send_json(
                202 if not deduped else 200,
                {
                    "id": job.id,
                    "state": job.state.value,
                    "deduped": deduped,
                    "key": job.meta["key"],
                },
            )
            return
        match = _JOB_PATH.match(path)
        if match and match.group(3) == "cancel":
            job_id = match.group(1)
            try:
                cancelled = self.daemon.cancel(job_id)
            except KeyError:
                raise ServiceRequestError(404, f"unknown job {job_id!r}")
            self._send_json(
                200, {"id": job_id, "cancelled": cancelled}
            )
            return
        if path == "/shutdown":
            self._send_json(200, {"status": "draining"})
            threading.Thread(
                target=self.server.initiate_shutdown,  # type: ignore[attr-defined]
                daemon=True,
            ).start()
            return
        raise ServiceRequestError(404, f"no route for POST {path}")


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ServiceDaemon`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, daemon: ServiceDaemon):
        super().__init__(address, _Handler)
        self.service_daemon = daemon
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "ServiceServer":
        """Serve on a background thread (tests, benchmarks, clients)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-service-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def initiate_shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful stop: drain the daemon, then stop accepting HTTP."""
        self.service_daemon.close(timeout)
        self.shutdown()

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None


def make_server(
    daemon: ServiceDaemon, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind (but do not start) the HTTP front end; port 0 auto-picks."""
    return ServiceServer((host, port), daemon)
