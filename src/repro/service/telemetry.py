"""Service telemetry: trace correlation, time series, SLOs, dashboard.

The daemon-side aggregation point for everything PR 7 adds on top of
the one-shot observability layer:

- a bounded registry of **per-job tracers** (job id -> scoped
  :class:`repro.obs.trace.Tracer` tagged with the job's trace ID), so
  ``GET /jobs/<id>/trace`` can export a Perfetto file for exactly one
  job long after it settled;
- the **time-series** store + background sampler
  (:mod:`repro.obs.timeseries`) fed from the daemon's metrics
  registry, served as ``GET /timeseries``;
- declarative **SLOs** evaluated over the ring-buffer windows with
  burn-rate status (``/health``), parseable from the CLI's
  ``--slo name:series<=value[@target][/window]`` flags;
- the zero-dependency **live dashboard** (``GET /dashboard``): one
  self-contained HTML page polling ``/timeseries`` + ``/health`` +
  ``/jobs`` + ``/metrics`` and rendering inline-SVG sparklines, SLO
  tiles, per-stage cache-hit rates and the job table.
"""

from __future__ import annotations

import math
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.prof import Profiler
from ..obs.timeseries import TimeSeriesSampler, TimeSeriesStore
from ..obs.trace import Tracer

__all__ = [
    "SLO",
    "TelemetryHub",
    "dashboard_html",
    "default_slos",
    "parse_slo",
]

#: ``name:series<=value[@target][/window_s]`` (also ``>=``)
_SLO_SPEC = re.compile(
    r"^(?P<name>[\w.-]+):(?P<series>[\w.{}=\",-]+)"
    r"(?P<op><=|>=)(?P<objective>-?\d+(?:\.\d+)?)"
    r"(?:@(?P<target>0?\.\d+|1(?:\.0+)?))?"
    r"(?:/(?P<window>\d+(?:\.\d+)?))?$"
)


@dataclass
class SLO:
    """One declarative service-level objective over a time series.

    ``target`` is the fraction of in-window points that must satisfy
    ``value <op> objective`` -- e.g. "95% of sampled p95 latencies stay
    under 2 s over the last 10 minutes".  The **burn rate** is the
    classic SRE ratio: observed bad fraction over the error budget
    (``1 - target``); 1.0 means the budget is being spent exactly as
    fast as allowed, above 1.0 the objective breaches.
    """

    name: str
    series: str
    objective: float
    op: str = "<="
    target: float = 0.95
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"SLO {self.name!r}: op must be <= or >=")
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"SLO {self.name!r}: target must be in (0, 1]")

    def _good(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.objective
        return value >= self.objective

    def evaluate(self, store: TimeSeriesStore, now: float) -> Dict[str, Any]:
        """Status over the trailing window: ok / warn / breach / no_data."""
        series = store.get(self.series)
        points = (
            series.ring.since(now - self.window_s) if series is not None else []
        )
        verdict: Dict[str, Any] = {
            "name": self.name,
            "series": self.series,
            "objective": f"{self.op}{self.objective:g}",
            "target": self.target,
            "window_s": self.window_s,
            "points": len(points),
        }
        if not points:
            verdict.update(status="no_data", good_fraction=None,
                           burn_rate=None)
            return verdict
        good = sum(1 for _ts, value in points if self._good(value))
        good_fraction = good / len(points)
        budget = 1.0 - self.target
        bad_fraction = 1.0 - good_fraction
        if budget > 0:
            burn_rate = bad_fraction / budget
        else:
            burn_rate = 0.0 if bad_fraction == 0 else math.inf
        if good_fraction < self.target:
            status = "breach"
        elif burn_rate >= 0.5:
            status = "warn"
        else:
            status = "ok"
        verdict.update(
            status=status,
            good_fraction=round(good_fraction, 4),
            burn_rate=round(burn_rate, 4) if math.isfinite(burn_rate) else "inf",
            last=round(points[-1][1], 6),
        )
        return verdict

    def to_spec(self) -> str:
        return (
            f"{self.name}:{self.series}{self.op}{self.objective:g}"
            f"@{self.target:g}/{self.window_s:g}"
        )


def parse_slo(spec: str) -> SLO:
    """Parse one ``--slo`` flag value into an :class:`SLO`."""
    match = _SLO_SPEC.match(spec.strip())
    if match is None:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected "
            "name:series<=value[@target][/window_s] "
            "(e.g. warm_p95:service.job.latency_s.p95<=2.0@0.95/600)"
        )
    fields = match.groupdict()
    return SLO(
        name=fields["name"],
        series=fields["series"],
        objective=float(fields["objective"]),
        op=fields["op"],
        target=float(fields["target"]) if fields["target"] else 0.95,
        window_s=float(fields["window"]) if fields["window"] else 300.0,
    )


def default_slos() -> List[SLO]:
    """The daemon's out-of-the-box objectives (override with --slo)."""
    return [
        # warm jobs should settle fast: 95% of sampled p95 latencies
        # under 5 s over 10 minutes
        SLO("job_latency_p95", "service.job.latency_s.p95", 5.0,
            "<=", 0.95, 600.0),
        # failures stay rare: 99% of samples see under 0.1 failed
        # jobs/s
        SLO("error_rate", "service.jobs.failed.rate", 0.1,
            "<=", 0.99, 600.0),
        # backpressure honest: 95% of sampled p95 queue waits under 2 s
        SLO("queue_wait_p95", "service.queue.wait_s.p95", 2.0,
            "<=", 0.95, 600.0),
    ]


_STATUS_RANK = {"ok": 0, "no_data": 1, "warn": 2, "breach": 3}


class TelemetryHub:
    """Owns the daemon's time series, SLOs and per-job trace registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 2.0,
        capacity: int = 600,
        slos: Optional[Sequence[SLO]] = None,
        max_traces: int = 256,
        max_trace_spans: int = 5000,
        max_profile_stages: int = 512,
        hook=None,
    ):
        self.registry = registry
        self.interval = interval
        self.slos: List[SLO] = list(default_slos() if slos is None else slos)
        self.max_traces = max(1, int(max_traces))
        self.max_trace_spans = max_trace_spans
        self.max_profile_stages = max_profile_stages
        self.store = TimeSeriesStore(capacity=capacity)
        self.sampler = TimeSeriesSampler(
            self.store, registry, interval=interval, hook=hook
        )
        self._lock = threading.Lock()
        #: job id -> per-job Tracer, newest last; bounded LRU-by-insertion
        self._traces: "OrderedDict[str, Tracer]" = OrderedDict()
        self.evicted_traces = 0
        #: job id -> per-job Profiler, bounded exactly like the tracers
        self._profiles: "OrderedDict[str, Profiler]" = OrderedDict()
        self.evicted_profiles = 0

    # -- per-job tracers -----------------------------------------------
    def job_tracer(self, job_id: str, trace_id: str,
                   journal=None) -> Tracer:
        """Create and register the tracer for one job's run."""
        tracer = Tracer(
            enabled=True,
            journal=journal,
            max_spans=self.max_trace_spans,
            trace_id=trace_id,
        )
        with self._lock:
            self._traces[job_id] = tracer
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
                self.evicted_traces += 1
        return tracer

    def get_tracer(self, job_id: str) -> Optional[Tracer]:
        with self._lock:
            return self._traces.get(job_id)

    def trace_count(self) -> int:
        with self._lock:
            return len(self._traces)

    # -- per-job profilers ----------------------------------------------
    def job_profiler(
        self, job_id: str, profile_id: Optional[str] = None
    ) -> Profiler:
        """Create and register the profiler for one ``--profile`` job.

        Bounded by ``max_traces`` exactly like the tracer registry, so
        a daemon fielding profiled jobs forever stays flat in memory;
        each profiler additionally rings its own stage retention at
        ``max_profile_stages``.
        """
        profiler = Profiler(
            enabled=True,
            max_profiles=self.max_profile_stages,
            profile_id=profile_id,
        )
        with self._lock:
            self._profiles[job_id] = profiler
            while len(self._profiles) > self.max_traces:
                self._profiles.popitem(last=False)
                self.evicted_profiles += 1
        return profiler

    def get_profiler(self, job_id: str) -> Optional[Profiler]:
        with self._lock:
            return self._profiles.get(job_id)

    def profile_count(self) -> int:
        with self._lock:
            return len(self._profiles)

    def span_count(self) -> int:
        """Total retained spans across all job tracers (soak metric)."""
        with self._lock:
            tracers = list(self._traces.values())
        return sum(len(tracer) for tracer in tracers)

    # -- SLOs ----------------------------------------------------------
    def evaluate_slos(self, now: float) -> Dict[str, Any]:
        objectives = [slo.evaluate(self.store, now) for slo in self.slos]
        worst = max(
            (entry["status"] for entry in objectives),
            key=lambda status: _STATUS_RANK[status],
            default="ok",
        )
        return {"status": worst, "objectives": objectives}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "TelemetryHub":
        self.sampler.start()
        return self

    def stop(self) -> None:
        self.sampler.stop()


# ---------------------------------------------------------------------------
# The dashboard: one self-contained page, no external assets
# ---------------------------------------------------------------------------

#: series the dashboard highlights first when present (the rest are
#: listed alphabetically below them)
_FEATURED_SERIES = [
    "service.jobs.submitted.rate",
    "service.jobs.done.rate",
    "service.jobs.failed.rate",
    "service.job.latency_s.p95",
    "service.queue.wait_s.p95",
    "service.queue.depth",
    "service.cache.hit_rate",
]

_DASHBOARD_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro desync service</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 13px/1.45 system-ui, sans-serif; margin: 1.2rem;
         background: Canvas; color: CanvasText; }
  h1 { font-size: 1.15rem; margin: 0 0 .2rem; }
  h2 { font-size: .95rem; margin: 1.2rem 0 .4rem; }
  .muted { opacity: .65; }
  .tiles { display: flex; flex-wrap: wrap; gap: .6rem; }
  .tile { border: 1px solid color-mix(in srgb, CanvasText 25%, Canvas);
          border-radius: 6px; padding: .5rem .7rem; min-width: 11rem; }
  .tile .status { font-weight: 600; }
  .ok .status { color: #188038; } .warn .status { color: #b26a00; }
  .breach .status { color: #c5221f; } .no_data .status { opacity: .6; }
  .charts { display: grid; gap: .7rem;
            grid-template-columns: repeat(auto-fill, minmax(240px, 1fr)); }
  .chart { border: 1px solid color-mix(in srgb, CanvasText 18%, Canvas);
           border-radius: 6px; padding: .4rem .6rem; }
  .chart .name { font-family: ui-monospace, monospace; font-size: .72rem;
                 overflow-wrap: anywhere; }
  .chart .value { font-size: 1.05rem; font-weight: 600; }
  svg polyline { fill: none; stroke: #4374e0; stroke-width: 1.5; }
  svg .area { fill: #4374e033; stroke: none; }
  table { border-collapse: collapse; width: 100%; font-size: .8rem; }
  th, td { text-align: left; padding: .25rem .5rem;
           border-bottom: 1px solid color-mix(in srgb, CanvasText 15%, Canvas); }
  td.mono, th.mono { font-family: ui-monospace, monospace; }
  .state-done { color: #188038; } .state-failed { color: #c5221f; }
  .state-running { color: #b26a00; } .state-queued { opacity: .7; }
  a { color: inherit; }
</style>
</head>
<body>
<h1>repro desync service <span id="health" class="muted"></span></h1>
<div class="muted" id="meta">connecting&hellip;</div>

<h2>SLOs</h2>
<div class="tiles" id="slos"></div>

<h2>Time series</h2>
<div class="charts" id="charts"></div>

<h2>Per-stage cache hit rate</h2>
<table id="stages"><thead>
<tr><th>stage</th><th>runs</th><th>hits</th><th class="mono">hit rate</th></tr>
</thead><tbody></tbody></table>

<h2>Jobs</h2>
<table id="jobs"><thead>
<tr><th class="mono">id</th><th>design</th><th>state</th><th>wall (s)</th>
<th>dropped spans</th><th class="mono">trace</th>
<th class="mono">profile</th></tr>
</thead><tbody></tbody></table>

<script>
"use strict";
const POLL_MS = __POLL_MS__;
const FEATURED = __FEATURED__;

function sparkline(points, width, height) {
  if (!points.length) return "<svg></svg>";
  const xs = points.map(p => p[0]), ys = points.map(p => p[1]);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const y0 = Math.min(...ys, 0), y1 = Math.max(...ys);
  const sx = t => x1 === x0 ? width / 2 : (t - x0) / (x1 - x0) * (width - 4) + 2;
  const sy = v => y1 === y0 ? height / 2 : height - 2 - (v - y0) / (y1 - y0) * (height - 6);
  const line = points.map(p => sx(p[0]).toFixed(1) + "," + sy(p[1]).toFixed(1)).join(" ");
  const base = (height - 2).toFixed(1);
  const area = sx(points[0][0]).toFixed(1) + "," + base + " " + line + " "
             + sx(points[points.length - 1][0]).toFixed(1) + "," + base;
  return `<svg width="${width}" height="${height}" role="img">` +
         `<polygon class="area" points="${area}"></polygon>` +
         `<polyline points="${line}"></polyline></svg>`;
}

function fmt(v) {
  if (v === null || v === undefined) return "&ndash;";
  if (Math.abs(v) >= 100) return v.toFixed(0);
  if (Math.abs(v) >= 1) return v.toFixed(2);
  return v.toPrecision(3);
}

async function getJSON(path) {
  const response = await fetch(path);
  if (!response.ok) throw new Error(path + " -> " + response.status);
  return response.json();
}

function renderSLOs(health) {
  const slos = (health.slos && health.slos.objectives) || [];
  document.getElementById("slos").innerHTML = slos.map(slo =>
    `<div class="tile ${slo.status}">` +
    `<div>${slo.name} <span class="muted">${slo.objective}</span></div>` +
    `<div class="status">${slo.status}</div>` +
    `<div class="muted">burn ${slo.burn_rate ?? "&ndash;"} &middot; ` +
    `good ${slo.good_fraction ?? "&ndash;"} &middot; ` +
    `last ${fmt(slo.last)}</div></div>`
  ).join("") || '<div class="muted">no SLOs configured</div>';
}

function renderCharts(timeseries) {
  const names = Object.keys(timeseries.series);
  names.sort((a, b) => {
    const fa = FEATURED.indexOf(a), fb = FEATURED.indexOf(b);
    if (fa !== -1 || fb !== -1)
      return (fa === -1 ? 99 : fa) - (fb === -1 ? 99 : fb);
    return a < b ? -1 : 1;
  });
  document.getElementById("charts").innerHTML = names.map(name => {
    const series = timeseries.series[name];
    const last = series.points.length
      ? series.points[series.points.length - 1][1] : null;
    return `<div class="chart"><div class="name">${name}</div>` +
      `<div class="value">${fmt(last)}` +
      ` <span class="muted">${series.unit || series.kind}</span></div>` +
      sparkline(series.points, 220, 42) + `</div>`;
  }).join("");
}

function renderStages(metrics) {
  const counters = (metrics.metrics && metrics.metrics.counters) || {};
  const stages = {};
  for (const [key, value] of Object.entries(counters)) {
    const match = key.match(
      /^service\\.stage_runs\\{cache="(\\w+)",stage="([\\w.-]+)"\\}$/);
    if (!match) continue;
    const entry = stages[match[2]] ||= { hit: 0, total: 0 };
    entry.total += value;
    if (match[1] === "hit") entry.hit += value;
  }
  document.querySelector("#stages tbody").innerHTML =
    Object.keys(stages).sort().map(stage => {
      const entry = stages[stage];
      const rate = entry.total ? (entry.hit / entry.total * 100).toFixed(1) : "0.0";
      return `<tr><td>${stage}</td><td>${entry.total}</td>` +
             `<td>${entry.hit}</td><td class="mono">${rate}%</td></tr>`;
    }).join("");
}

function renderJobs(jobs) {
  const rows = jobs.jobs.slice().reverse().slice(0, 50);
  document.querySelector("#jobs tbody").innerHTML = rows.map(job =>
    `<tr><td class="mono">${job.id}</td><td>${job.design}</td>` +
    `<td class="state-${job.state}">${job.state}</td>` +
    `<td>${job.wall_time ? job.wall_time.toFixed(3) : "&ndash;"}</td>` +
    `<td>${job.trace_dropped ? job.trace_dropped : 0}</td>` +
    `<td class="mono"><a href="/jobs/${job.id}/trace">trace</a></td>` +
    `<td class="mono">${job.profiled
      ? `<a href="/jobs/${job.id}/profile">profile</a>` : "&ndash;"}</td></tr>`
  ).join("");
}

async function tick() {
  try {
    const [health, timeseries, jobs, metrics] = await Promise.all([
      getJSON("/health"), getJSON("/timeseries"),
      getJSON("/jobs"), getJSON("/metrics"),
    ]);
    document.getElementById("health").textContent =
      "· " + health.status + (health.slos ? " / slo " + health.slos.status : "");
    document.getElementById("meta").textContent =
      `${jobs.jobs.length} jobs · ${Object.keys(timeseries.series).length} ` +
      `series · ${timeseries.samples} samples · updated ` +
      new Date().toLocaleTimeString();
    renderSLOs(health);
    renderCharts(timeseries);
    renderStages(metrics);
    renderJobs(jobs);
  } catch (error) {
    document.getElementById("meta").textContent = "poll failed: " + error;
  }
}
tick();
setInterval(tick, POLL_MS);
</script>
</body>
</html>
"""


def dashboard_html(poll_ms: int = 2000) -> str:
    """The live dashboard page (static HTML + inline JS/SVG)."""
    import json as _json

    return (
        _DASHBOARD_TEMPLATE
        .replace("__POLL_MS__", str(int(poll_ms)))
        .replace("__FEATURED__", _json.dumps(_FEATURED_SERIES))
    )
