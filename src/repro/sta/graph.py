"""Timing graph construction for static timing analysis.

The graph nodes are pins -- ``(instance, pin)`` tuples, or ``(None, bit)``
for top-level port bits.  Edges are either *cell arcs* (delay computed
from the liberty linear model and the load on the output net) or *net
edges* (wire delay annotated by the backend, zero pre-layout).

Combinational-mode graphs (the default) stop at sequential elements:
sequential cell outputs are launch points, sequential data inputs are
capture points, and no edge passes *through* a flip-flop or latch.  This
is exactly the view needed to size delay elements per region and to
compute the minimum clock period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection

#: a timing node: (instance name or None for ports, pin/bit name)
Node = Tuple[Optional[str], str]


@dataclass
class TimingEdge:
    src: Node
    dst: Node
    delay: float
    kind: str  # "arc" | "net"


@dataclass
class TimingGraph:
    module: Module
    adjacency: Dict[Node, List[TimingEdge]] = field(default_factory=dict)
    reverse: Dict[Node, List[TimingEdge]] = field(default_factory=dict)
    #: sequential output pins: node -> clock-to-output delay
    launch_nodes: Dict[Node, float] = field(default_factory=dict)
    #: sequential data pins: node -> setup time
    capture_nodes: Dict[Node, float] = field(default_factory=dict)
    #: input/output port-bit nodes
    input_nodes: Set[Node] = field(default_factory=set)
    output_nodes: Set[Node] = field(default_factory=set)
    #: edges removed to break combinational cycles (back edges)
    broken_edges: List[TimingEdge] = field(default_factory=list)

    def add_edge(self, edge: TimingEdge) -> None:
        self.adjacency.setdefault(edge.src, []).append(edge)
        self.reverse.setdefault(edge.dst, []).append(edge)

    def nodes(self) -> Set[Node]:
        out: Set[Node] = set(self.adjacency)
        out.update(self.reverse)
        out.update(self.launch_nodes)
        out.update(self.capture_nodes)
        out.update(self.input_nodes)
        out.update(self.output_nodes)
        return out


def compute_net_loads(module: Module, library: Library) -> Dict[str, float]:
    """Capacitive load per net: sink pin caps + estimated/annotated wire cap."""
    wire_caps: Dict[str, float] = module.attributes.get("net_wire_cap", {})
    loads: Dict[str, float] = {}
    for net_name, net in module.nets.items():
        load = wire_caps.get(net_name, library.default_wire_cap)
        for ref in net.connections:
            if ref.instance is None:
                continue
            inst = module.instances[ref.instance]
            cell = library.cells.get(inst.cell)
            if cell is None:
                continue
            pin = cell.pins.get(ref.pin)
            if pin is not None and pin.direction == PortDirection.INPUT:
                load += pin.capacitance
        loads[net_name] = load
    return loads


#: a timing disable: (instance, from_pin, to_pin); from/to may be None=any
Disable = Tuple[str, Optional[str], Optional[str]]


def _is_disabled(
    disables: Set[Disable], instance: str, from_pin: str, to_pin: str
) -> bool:
    return (
        (instance, from_pin, to_pin) in disables
        or (instance, None, to_pin) in disables
        or (instance, from_pin, None) in disables
        or (instance, None, None) in disables
    )


def build_timing_graph(
    module: Module,
    library: Library,
    corner: str = "worst",
    disables: Optional[Iterable[Disable]] = None,
    instance_filter: Optional[Set[str]] = None,
    through_sequential: bool = False,
) -> TimingGraph:
    """Build the (combinational-mode) timing graph of a module.

    ``disables`` are ``set_disable_timing`` style cuts.  When
    ``instance_filter`` is given, only those instances (and the nets
    between them) participate -- used for per-region analysis.  With
    ``through_sequential`` latch D->Q transparency arcs are kept, which
    models the effective datapath view of Figure 4.3.
    """
    derate = library.corner(corner).derate
    disable_set: Set[Disable] = set(disables or ())
    loads = compute_net_loads(module, library)
    wire_delays: Dict[str, float] = module.attributes.get("net_wire_delay", {})
    graph = TimingGraph(module)

    for inst in module.instances.values():
        if instance_filter is not None and inst.name not in instance_filter:
            continue
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        sequential = cell.kind != CellKind.COMBINATIONAL
        for arc in cell.arcs:
            if arc.timing_type.startswith(("setup", "hold")):
                if arc.timing_type.startswith("setup"):
                    node = (inst.name, arc.pin)
                    setup = arc.intrinsic_rise * derate
                    existing = graph.capture_nodes.get(node, 0.0)
                    graph.capture_nodes[node] = max(existing, setup)
                continue
            out_net = inst.pins.get(arc.pin)
            if out_net is None:
                continue
            load = loads.get(out_net, 0.0)
            delay = arc.worst_delay(load) * derate
            if sequential:
                is_clock_related = cell.pins[arc.related_pin].is_clock
                if is_clock_related or not through_sequential:
                    # clock->Q: a launch point rather than a through edge
                    node = (inst.name, arc.pin)
                    existing = graph.launch_nodes.get(node, 0.0)
                    graph.launch_nodes[node] = max(existing, delay)
                    continue
                # transparent latch D->Q arc, kept in effective-view mode
            if inst.pins.get(arc.related_pin) is None:
                continue
            if _is_disabled(disable_set, inst.name, arc.related_pin, arc.pin):
                continue
            graph.add_edge(
                TimingEdge(
                    (inst.name, arc.related_pin),
                    (inst.name, arc.pin),
                    delay,
                    "arc",
                )
            )
        if sequential and not through_sequential:
            # data inputs without an explicit setup arc still capture
            seq = cell.sequential
            for pin in cell.pins.values():
                if pin.direction != PortDirection.INPUT or pin.is_clock:
                    continue
                node = (inst.name, pin.name)
                graph.capture_nodes.setdefault(node, 0.0)

    # net edges: driver output pin -> sink input pins
    for net_name, net in module.nets.items():
        if net.is_constant:
            continue
        wire_delay = wire_delays.get(net_name, 0.0) * derate
        drivers: List[Node] = []
        sinks: List[Node] = []
        for ref in net.connections:
            if ref.instance is None:
                port = module.ports.get(_port_base(ref.pin))
                if port is None:
                    continue
                node = (None, ref.pin)
                if port.direction == PortDirection.INPUT:
                    drivers.append(node)
                    graph.input_nodes.add(node)
                else:
                    sinks.append(node)
                    graph.output_nodes.add(node)
                continue
            if instance_filter is not None and ref.instance not in instance_filter:
                continue
            inst = module.instances[ref.instance]
            cell = library.cells.get(inst.cell)
            if cell is None:
                continue
            pin = cell.pins.get(ref.pin)
            if pin is None:
                continue
            if pin.direction == PortDirection.OUTPUT:
                drivers.append((ref.instance, ref.pin))
            elif not (pin.is_clock and not through_sequential):
                sinks.append((ref.instance, ref.pin))
        for driver in drivers:
            for sink in sinks:
                graph.add_edge(TimingEdge(driver, sink, wire_delay, "net"))

    _break_cycles(graph)
    return graph


def _port_base(bit: str) -> str:
    from ..netlist.core import bus_base

    base = bus_base(bit)
    return base if base is not None else bit


def _break_cycles(graph: TimingGraph) -> None:
    """Cut back edges found by iterative DFS so the graph is a DAG.

    This mirrors what STA tools do when a combinational netlist contains
    cycles (section 4.6): the cut locations depend on traversal order and
    are arbitrary with respect to functionality, which is why the flow
    supplies explicit disables for the controller network instead of
    relying on this fallback.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {}
    to_remove: List[TimingEdge] = []

    for root in list(graph.adjacency):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[Node, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, index = stack[-1]
            edges = graph.adjacency.get(node, [])
            if index >= len(edges):
                color[node] = BLACK
                stack.pop()
                continue
            stack[-1] = (node, index + 1)
            edge = edges[index]
            state = color.get(edge.dst, WHITE)
            if state == GRAY:
                to_remove.append(edge)
            elif state == WHITE:
                color[edge.dst] = GRAY
                stack.append((edge.dst, 0))

    for edge in to_remove:
        graph.adjacency[edge.src].remove(edge)
        graph.reverse[edge.dst].remove(edge)
        graph.broken_edges.append(edge)
