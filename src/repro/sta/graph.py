"""Timing graph construction for static timing analysis.

The graph nodes are pins -- ``(instance, pin)`` tuples, or ``(None, bit)``
for top-level port bits.  Edges are either *cell arcs* (delay computed
from the liberty linear model and the load on the output net) or *net
edges* (wire delay annotated by the backend, zero pre-layout).

Combinational-mode graphs (the default) stop at sequential elements:
sequential cell outputs are launch points, sequential data inputs are
capture points, and no edge passes *through* a flip-flop or latch.  This
is exactly the view needed to size delay elements per region and to
compute the minimum clock period.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection

#: a timing node: (instance name or None for ports, pin/bit name)
Node = Tuple[Optional[str], str]

#: pseudo-instance name of shared fanout nodes on high-fanout nets
NET_NODE = "__net__"


def node_sort_key(node: Node) -> Tuple[bool, str, str]:
    """Total order over nodes (port nodes have ``None`` instances)."""
    return (node[0] is not None, node[0] or "", node[1])


@dataclass
class TimingEdge:
    src: Node
    dst: Node
    delay: float
    kind: str  # "arc" | "net"
    #: net whose load/annotation determines ``delay`` (``None`` for the
    #: zero-delay fanout legs of a shared net node) -- consumed by the
    #: compiled engine's incremental re-timing
    net: Optional[str] = None
    #: liberty arc behind an "arc" edge, for load-dependent recompute
    arc: Optional[object] = None


@dataclass
class TimingGraph:
    module: Module
    adjacency: Dict[Node, List[TimingEdge]] = field(default_factory=dict)
    reverse: Dict[Node, List[TimingEdge]] = field(default_factory=dict)
    #: sequential output pins: node -> clock-to-output delay
    launch_nodes: Dict[Node, float] = field(default_factory=dict)
    #: sequential data pins: node -> setup time
    capture_nodes: Dict[Node, float] = field(default_factory=dict)
    #: input/output port-bit nodes
    input_nodes: Set[Node] = field(default_factory=set)
    output_nodes: Set[Node] = field(default_factory=set)
    #: edges removed to break combinational cycles (back edges)
    broken_edges: List[TimingEdge] = field(default_factory=list)
    #: derate factor the delays were built with (1.0 = base delays)
    derate: float = 1.0
    #: launch node -> [(arc, out_net)] contributions, for incremental
    #: recompute of clock-to-output delays after load annotation
    launch_arcs: Dict[Node, List[Tuple[object, str]]] = field(
        default_factory=dict
    )

    def add_edge(self, edge: TimingEdge) -> None:
        self.adjacency.setdefault(edge.src, []).append(edge)
        self.reverse.setdefault(edge.dst, []).append(edge)

    def nodes(self) -> List[Node]:
        """Every node, in deterministic insertion order.

        The order seeds the topological sort, so it must not depend on
        hash randomisation: dict-backed collections keep insertion
        order and the port-node sets are sorted explicitly.
        """
        out: Dict[Node, None] = dict.fromkeys(self.adjacency)
        out.update(dict.fromkeys(self.reverse))
        out.update(dict.fromkeys(self.launch_nodes))
        out.update(dict.fromkeys(self.capture_nodes))
        out.update(dict.fromkeys(sorted(self.input_nodes, key=node_sort_key)))
        out.update(dict.fromkeys(sorted(self.output_nodes, key=node_sort_key)))
        return list(out)


#: per-module load cache: module -> (library, fingerprint, loads)
_LOADS_CACHE: "weakref.WeakKeyDictionary[Module, Tuple]" = (
    weakref.WeakKeyDictionary()
)


def wire_attr_fingerprint(module: Module, attr: str):
    """Cheap change-detection fingerprint of a wire-annotation dict.

    Wire caps/delays are annotated by replacing/merging plain dicts in
    ``module.attributes``, which does *not* bump the mutation stamp --
    so caches that depend on them hash the dict contents instead.
    """
    annotation = module.attributes.get(attr)
    if not annotation:
        return None
    return (len(annotation), hash(frozenset(annotation.items())))


def _loads_fingerprint(module: Module):
    return (
        module.mutation_count,
        wire_attr_fingerprint(module, "net_wire_cap"),
    )


def compute_net_loads(module: Module, library: Library) -> Dict[str, float]:
    """Capacitive load per net: sink pin caps + estimated/annotated wire cap.

    Cached per (module mutation stamp, wire-cap annotation): regional
    analyses (``region_critical_path`` with an ``instance_filter``) and
    per-element ECO measurements no longer re-walk the whole module.
    Loads are corner-independent (derates scale delays, not caps).  The
    returned mapping is owned by the cache -- treat it as read-only.
    """
    fingerprint = _loads_fingerprint(module)
    entry = _LOADS_CACHE.get(module)
    if (
        entry is not None
        and entry[0] is library
        and entry[1] == fingerprint
    ):
        return entry[2]
    loads = _compute_net_loads(module, library)
    _LOADS_CACHE[module] = (library, fingerprint, loads)
    return loads


def refresh_net_loads(
    module: Module, library: Library, nets: Iterable[str]
) -> bool:
    """Patch the cached load map in place after a cell swap.

    A cell swap changes the input-pin capacitances hanging on the
    swapped instance's nets without touching connectivity; recomputing
    just those nets (in :func:`compute_net_pin_load` order, so the
    floats stay bit-identical to a cold pass) and restamping the cache
    keeps the whole-module load map warm.  Returns ``False`` when there
    is no live cache for this (module, library) to patch.
    """
    entry = _LOADS_CACHE.get(module)
    if entry is None or entry[0] is not library:
        return False
    wire_caps: Dict[str, float] = module.attributes.get("net_wire_cap", {})
    default_cap = library.default_wire_cap
    loads = entry[2]
    for net in nets:
        if net in module.nets:
            loads[net] = compute_net_pin_load(
                module, library, net, wire_caps.get(net, default_cap)
            )
        else:
            loads.pop(net, None)
    _LOADS_CACHE[module] = (library, _loads_fingerprint(module), loads)
    return True


def compute_net_pin_load(module: Module, library: Library, net_name: str,
                         wire_cap: float) -> float:
    """Load of one net, recomputed in ``compute_net_loads`` order.

    Used by the compiled engine's incremental wire update so a single
    annotated net does not force a full-module load pass; the addition
    order matches the full pass exactly (bit-identical floats).
    """
    net = module.nets[net_name]
    load = wire_cap
    for ref in net.connections:
        if ref.instance is None:
            continue
        inst = module.instances[ref.instance]
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        pin = cell.pins.get(ref.pin)
        if pin is not None and pin.direction == PortDirection.INPUT:
            load += pin.capacitance
    return load


def _compute_net_loads(module: Module, library: Library) -> Dict[str, float]:
    wire_caps: Dict[str, float] = module.attributes.get("net_wire_cap", {})
    loads: Dict[str, float] = {}
    default_cap = library.default_wire_cap
    for net_name in module.nets:
        loads[net_name] = compute_net_pin_load(
            module, library, net_name, wire_caps.get(net_name, default_cap)
        )
    return loads


#: a timing disable: (instance, from_pin, to_pin); from/to may be None=any
Disable = Tuple[str, Optional[str], Optional[str]]


def _is_disabled(
    disables: Set[Disable], instance: str, from_pin: str, to_pin: str
) -> bool:
    return (
        (instance, from_pin, to_pin) in disables
        or (instance, None, to_pin) in disables
        or (instance, from_pin, None) in disables
        or (instance, None, None) in disables
    )


def build_timing_graph(
    module: Module,
    library: Library,
    corner: str = "worst",
    disables: Optional[Iterable[Disable]] = None,
    instance_filter: Optional[Set[str]] = None,
    through_sequential: bool = False,
    derate: Optional[float] = None,
) -> TimingGraph:
    """Build the (combinational-mode) timing graph of a module.

    ``disables`` are ``set_disable_timing`` style cuts.  When
    ``instance_filter`` is given, only those instances (and the nets
    between them) participate -- used for per-region analysis.  With
    ``through_sequential`` latch D->Q transparency arcs are kept, which
    models the effective datapath view of Figure 4.3.  ``derate``
    overrides the corner's factor -- the compiled engine builds base
    graphs at ``derate=1.0`` and rescales per corner.
    """
    if derate is None:
        derate = library.corner(corner).derate
    disable_set: Set[Disable] = set(disables or ())
    loads = compute_net_loads(module, library)
    wire_delays: Dict[str, float] = module.attributes.get("net_wire_delay", {})
    graph = TimingGraph(module, derate=derate)

    for inst in module.instances.values():
        if instance_filter is not None and inst.name not in instance_filter:
            continue
        cell = library.cells.get(inst.cell)
        if cell is None:
            continue
        sequential = cell.kind != CellKind.COMBINATIONAL
        for arc in cell.arcs:
            if arc.timing_type.startswith(("setup", "hold")):
                if arc.timing_type.startswith("setup"):
                    node = (inst.name, arc.pin)
                    setup = arc.intrinsic_rise * derate
                    existing = graph.capture_nodes.get(node, 0.0)
                    graph.capture_nodes[node] = max(existing, setup)
                continue
            out_net = inst.pins.get(arc.pin)
            if out_net is None:
                continue
            load = loads.get(out_net, 0.0)
            delay = arc.worst_delay(load) * derate
            if sequential:
                is_clock_related = cell.pins[arc.related_pin].is_clock
                if is_clock_related or not through_sequential:
                    # clock->Q: a launch point rather than a through edge
                    node = (inst.name, arc.pin)
                    existing = graph.launch_nodes.get(node, 0.0)
                    graph.launch_nodes[node] = max(existing, delay)
                    graph.launch_arcs.setdefault(node, []).append(
                        (arc, out_net)
                    )
                    continue
                # transparent latch D->Q arc, kept in effective-view mode
            if inst.pins.get(arc.related_pin) is None:
                continue
            if _is_disabled(disable_set, inst.name, arc.related_pin, arc.pin):
                continue
            graph.add_edge(
                TimingEdge(
                    (inst.name, arc.related_pin),
                    (inst.name, arc.pin),
                    delay,
                    "arc",
                    net=out_net,
                    arc=arc,
                )
            )
        if sequential and not through_sequential:
            # data inputs without an explicit setup arc still capture
            for pin in cell.pins.values():
                if pin.direction != PortDirection.INPUT or pin.is_clock:
                    continue
                node = (inst.name, pin.name)
                graph.capture_nodes.setdefault(node, 0.0)

    # net edges: driver output pin -> sink input pins
    for net_name, net in module.nets.items():
        if net.is_constant:
            continue
        wire_delay = wire_delays.get(net_name, 0.0) * derate
        drivers: List[Node] = []
        sinks: List[Node] = []
        for ref in net.connections:
            if ref.instance is None:
                port = module.ports.get(_port_base(ref.pin))
                if port is None:
                    continue
                node = (None, ref.pin)
                if port.direction == PortDirection.INPUT:
                    drivers.append(node)
                    graph.input_nodes.add(node)
                else:
                    sinks.append(node)
                    graph.output_nodes.add(node)
                continue
            if instance_filter is not None and ref.instance not in instance_filter:
                continue
            inst = module.instances[ref.instance]
            cell = library.cells.get(inst.cell)
            if cell is None:
                continue
            pin = cell.pins.get(ref.pin)
            if pin is None:
                continue
            if pin.direction == PortDirection.OUTPUT:
                drivers.append((ref.instance, ref.pin))
            elif not (pin.is_clock and not through_sequential):
                sinks.append((ref.instance, ref.pin))
        if len(drivers) * len(sinks) > len(drivers) + len(sinks):
            # multi-driver high-fanout net: one shared net node instead
            # of the O(drivers x sinks) edge product.  The wire delay
            # rides the driver legs; fanout legs are zero-delay, so
            # every driver->sink arrival is unchanged.
            shared = (NET_NODE, net_name)
            for driver in drivers:
                graph.add_edge(
                    TimingEdge(driver, shared, wire_delay, "net", net=net_name)
                )
            for sink in sinks:
                graph.add_edge(TimingEdge(shared, sink, 0.0, "net"))
        else:
            for driver in drivers:
                for sink in sinks:
                    graph.add_edge(
                        TimingEdge(
                            driver, sink, wire_delay, "net", net=net_name
                        )
                    )

    _break_cycles(graph)
    return graph


def _port_base(bit: str) -> str:
    from ..netlist.core import bus_base

    base = bus_base(bit)
    return base if base is not None else bit


def _break_cycles(graph: TimingGraph) -> None:
    """Cut back edges found by iterative DFS so the graph is a DAG.

    This mirrors what STA tools do when a combinational netlist contains
    cycles (section 4.6): the cut locations depend on traversal order and
    are arbitrary with respect to functionality, which is why the flow
    supplies explicit disables for the controller network instead of
    relying on this fallback.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {}
    to_remove: List[TimingEdge] = []

    for root in list(graph.adjacency):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[Node, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, index = stack[-1]
            edges = graph.adjacency.get(node, [])
            if index >= len(edges):
                color[node] = BLACK
                stack.pop()
                continue
            stack[-1] = (node, index + 1)
            edge = edges[index]
            state = color.get(edge.dst, WHITE)
            if state == GRAY:
                to_remove.append(edge)
            elif state == WHITE:
                color[edge.dst] = GRAY
                stack.append((edge.dst, 0))

    for edge in to_remove:
        graph.adjacency[edge.src].remove(edge)
        graph.reverse[edge.dst].remove(edge)
        graph.broken_edges.append(edge)
