"""Static timing analysis over a :class:`TimingGraph`.

Longest-path (max-delay) analysis by topological propagation, with
critical-path backtrace, endpoint slack against a clock period, and the
two derived quantities the flow consumes: per-region combinational
critical-path delay (delay-element sizing, section 3.2.5) and minimum
clock period for the synchronous baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..liberty.model import Library
from ..netlist.core import Module
from ..obs import metrics, trace
from .graph import Disable, Node, TimingGraph, build_timing_graph, node_sort_key

#: propagation backends: "compiled" (flat-array engine, corner-rescaled,
#: cached) and "reference" (the original dict walk, kept as the oracle)
BACKENDS = ("compiled", "reference")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown STA backend {backend!r}; expected one of {BACKENDS}"
        )


@dataclass
class PathPoint:
    node: Node
    arrival: float


@dataclass
class StaReport:
    """Result of one max-delay propagation."""

    arrivals: Dict[Node, float]
    critical_endpoint: Optional[Node]
    critical_delay: float
    path: List[PathPoint] = field(default_factory=list)
    #: per capture-endpoint required data arrival = period - setup
    endpoint_slacks: Dict[Node, float] = field(default_factory=dict)
    broken_edge_count: int = 0

    @property
    def wns(self) -> float:
        """Worst negative slack (positive when everything meets timing)."""
        if not self.endpoint_slacks:
            return 0.0
        return min(self.endpoint_slacks.values())


class TimingLoopError(Exception):
    """Raised if propagation cannot order the graph (unbroken cycle)."""


def _topological_order(graph: TimingGraph) -> List[Node]:
    indegree: Dict[Node, int] = {}
    for node in graph.nodes():
        indegree.setdefault(node, 0)
    for edges in graph.adjacency.values():
        for edge in edges:
            indegree[edge.dst] = indegree.get(edge.dst, 0) + 1
    queue = deque(node for node, deg in indegree.items() if deg == 0)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for edge in graph.adjacency.get(node, ()):
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                queue.append(edge.dst)
    if len(order) != len(indegree):
        raise TimingLoopError(
            f"timing graph has {len(indegree) - len(order)} nodes in cycles"
        )
    return order


def propagate(
    graph: TimingGraph,
    input_arrival: float = 0.0,
    clock_period: Optional[float] = None,
    backend: str = "compiled",
) -> StaReport:
    """Run max-delay propagation and backtrace the critical path.

    Both backends produce bit-identical reports; ``"reference"`` is the
    oracle the compiled engine is checked against.
    """
    _check_backend(backend)
    with trace.span("sta.propagate") as span:
        if backend == "compiled":
            from .compiled import compiled_of

            report = compiled_of(graph).propagate(
                1.0, input_arrival, clock_period
            )
        else:
            report = _propagate(graph, input_arrival, clock_period)
        span.set("nodes", len(report.arrivals))
        span.set("critical_delay", round(report.critical_delay, 6))
    metrics.counter("sta.propagations").inc()
    return report


def _propagate(
    graph: TimingGraph,
    input_arrival: float,
    clock_period: Optional[float],
) -> StaReport:
    arrivals: Dict[Node, float] = {}
    parent: Dict[Node, Node] = {}
    for node, clk_to_q in graph.launch_nodes.items():
        arrivals[node] = max(arrivals.get(node, float("-inf")), clk_to_q)
    for node in graph.input_nodes:
        arrivals[node] = max(arrivals.get(node, float("-inf")), input_arrival)

    order = _topological_order(graph)
    for node in order:
        arrival = arrivals.get(node)
        if arrival is None:
            continue
        for edge in graph.adjacency.get(node, ()):
            candidate = arrival + edge.delay
            if candidate > arrivals.get(edge.dst, float("-inf")):
                arrivals[edge.dst] = candidate
                parent[edge.dst] = node

    worst_node: Optional[Node] = None
    worst_delay = 0.0
    endpoint_slacks: Dict[Node, float] = {}
    endpoints: Set[Node] = set(graph.capture_nodes) | graph.output_nodes
    # deterministic order: ties on the worst endpoint must not depend on
    # hash randomisation, and both backends must break them identically
    for node in sorted(endpoints, key=node_sort_key):
        arrival = arrivals.get(node)
        if arrival is None:
            continue
        setup = graph.capture_nodes.get(node, 0.0)
        total = arrival + setup
        if total > worst_delay:
            worst_delay = total
            worst_node = node
        if clock_period is not None:
            endpoint_slacks[node] = clock_period - total

    path: List[PathPoint] = []
    node = worst_node
    while node is not None:
        path.append(PathPoint(node, arrivals.get(node, 0.0)))
        node = parent.get(node)
    path.reverse()

    return StaReport(
        arrivals=arrivals,
        critical_endpoint=worst_node,
        critical_delay=worst_delay,
        path=path,
        endpoint_slacks=endpoint_slacks,
        broken_edge_count=len(graph.broken_edges),
    )


def analyze(
    module: Module,
    library: Library,
    corner: str = "worst",
    clock_period: Optional[float] = None,
    disables: Optional[Iterable[Disable]] = None,
    backend: str = "compiled",
) -> StaReport:
    """One-call STA: build the graph for a corner and propagate.

    With the compiled backend the graph is flattened once per module
    mutation stamp and every corner is derived by derate rescaling, so
    multi-corner analysis pays a single build.
    """
    _check_backend(backend)
    with trace.span("sta.analyze", module=module.name, corner=corner):
        if backend == "compiled":
            from .compiled import compiled_graph

            compiled = compiled_graph(module, library, disables=disables)
            report = compiled.propagate(
                library.corner(corner).derate, clock_period=clock_period
            )
            metrics.counter("sta.propagations").inc()
            return report
        graph = build_timing_graph(module, library, corner, disables)
        return propagate(graph, clock_period=clock_period, backend=backend)


def _analyze_corner_task(args) -> Tuple[str, StaReport]:
    module, library, corner, clock_period, disables, backend = args
    return corner, analyze(
        module, library, corner, clock_period, disables, backend=backend
    )


def analyze_corners(
    module: Module,
    library: Library,
    corners: Optional[Iterable[str]] = None,
    clock_period: Optional[float] = None,
    disables: Optional[Iterable[Disable]] = None,
    backend: str = "compiled",
    jobs: Optional[int] = None,
) -> Dict[str, StaReport]:
    """STA at every corner (default: all of the library's).

    ``jobs`` > 1 fans the corners out over
    :func:`repro.engine.pool.parallel_map`; the serial fallback is
    bit-identical, so results never depend on the worker count.
    """
    _check_backend(backend)
    names = list(corners) if corners is not None else sorted(library.corners)
    if jobs is not None and jobs > 1 and len(names) > 1:
        from ..engine.pool import parallel_map

        disables_t = tuple(disables) if disables is not None else None
        pairs = parallel_map(
            _analyze_corner_task,
            [
                (module, library, name, clock_period, disables_t, backend)
                for name in names
            ],
            jobs=jobs,
        )
        return dict(pairs)
    return {
        name: analyze(
            module, library, name, clock_period, disables, backend=backend
        )
        for name in names
    }


def min_clock_period(
    module: Module,
    library: Library,
    corner: str = "worst",
    disables: Optional[Iterable[Disable]] = None,
    margin: float = 0.0,
    backend: str = "compiled",
) -> float:
    """Smallest period meeting setup on every register-to-register path."""
    report = analyze(module, library, corner, disables=disables,
                     backend=backend)
    return report.critical_delay + margin


def region_critical_path(
    module: Module,
    library: Library,
    instances: Set[str],
    corner: str = "worst",
    backend: str = "compiled",
) -> float:
    """Critical-path delay of one region's combinational cloud.

    The launch points are the region's sequential outputs and ports, the
    capture points its sequential data inputs: precisely the delay a
    matched delay element must cover (section 2.4.4).  Compiled-backend
    region views are cached per instance set, and the net-load pass they
    share is cached per module -- querying every region of a design no
    longer re-walks the whole module per region.
    """
    _check_backend(backend)
    with trace.span("sta.region_critical_path", instances=len(instances)):
        if backend == "compiled":
            from .compiled import compiled_graph

            compiled = compiled_graph(
                module, library, instance_filter=frozenset(instances)
            )
            report = compiled.propagate(library.corner(corner).derate)
            metrics.counter("sta.propagations").inc()
            return report.critical_delay
        graph = build_timing_graph(
            module, library, corner, instance_filter=instances
        )
        return propagate(graph, backend=backend).critical_delay


def path_to_text(report: StaReport) -> str:
    """Human-readable critical path, PrimeTime-report flavoured."""
    lines = [f"critical delay: {report.critical_delay:.4f} ns"]
    for point in report.path:
        instance = point.node[0] or "<port>"
        lines.append(f"  {instance}/{point.node[1]:<12} {point.arrival:8.4f}")
    if report.broken_edge_count:
        lines.append(f"  ({report.broken_edge_count} loop-breaking cuts applied)")
    return "\n".join(lines)
