"""Static timing analysis over a :class:`TimingGraph`.

Longest-path (max-delay) analysis by topological propagation, with
critical-path backtrace, endpoint slack against a clock period, and the
two derived quantities the flow consumes: per-region combinational
critical-path delay (delay-element sizing, section 3.2.5) and minimum
clock period for the synchronous baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..liberty.model import Library
from ..netlist.core import Module
from ..obs import metrics, trace
from .graph import Disable, Node, TimingGraph, build_timing_graph


@dataclass
class PathPoint:
    node: Node
    arrival: float


@dataclass
class StaReport:
    """Result of one max-delay propagation."""

    arrivals: Dict[Node, float]
    critical_endpoint: Optional[Node]
    critical_delay: float
    path: List[PathPoint] = field(default_factory=list)
    #: per capture-endpoint required data arrival = period - setup
    endpoint_slacks: Dict[Node, float] = field(default_factory=dict)
    broken_edge_count: int = 0

    @property
    def wns(self) -> float:
        """Worst negative slack (positive when everything meets timing)."""
        if not self.endpoint_slacks:
            return 0.0
        return min(self.endpoint_slacks.values())


class TimingLoopError(Exception):
    """Raised if propagation cannot order the graph (unbroken cycle)."""


def _topological_order(graph: TimingGraph) -> List[Node]:
    indegree: Dict[Node, int] = {}
    for node in graph.nodes():
        indegree.setdefault(node, 0)
    for edges in graph.adjacency.values():
        for edge in edges:
            indegree[edge.dst] = indegree.get(edge.dst, 0) + 1
    queue = deque(node for node, deg in indegree.items() if deg == 0)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for edge in graph.adjacency.get(node, ()):
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                queue.append(edge.dst)
    if len(order) != len(indegree):
        raise TimingLoopError(
            f"timing graph has {len(indegree) - len(order)} nodes in cycles"
        )
    return order


def propagate(
    graph: TimingGraph,
    input_arrival: float = 0.0,
    clock_period: Optional[float] = None,
) -> StaReport:
    """Run max-delay propagation and backtrace the critical path."""
    with trace.span("sta.propagate") as span:
        report = _propagate(graph, input_arrival, clock_period)
        span.set("nodes", len(report.arrivals))
        span.set("critical_delay", round(report.critical_delay, 6))
    metrics.counter("sta.propagations").inc()
    return report


def _propagate(
    graph: TimingGraph,
    input_arrival: float,
    clock_period: Optional[float],
) -> StaReport:
    arrivals: Dict[Node, float] = {}
    parent: Dict[Node, Node] = {}
    for node, clk_to_q in graph.launch_nodes.items():
        arrivals[node] = max(arrivals.get(node, float("-inf")), clk_to_q)
    for node in graph.input_nodes:
        arrivals[node] = max(arrivals.get(node, float("-inf")), input_arrival)

    order = _topological_order(graph)
    for node in order:
        arrival = arrivals.get(node)
        if arrival is None:
            continue
        for edge in graph.adjacency.get(node, ()):
            candidate = arrival + edge.delay
            if candidate > arrivals.get(edge.dst, float("-inf")):
                arrivals[edge.dst] = candidate
                parent[edge.dst] = node

    worst_node: Optional[Node] = None
    worst_delay = 0.0
    endpoint_slacks: Dict[Node, float] = {}
    endpoints: Set[Node] = set(graph.capture_nodes) | graph.output_nodes
    for node in endpoints:
        arrival = arrivals.get(node)
        if arrival is None:
            continue
        setup = graph.capture_nodes.get(node, 0.0)
        total = arrival + setup
        if total > worst_delay:
            worst_delay = total
            worst_node = node
        if clock_period is not None:
            endpoint_slacks[node] = clock_period - total

    path: List[PathPoint] = []
    node = worst_node
    while node is not None:
        path.append(PathPoint(node, arrivals.get(node, 0.0)))
        node = parent.get(node)
    path.reverse()

    return StaReport(
        arrivals=arrivals,
        critical_endpoint=worst_node,
        critical_delay=worst_delay,
        path=path,
        endpoint_slacks=endpoint_slacks,
        broken_edge_count=len(graph.broken_edges),
    )


def analyze(
    module: Module,
    library: Library,
    corner: str = "worst",
    clock_period: Optional[float] = None,
    disables: Optional[Iterable[Disable]] = None,
) -> StaReport:
    """One-call STA: build the graph for a corner and propagate."""
    with trace.span("sta.analyze", module=module.name, corner=corner):
        graph = build_timing_graph(module, library, corner, disables)
        return propagate(graph, clock_period=clock_period)


def min_clock_period(
    module: Module,
    library: Library,
    corner: str = "worst",
    disables: Optional[Iterable[Disable]] = None,
    margin: float = 0.0,
) -> float:
    """Smallest period meeting setup on every register-to-register path."""
    report = analyze(module, library, corner, disables=disables)
    return report.critical_delay + margin


def region_critical_path(
    module: Module,
    library: Library,
    instances: Set[str],
    corner: str = "worst",
) -> float:
    """Critical-path delay of one region's combinational cloud.

    The launch points are the region's sequential outputs and ports, the
    capture points its sequential data inputs: precisely the delay a
    matched delay element must cover (section 2.4.4).
    """
    with trace.span("sta.region_critical_path", instances=len(instances)):
        graph = build_timing_graph(
            module, library, corner, instance_filter=instances
        )
        return propagate(graph).critical_delay


def path_to_text(report: StaReport) -> str:
    """Human-readable critical path, PrimeTime-report flavoured."""
    lines = [f"critical delay: {report.critical_delay:.4f} ns"]
    for point in report.path:
        instance = point.node[0] or "<port>"
        lines.append(f"  {instance}/{point.node[1]:<12} {point.arrival:8.4f}")
    if report.broken_edge_count:
        lines.append(f"  ({report.broken_edge_count} loop-breaking cuts applied)")
    return "\n".join(lines)
